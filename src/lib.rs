//! # cegraph — Cardinality Estimation Graphs
//!
//! Facade crate re-exporting the whole workspace: a full implementation of
//! *“Accurate Summary-based Cardinality Estimation Through the Lens of
//! Cardinality Estimation Graphs”* (VLDB 2022).
//!
//! Start with [`estimators`] for the high-level API, or see the
//! `examples/` directory for runnable walkthroughs.

pub use ceg_catalog as catalog;
pub use ceg_core as core;
pub use ceg_estimators as estimators;
pub use ceg_exec as exec;
pub use ceg_graph as graph;
pub use ceg_planner as planner;
pub use ceg_query as query;
pub use ceg_service as service;
pub use ceg_workload as workload;
