//! `cegcli` — command-line front end for the cegraph library.
//!
//! ```text
//! cegcli generate <imdb|yago|dblp|watdiv|hetionet|epinions> <seed> <out.edges>
//! cegcli workload <graph.edges> <job|acyclic|cyclic|gcare-acyclic|gcare-cyclic>
//!                 <per-template> <seed> <out.wl>
//! cegcli stats    <graph.edges> <queries.wl> <h> <out.markov>
//! cegcli estimate <graph.edges> <queries.wl> [markov.file] [heuristic]
//! cegcli molp     <graph.edges> <queries.wl>
//! cegcli explain  <graph.edges> <queries.wl> <query-index>   # CEG_O as DOT
//! ```

use std::process::ExitCode;

use cegraph::catalog::io::{load_markov, save_markov};
use cegraph::catalog::MarkovTable;
use cegraph::core::render::{ceg_o_to_dot, molp_path_to_string};
use cegraph::core::{molp_min_path, Aggr, CegO, Heuristic, MolpInstance, PathLen};
use cegraph::estimators::{CardinalityEstimator, OptimisticEstimator};
use cegraph::graph::io::{load_graph, save_graph};
use cegraph::workload::io::{load_workload, save_workload};
use cegraph::workload::qerror::signed_log_qerror;
use cegraph::workload::{Dataset, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", USAGE.trim());
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = r#"
usage:
  cegcli generate <imdb|yago|dblp|watdiv|hetionet|epinions> <seed> <out.edges>
  cegcli workload <graph.edges> <job|acyclic|cyclic|gcare-acyclic|gcare-cyclic> <per-template> <seed> <out.wl>
  cegcli stats    <graph.edges> <queries.wl> <h> <out.markov>
  cegcli estimate <graph.edges> <queries.wl> [markov.file] [heuristic]
  cegcli molp     <graph.edges> <queries.wl>
  cegcli explain  <graph.edges> <queries.wl> <query-index>
"#;

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "generate" => generate(&args[1..]),
        "workload" => workload(&args[1..]),
        "stats" => stats(&args[1..]),
        "estimate" => estimate(&args[1..]),
        "molp" => molp(&args[1..]),
        "explain" => explain(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    Ok(match name {
        "imdb" => Dataset::Imdb,
        "yago" => Dataset::Yago,
        "dblp" => Dataset::Dblp,
        "watdiv" => Dataset::Watdiv,
        "hetionet" => Dataset::Hetionet,
        "epinions" => Dataset::Epinions,
        _ => return Err(format!("unknown dataset `{name}`")),
    })
}

fn parse_workload(name: &str) -> Result<Workload, String> {
    Ok(match name {
        "job" => Workload::Job,
        "acyclic" => Workload::Acyclic,
        "cyclic" => Workload::Cyclic,
        "gcare-acyclic" => Workload::GCareAcyclic,
        "gcare-cyclic" => Workload::GCareCyclic,
        _ => return Err(format!("unknown workload `{name}`")),
    })
}

fn parse_heuristic(name: &str) -> Result<Heuristic, String> {
    for h in Heuristic::all() {
        if h.name() == name {
            return Ok(h);
        }
    }
    Err(format!("unknown heuristic `{name}` (try max-hop-max)"))
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let ds = parse_dataset(arg(args, 0, "dataset")?)?;
    let seed: u64 = arg(args, 1, "seed")?.parse().map_err(|_| "bad seed")?;
    let out = arg(args, 2, "output path")?;
    let g = ds.generate(seed);
    save_graph(&g, out).map_err(|e| e.to_string())?;
    println!(
        "{}: |V|={} |E|={} labels={} -> {out}",
        ds.name(),
        g.num_vertices(),
        g.num_edges(),
        g.num_labels()
    );
    Ok(())
}

fn workload(args: &[String]) -> Result<(), String> {
    let g = load_graph(arg(args, 0, "graph path")?).map_err(|e| e.to_string())?;
    let wl = parse_workload(arg(args, 1, "workload")?)?;
    let per: usize = arg(args, 2, "per-template")?
        .parse()
        .map_err(|_| "bad per-template")?;
    let seed: u64 = arg(args, 3, "seed")?.parse().map_err(|_| "bad seed")?;
    let out = arg(args, 4, "output path")?;
    let queries = wl.build(&g, per, seed);
    save_workload(&queries, out).map_err(|e| e.to_string())?;
    println!("{}: {} queries -> {out}", wl.name(), queries.len());
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let g = load_graph(arg(args, 0, "graph path")?).map_err(|e| e.to_string())?;
    let queries = load_workload(arg(args, 1, "workload path")?).map_err(|e| e.to_string())?;
    let h: usize = arg(args, 2, "h")?.parse().map_err(|_| "bad h")?;
    let out = arg(args, 3, "output path")?;
    let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
    let table = MarkovTable::build(&g, &qs, h);
    save_markov(&table, out).map_err(|e| e.to_string())?;
    println!(
        "markov table h={h}: {} entries (~{:.1} KB) -> {out}",
        table.len(),
        table.approx_bytes() as f64 / 1024.0
    );
    Ok(())
}

fn estimate(args: &[String]) -> Result<(), String> {
    let g = load_graph(arg(args, 0, "graph path")?).map_err(|e| e.to_string())?;
    let queries = load_workload(arg(args, 1, "workload path")?).map_err(|e| e.to_string())?;
    let table = match args.get(2) {
        Some(path) => load_markov(path).map_err(|e| e.to_string())?,
        None => {
            let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
            MarkovTable::build(&g, &qs, 2)
        }
    };
    let heuristic = match args.get(3) {
        Some(name) => parse_heuristic(name)?,
        None => Heuristic::new(PathLen::MaxHop, Aggr::Max),
    };
    let mut est = OptimisticEstimator::new(&table, heuristic);
    println!(
        "{:<20} {:>14} {:>14} {:>9}",
        "template", "estimate", "truth", "log10-q"
    );
    for wq in &queries {
        match est.estimate(&wq.query) {
            Some(e) => println!(
                "{:<20} {:>14.1} {:>14.1} {:>9.2}",
                wq.template,
                e,
                wq.truth,
                signed_log_qerror(e, wq.truth)
            ),
            None => println!("{:<20} {:>14} {:>14.1}", wq.template, "-", wq.truth),
        }
    }
    Ok(())
}

fn molp(args: &[String]) -> Result<(), String> {
    let g = load_graph(arg(args, 0, "graph path")?).map_err(|e| e.to_string())?;
    let queries = load_workload(arg(args, 1, "workload path")?).map_err(|e| e.to_string())?;
    for wq in &queries {
        let inst = MolpInstance::from_graph(&g, &wq.query);
        let Some((bound, steps)) = molp_min_path(&inst) else {
            println!("{}: unbounded", wq.template);
            continue;
        };
        println!(
            "{}: MOLP bound {bound:.1} (truth {}), minimum path:",
            wq.template, wq.truth
        );
        print!("{}", molp_path_to_string(&wq.query, &steps));
    }
    Ok(())
}

fn explain(args: &[String]) -> Result<(), String> {
    let g = load_graph(arg(args, 0, "graph path")?).map_err(|e| e.to_string())?;
    let queries = load_workload(arg(args, 1, "workload path")?).map_err(|e| e.to_string())?;
    let idx: usize = arg(args, 2, "query index")?
        .parse()
        .map_err(|_| "bad index")?;
    let wq = queries.get(idx).ok_or("query index out of range")?;
    let table = MarkovTable::build_for_query(&g, &wq.query, 2);
    let ceg = CegO::build(&wq.query, &table);
    print!("{}", ceg_o_to_dot(&ceg, &wq.query));
    Ok(())
}
