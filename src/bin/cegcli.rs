//! `cegcli` — command-line front end for the cegraph library.
//!
//! ```text
//! cegcli generate <imdb|yago|dblp|watdiv|hetionet|epinions> <seed> <out.edges>
//! cegcli workload <graph.edges> <job|acyclic|cyclic|gcare-acyclic|gcare-cyclic>
//!                 <per-template> <seed> <out.wl>
//! cegcli stats    <graph.edges> <queries.wl> <h> <out.markov>
//! cegcli estimate <graph.edges> <queries.wl> [markov.file] [heuristic]
//! cegcli molp     <graph.edges> <queries.wl>
//! cegcli explain  <graph.edges> <queries.wl> <query-index>   # CEG_O as DOT
//! cegcli explain  <addr> <queries.wl> <query-index> [dataset] [--deadline-ms N]
//! cegcli serve    <addr> <graph.edges> [markov.file|-] [h]   # estimation server
//! cegcli serve    <addr> --snapshot <file.cegsnap>           # restore from snapshot
//! cegcli serve    <addr> [graph.edges ...] --data-dir <dir>  # crash-safe commits
//! cegcli query    <addr> <queries.wl> [dataset] [--batch] [--deadline-ms N]
//! cegcli update   <addr> <updates.upd> [dataset]             # live graph updates
//! cegcli snapshot <addr> <out.cegsnap> [dataset]             # persist server state
//! cegcli metrics  <addr>                                     # dump metrics registry
//! cegcli prom     <addr> [--check]                           # Prometheus exposition
//! cegcli slowlog  <addr> [n]                                 # slow-query log
//! cegcli shutdown <addr>                                     # graceful drain
//! cegcli wal      <file.cegwal>                              # inspect a write-ahead log
//! ```
//!
//! `explain` has two forms, told apart by the first argument: a graph
//! file renders the query's CEG_O locally as DOT; a server address
//! (contains `:`) sends `EXPLAIN_ESTIMATE` and prints the estimate with
//! the server-side span/counter trace that produced it.
//!
//! `serve` drains gracefully on SIGTERM or a wire `SHUTDOWN`: it stops
//! accepting, lets in-flight work resolve to typed replies, writes one
//! final snapshot per dataset into `--drain-dir` (if given), and exits 0.
//!
//! `serve --data-dir <dir>` makes commits crash-safe: every `COMMIT` is
//! fsynced to `<dir>/default.cegwal` before it is acked, and the log is
//! periodically folded into `<dir>/default.cegsnap` (tune with
//! `--wal-rotate-bytes N` / `--snapshot-every N`). When the directory
//! already holds a snapshot, boot recovers from snapshot + WAL instead
//! of the graph arguments — a restart after `kill -9` resumes exactly
//! where the last acked commit left off. `cegcli wal` prints what a log
//! file holds (committed transactions, epoch range, any torn tail)
//! without needing a server.
//!
//! Exit discipline: argument errors print the offending subcommand's
//! usage on stderr and exit 2; runtime failures (I/O, server errors)
//! print only the message and exit 1; success exits 0.

use std::process::ExitCode;
use std::sync::Arc;

use cegraph::catalog::io::{load_markov, save_markov};
use cegraph::catalog::MarkovTable;
use cegraph::core::render::{ceg_o_to_dot, molp_path_to_string};
use cegraph::core::{molp_min_path, Aggr, CegO, Heuristic, MolpInstance, PathLen};
use cegraph::estimators::{CardinalityEstimator, OptimisticEstimator};
use cegraph::graph::io::{load_graph, save_graph};
use cegraph::service::{Client, DatasetRegistry, Server, ServerConfig};
use cegraph::workload::io::{load_workload, save_workload};
use cegraph::workload::qerror::signed_log_qerror;
use cegraph::workload::runner::build_markov_parallel;
use cegraph::workload::{Dataset, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {}", err.msg);
            // Usage errors (bad/missing arguments) get the usage dump;
            // runtime failures (I/O, server errors) already said what
            // went wrong — a usage block would only bury the message.
            if err.kind == ErrorKind::Usage {
                eprintln!();
                match err.cmd.and_then(usage_for) {
                    // An argument error inside a known subcommand: show
                    // just that subcommand's usage, not the full block.
                    Some(usage) => eprintln!("usage:\n  {usage}"),
                    None => eprintln!("{}", full_usage().trim_end()),
                }
            }
            ExitCode::from(err.exit_code())
        }
    }
}

/// How a CLI invocation failed — the two classes exit differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    /// The arguments were wrong: usage on stderr, exit 2.
    Usage,
    /// The arguments were fine but the work failed: message only, exit 1.
    Runtime,
}

/// A CLI failure: the kind, the message, and (when known) which
/// subcommand's usage to print for usage errors.
#[derive(Debug)]
struct CliError {
    cmd: Option<&'static str>,
    kind: ErrorKind,
    msg: String,
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Usage => 2,
            ErrorKind::Runtime => 1,
        }
    }
}

/// A subcommand failure before the error is tagged with its subcommand.
struct CmdError {
    kind: ErrorKind,
    msg: String,
}

impl CmdError {
    fn usage(msg: impl Into<String>) -> CmdError {
        CmdError {
            kind: ErrorKind::Usage,
            msg: msg.into(),
        }
    }

    fn runtime(msg: impl ToString) -> CmdError {
        CmdError {
            kind: ErrorKind::Runtime,
            msg: msg.to_string(),
        }
    }
}

/// `?`-friendly conversions: bare strings are argument-parsing errors
/// (the dominant case in the subcommand bodies), I/O errors are runtime.
impl From<String> for CmdError {
    fn from(msg: String) -> Self {
        CmdError::usage(msg)
    }
}

impl From<&str> for CmdError {
    fn from(msg: &str) -> Self {
        CmdError::usage(msg)
    }
}

impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::runtime(e)
    }
}

type CmdResult = Result<(), CmdError>;

/// Subcommand name → usage line. One source of truth for both the full
/// usage block and per-subcommand errors.
const USAGE_LINES: &[(&str, &str)] = &[
    (
        "generate",
        "cegcli generate <imdb|yago|dblp|watdiv|hetionet|epinions> <seed> <out.edges>",
    ),
    (
        "workload",
        "cegcli workload <graph.edges> <job|acyclic|cyclic|gcare-acyclic|gcare-cyclic> <per-template> <seed> <out.wl>",
    ),
    (
        "stats",
        "cegcli stats <graph.edges> <queries.wl> <h> <out.markov> [--jobs N]",
    ),
    (
        "estimate",
        "cegcli estimate <graph.edges> <queries.wl> [markov.file] [heuristic] [--jobs N]",
    ),
    ("molp", "cegcli molp <graph.edges> <queries.wl>"),
    (
        "explain",
        "cegcli explain (<graph.edges> | <addr>) <queries.wl> <query-index> [dataset] [--deadline-ms N]",
    ),
    (
        "serve",
        "cegcli serve <addr> (<graph.edges> [markov.file|-] [h] | --snapshot <file.cegsnap>) [--data-dir <dir>] [--wal-rotate-bytes N] [--snapshot-every N] [--jobs N] [--drain-dir <dir>]",
    ),
    (
        "query",
        "cegcli query <addr> <queries.wl> [dataset] [--batch] [--deadline-ms N]",
    ),
    ("update", "cegcli update <addr> <updates.upd> [dataset]"),
    ("snapshot", "cegcli snapshot <addr> <out.cegsnap> [dataset]"),
    ("metrics", "cegcli metrics <addr>"),
    ("prom", "cegcli prom <addr> [--check]"),
    ("slowlog", "cegcli slowlog <addr> [n]"),
    ("shutdown", "cegcli shutdown <addr>"),
    ("wal", "cegcli wal <file.cegwal>"),
    ("lint", "cegcli lint"),
];

fn usage_for(cmd: &str) -> Option<&'static str> {
    USAGE_LINES
        .iter()
        .find(|(name, _)| *name == cmd)
        .map(|(_, usage)| *usage)
}

fn full_usage() -> String {
    let mut out = String::from("usage:\n");
    for (_, line) in USAGE_LINES {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn run(args: &[String]) -> Result<(), CliError> {
    let top = |msg: String| CliError {
        cmd: None,
        kind: ErrorKind::Usage,
        msg,
    };
    let cmd = args.first().ok_or_else(|| top("missing command".into()))?;
    let rest = &args[1..];
    let in_cmd = |name: &'static str, result: CmdResult| {
        result.map_err(|e| CliError {
            cmd: Some(name),
            kind: e.kind,
            msg: e.msg,
        })
    };
    match cmd.as_str() {
        "generate" => in_cmd("generate", generate(rest)),
        "workload" => in_cmd("workload", workload(rest)),
        "stats" => in_cmd("stats", stats(rest)),
        "estimate" => in_cmd("estimate", estimate(rest)),
        "molp" => in_cmd("molp", molp(rest)),
        "explain" => in_cmd("explain", explain(rest)),
        "serve" => in_cmd("serve", serve(rest)),
        "query" => in_cmd("query", query_cmd(rest)),
        "update" => in_cmd("update", update_cmd(rest)),
        "snapshot" => in_cmd("snapshot", snapshot_cmd(rest)),
        "metrics" => in_cmd("metrics", metrics_cmd(rest)),
        "prom" => in_cmd("prom", prom_cmd(rest)),
        "slowlog" => in_cmd("slowlog", slowlog_cmd(rest)),
        "shutdown" => in_cmd("shutdown", shutdown_cmd(rest)),
        "wal" => in_cmd("wal", wal_cmd(rest)),
        // The same pass as `cargo xtask lint`; the exit code carries the
        // verdict (0 clean, 1 diagnostics, 2 could not run).
        "lint" => std::process::exit(ceg_lint::lint_main()),
        other => Err(top(format!("unknown command `{other}`"))),
    }
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    Ok(match name {
        "imdb" => Dataset::Imdb,
        "yago" => Dataset::Yago,
        "dblp" => Dataset::Dblp,
        "watdiv" => Dataset::Watdiv,
        "hetionet" => Dataset::Hetionet,
        "epinions" => Dataset::Epinions,
        _ => return Err(format!("unknown dataset `{name}`")),
    })
}

fn parse_workload(name: &str) -> Result<Workload, String> {
    Ok(match name {
        "job" => Workload::Job,
        "acyclic" => Workload::Acyclic,
        "cyclic" => Workload::Cyclic,
        "gcare-acyclic" => Workload::GCareAcyclic,
        "gcare-cyclic" => Workload::GCareCyclic,
        _ => return Err(format!("unknown workload `{name}`")),
    })
}

fn parse_heuristic(name: &str) -> Result<Heuristic, String> {
    for h in Heuristic::all() {
        if h.name() == name {
            return Ok(h);
        }
    }
    Err(format!("unknown heuristic `{name}` (try max-hop-max)"))
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}"))
}

/// Strip a `--jobs N` flag from the argument list and return the
/// remaining positional arguments plus the worker count. `--jobs 0` means
/// "use every available core"; without the flag the count is 1 (serial,
/// the pre-flag behaviour). A repeated `--jobs` is an error (a silent
/// last-one-wins hides typos in scripts), and a flag-shaped token after
/// `--jobs` is rejected explicitly so `--jobs --foo` reports the missing
/// value instead of a confusing parse failure.
fn take_jobs(args: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs: Option<usize> = None;
    let mut set = |n: usize| -> Result<(), String> {
        if jobs.replace(n).is_some() {
            return Err("duplicate --jobs flag".into());
        }
        Ok(())
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let n = it.next().ok_or("missing value after --jobs")?;
            if n.starts_with('-') {
                return Err(format!(
                    "--jobs needs a worker count, got the flag-like token `{n}`"
                ));
            }
            set(n.parse().map_err(|_| format!("bad --jobs value `{n}`"))?)?;
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            if n.starts_with('-') {
                return Err(format!(
                    "--jobs needs a worker count, got the flag-like token `{n}`"
                ));
            }
            set(n.parse().map_err(|_| format!("bad --jobs value `{n}`"))?)?;
        } else {
            rest.push(a.clone());
        }
    }
    let mut jobs = jobs.unwrap_or(1);
    if jobs == 0 {
        // Explicit "all cores": uncapped, unlike the conservative
        // default_build_parallelism() used by implicit callers.
        jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
    }
    Ok((rest, jobs))
}

/// Strip a boolean `--<name>` flag from the argument list. A repeated
/// flag is harmless (idempotent), so it is not an error.
fn take_flag(args: &[String], name: &str) -> (Vec<String>, bool) {
    let flag = format!("--{name}");
    let rest: Vec<String> = args.iter().filter(|a| **a != flag).cloned().collect();
    let present = rest.len() != args.len();
    (rest, present)
}

/// Strip a valued `--<name> <value>` / `--<name>=<value>` option from the
/// argument list. Mirrors [`take_jobs`]' strictness: duplicates and
/// flag-shaped values are errors.
fn take_opt(args: &[String], name: &str) -> Result<(Vec<String>, Option<String>), String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut value: Option<String> = None;
    let mut set = |v: String| -> Result<(), String> {
        if value.replace(v).is_some() {
            return Err(format!("duplicate {flag} flag"));
        }
        Ok(())
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if *a == flag {
            let v = it.next().ok_or(format!("missing value after {flag}"))?;
            if v.starts_with('-') {
                return Err(format!(
                    "{flag} needs a value, got the flag-like token `{v}`"
                ));
            }
            set(v.clone())?;
        } else if let Some(v) = a.strip_prefix(&prefix) {
            if v.starts_with('-') {
                return Err(format!(
                    "{flag} needs a value, got the flag-like token `{v}`"
                ));
            }
            set(v.to_string())?;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, value))
}

fn generate(args: &[String]) -> CmdResult {
    let ds = parse_dataset(arg(args, 0, "dataset")?)?;
    let seed: u64 = arg(args, 1, "seed")?.parse().map_err(|_| "bad seed")?;
    let out = arg(args, 2, "output path")?;
    let g = ds.generate(seed);
    save_graph(&g, out).map_err(CmdError::runtime)?;
    println!(
        "{}: |V|={} |E|={} labels={} -> {out}",
        ds.name(),
        g.num_vertices(),
        g.num_edges(),
        g.num_labels()
    );
    Ok(())
}

fn workload(args: &[String]) -> CmdResult {
    // Validate every argument before touching the filesystem, so bad
    // invocations are always usage errors, never half-done work.
    let graph_path = arg(args, 0, "graph path")?;
    let wl = parse_workload(arg(args, 1, "workload")?)?;
    let per: usize = arg(args, 2, "per-template")?
        .parse()
        .map_err(|_| "bad per-template")?;
    let seed: u64 = arg(args, 3, "seed")?.parse().map_err(|_| "bad seed")?;
    let out = arg(args, 4, "output path")?;
    let g = load_graph(graph_path).map_err(CmdError::runtime)?;
    let queries = wl.build(&g, per, seed);
    save_workload(&queries, out).map_err(CmdError::runtime)?;
    println!("{}: {} queries -> {out}", wl.name(), queries.len());
    Ok(())
}

fn stats(args: &[String]) -> CmdResult {
    let (args, jobs) = take_jobs(args)?;
    // Arguments first, filesystem second (see `workload`).
    let graph_path = arg(&args, 0, "graph path")?;
    let workload_path = arg(&args, 1, "workload path")?;
    let h: usize = arg(&args, 2, "h")?.parse().map_err(|_| "bad h")?;
    let out = arg(&args, 3, "output path")?;
    let g = load_graph(graph_path).map_err(CmdError::runtime)?;
    let queries = load_workload(workload_path).map_err(CmdError::runtime)?;
    let table = build_markov_parallel(&g, &queries, h, jobs);
    save_markov(&table, out).map_err(CmdError::runtime)?;
    println!(
        "markov table h={h}: {} entries (~{:.1} KB, {jobs} jobs) -> {out}",
        table.len(),
        table.approx_bytes() as f64 / 1024.0
    );
    Ok(())
}

fn estimate(args: &[String]) -> CmdResult {
    let (args, jobs) = take_jobs(args)?;
    let args = &args[..];
    // Arguments first, filesystem (and catalog building) second (see
    // `workload`) — a bad heuristic name must not cost two file loads
    // and a catalog build before it is reported.
    let graph_path = arg(args, 0, "graph path")?;
    let workload_path = arg(args, 1, "workload path")?;
    let heuristic = match args.get(3) {
        Some(name) => parse_heuristic(name)?,
        None => Heuristic::new(PathLen::MaxHop, Aggr::Max),
    };
    let g = load_graph(graph_path).map_err(CmdError::runtime)?;
    let queries = load_workload(workload_path).map_err(CmdError::runtime)?;
    let table = match args.get(2) {
        Some(path) => load_markov(path).map_err(CmdError::runtime)?,
        None => build_markov_parallel(&g, &queries, 2, jobs),
    };
    let mut est = OptimisticEstimator::new(&table, heuristic);
    println!(
        "{:<20} {:>14} {:>14} {:>9}",
        "template", "estimate", "truth", "log10-q"
    );
    for wq in &queries {
        match est.estimate(&wq.query) {
            Some(e) => println!(
                "{:<20} {:>14.1} {:>14.1} {:>9.2}",
                wq.template,
                e,
                wq.truth,
                signed_log_qerror(e, wq.truth)
            ),
            None => println!("{:<20} {:>14} {:>14.1}", wq.template, "-", wq.truth),
        }
    }
    Ok(())
}

fn molp(args: &[String]) -> CmdResult {
    let g = load_graph(arg(args, 0, "graph path")?).map_err(CmdError::runtime)?;
    let queries = load_workload(arg(args, 1, "workload path")?).map_err(CmdError::runtime)?;
    for wq in &queries {
        let inst = MolpInstance::from_graph(&g, &wq.query);
        let Some((bound, steps)) = molp_min_path(&inst) else {
            println!("{}: unbounded", wq.template);
            continue;
        };
        println!(
            "{}: MOLP bound {bound:.1} (truth {}), minimum path:",
            wq.template, wq.truth
        );
        print!("{}", molp_path_to_string(&wq.query, &steps));
    }
    Ok(())
}

fn explain(args: &[String]) -> CmdResult {
    // Two forms share the verb: a server address (contains `:`) sends
    // EXPLAIN_ESTIMATE to a running server; a graph file renders the
    // CEG_O locally. File paths with a colon are not a thing this CLI
    // produces, addresses without one are not accepted by `connect`.
    if arg(args, 0, "graph path or server address")?.contains(':') {
        return explain_wire(args);
    }
    // Arguments first, filesystem second (see `workload`).
    let graph_path = arg(args, 0, "graph path")?;
    let workload_path = arg(args, 1, "workload path")?;
    let idx: usize = arg(args, 2, "query index")?
        .parse()
        .map_err(|_| "bad index")?;
    let g = load_graph(graph_path).map_err(CmdError::runtime)?;
    let queries = load_workload(workload_path).map_err(CmdError::runtime)?;
    let wq = queries.get(idx).ok_or("query index out of range")?;
    let table = MarkovTable::build_for_query(&g, &wq.query, 2);
    let ceg = CegO::build(&wq.query, &table);
    print!("{}", ceg_o_to_dot(&ceg, &wq.query));
    Ok(())
}

/// The wire form of `explain`: send one workload query as
/// `EXPLAIN_ESTIMATE` and print the estimate plus the server-side trace
/// (named wall-clock spans and counters) that produced it.
fn explain_wire(args: &[String]) -> CmdResult {
    use cegraph::service::QueryReply;
    let (args, deadline) = take_opt(args, "deadline-ms")?;
    let deadline_ms: Option<u64> = deadline
        .map(|s| {
            s.parse()
                .map_err(|_| format!("bad --deadline-ms value `{s}`"))
        })
        .transpose()?;
    // Arguments first, filesystem second (see `workload`).
    let addr = arg(&args, 0, "server address")?;
    let workload_path = arg(&args, 1, "workload path")?;
    let idx: usize = arg(&args, 2, "query index")?
        .parse()
        .map_err(|_| "bad index")?;
    let dataset = args.get(3).map(String::as_str).unwrap_or("default");
    if args.len() > 4 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let queries = load_workload(workload_path).map_err(CmdError::runtime)?;
    let wq = queries.get(idx).ok_or("query index out of range")?;
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let ex = client
        .explain(dataset, &wq.query, deadline_ms)
        .map_err(CmdError::runtime)?;
    println!(
        "query {idx} ({}) on `{dataset}` id={}",
        wq.template,
        ex.id.map_or_else(|| "?".to_string(), |i| i.to_string())
    );
    match &ex.reply {
        QueryReply::Estimate(r) => {
            let cache = if r.cached { "hit" } else { "miss" };
            match r.value {
                Some(e) => println!(
                    "estimate {e:.1} (truth {:.1}, log10-q {:.2}, cache {cache})",
                    wq.truth,
                    signed_log_qerror(e, wq.truth)
                ),
                None => println!("estimate - (truth {:.1}, cache {cache})", wq.truth),
            }
        }
        QueryReply::Timeout { deadline_ms } => println!("timeout after {deadline_ms}ms"),
        QueryReply::Busy(msg) => println!("busy: {msg}"),
    }
    println!("spans:");
    for (name, micros) in &ex.spans {
        println!("  {name:<28} {micros:>10} us");
    }
    println!("counters:");
    for (name, value) in &ex.counters {
        println!("  {name:<28} {value:>10}");
    }
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// SIGTERM (and nothing else) flips this; the serve loop notices and
/// starts a graceful drain. A signal handler may only do async-signal-safe
/// work, which a relaxed store into a static atomic is.
static SIGTERM_RECEIVED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM_RECEIVED.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Install the SIGTERM handler via the raw libc `signal(2)` symbol — the
/// build environment has no crates-registry access, so no `libc`/`signal-hook`.
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Run the estimation server until a drain is requested (SIGTERM or the
/// wire `SHUTDOWN` command), then exit 0 after writing one final
/// snapshot per dataset into `--drain-dir` (if given). The graph (and
/// optional persisted Markov catalog) is loaded once and registered as
/// dataset `default`; without a catalog (omitted or `-`), statistics are
/// counted on demand at hop depth `h` (default 2, like `cegcli stats`)
/// as requests arrive and kept warm. `--jobs N` counts missing patterns
/// on up to `N` worker threads (`--jobs 0` = all cores).
fn serve(args: &[String]) -> CmdResult {
    let (args, jobs) = take_jobs(args)?;
    let (args, snapshot_path) = take_opt(&args, "snapshot")?;
    let (args, drain_dir) = take_opt(&args, "drain-dir")?;
    let (args, data_dir) = take_opt(&args, "data-dir")?;
    let (args, rotate_bytes) = take_opt(&args, "wal-rotate-bytes")?;
    let (args, snapshot_every) = take_opt(&args, "snapshot-every")?;
    let args = &args[..];
    let defaults = ServerConfig::default();
    let parse_u64 = |name: &str, v: &Option<String>, default: u64| -> Result<u64, CmdError> {
        match v {
            Some(s) => s
                .parse()
                .map_err(|_| CmdError::usage(format!("bad --{name} value `{s}`"))),
            None => Ok(default),
        }
    };
    let wal_rotate_bytes = parse_u64("wal-rotate-bytes", &rotate_bytes, defaults.wal_rotate_bytes)?;
    let snapshot_interval_commits = parse_u64(
        "snapshot-every",
        &snapshot_every,
        defaults.snapshot_interval_commits,
    )?;
    if data_dir.is_none() && (rotate_bytes.is_some() || snapshot_every.is_some()) {
        return Err(CmdError::usage(
            "--wal-rotate-bytes / --snapshot-every tune the write-ahead log, which needs --data-dir",
        ));
    }
    if data_dir.is_some() && snapshot_path.is_some() {
        return Err(CmdError::usage(
            "--data-dir and --snapshot both pick the boot state; use one",
        ));
    }
    let addr = arg(args, 0, "listen address")?;
    let registry = Arc::new(DatasetRegistry::with_jobs(jobs));
    // Load the graph/markov/h positional arguments — the cold-boot path,
    // shared by plain serving and the first boot of a durable data dir.
    let load_from_files =
        |args: &[String]| -> Result<Arc<cegraph::service::DatasetEntry>, CmdError> {
            let graph_path = arg(args, 1, "graph path")?;
            let markov_path = args.get(2).map(String::as_str).filter(|p| *p != "-");
            let h: usize = match args.get(3) {
                Some(s) => s.parse().map_err(|_| "bad h")?,
                None => 2,
            };
            if args.len() > 4 {
                return Err(CmdError::usage("unexpected extra arguments"));
            }
            let entry = registry
                .load_files("default", graph_path, markov_path, h)
                .map_err(CmdError::runtime)?;
            // A persisted catalog carries its own hop depth; refuse a
            // contradictory explicit h instead of silently ignoring it.
            if args.get(3).is_some() && entry.h() != h {
                return Err(CmdError::usage(format!(
                    "markov file was built at h={}, which contradicts the requested h={h}",
                    entry.h()
                )));
            }
            Ok(entry)
        };
    let mut recovery: Option<cegraph::service::RecoveryReport> = None;
    let mut boot_note = "";
    let entry = if let Some(dir) = &data_dir {
        use cegraph::graph::snapshot::sweep_orphan_temps;
        use cegraph::graph::vfs::OsStorage;
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)?;
        // A hard crash mid-rotation can leave half-written temp files
        // behind; sweep them before any writer is live.
        let swept = sweep_orphan_temps(&OsStorage, dir)?;
        for path in &swept {
            println!("swept orphaned temp file {}", path.display());
        }
        let snap = dir.join("default.cegsnap");
        let wal = dir.join("default.cegwal");
        if snap.exists() {
            // The data dir is authoritative once initialized: the graph
            // arguments were its seed and are ignored on restart, so the
            // exact same command line survives a crash loop.
            if args.len() > 1 {
                println!(
                    "data dir {} is already initialized; recovering from it and \
                     ignoring the graph arguments",
                    dir.display()
                );
            }
            let (entry, report) = registry
                .recover("default", Arc::new(OsStorage), &snap, &wal)
                .map_err(CmdError::runtime)?;
            println!(
                "recovered `default` from {}: snapshot epoch {}, replayed {} commits \
                 ({} ops) -> epoch {}{}",
                dir.display(),
                report.snapshot_epoch,
                report.replayed_commits,
                report.replayed_ops,
                report.epoch,
                report
                    .torn_tail
                    .as_deref()
                    .map(|d| format!(", torn tail truncated ({d})"))
                    .unwrap_or_default(),
            );
            recovery = Some(report);
            boot_note = ", recovered from data dir";
            entry
        } else {
            let entry = load_from_files(args)?;
            entry
                .attach_durability(Arc::new(OsStorage), &snap, &wal)
                .map_err(CmdError::runtime)?;
            boot_note = ", durable commits";
            entry
        }
    } else if let Some(snap) = &snapshot_path {
        // Boot-time restore: the snapshot carries graph, catalog and
        // epoch, so a graph/markov/h argument would contradict it.
        if args.len() > 1 {
            return Err(CmdError::usage(
                "--snapshot replaces the graph/markov/h arguments",
            ));
        }
        boot_note = ", restored from snapshot";
        registry
            .load_snapshot("default", snap)
            .map_err(CmdError::runtime)?
    } else {
        load_from_files(args)?
    };
    let config = ServerConfig {
        drain_snapshot_dir: drain_dir.map(std::path::PathBuf::from),
        wal_rotate_bytes,
        snapshot_interval_commits,
        ..ServerConfig::default()
    };
    let server = Server::start(registry, addr, config.clone()).map_err(CmdError::runtime)?;
    if let Some(report) = &recovery {
        server.engine().record_recovery(report);
    }
    let (num_vertices, num_edges) = entry.graph_summary();
    println!(
        "serving `default` ({} vertices, {} edges, {} catalog entries, epoch {}) on {} \
         [{} workers, batch<={}, cache {} buckets, {} catalog jobs{}]",
        num_vertices,
        num_edges,
        entry.catalog_len(),
        entry.epoch(),
        server.local_addr(),
        config.workers,
        config.batch_max,
        config.cache_capacity,
        entry.jobs(),
        boot_note,
    );
    // Serve until a drain is requested: SIGTERM flips the static flag
    // (checked every wakeup), the wire SHUTDOWN command trips the
    // server's own condvar directly.
    install_sigterm_handler();
    loop {
        if SIGTERM_RECEIVED.load(std::sync::atomic::Ordering::Relaxed) {
            server.request_drain();
        }
        if server.wait_drain_requested(std::time::Duration::from_millis(200)) {
            break;
        }
    }
    println!("drain requested, shutting down...");
    let report = server.drain().map_err(CmdError::runtime)?;
    for (name, path, bytes) in &report.snapshots {
        println!(
            "final snapshot of `{name}` -> {} ({bytes} bytes)",
            path.display()
        );
    }
    if report.abandoned > 0 {
        println!("{} in-flight requests abandoned at drain", report.abandoned);
    }
    println!("drained, exiting");
    Ok(())
}

/// Send every query of a workload file to a running server and print the
/// estimates next to the stored ground truth. With `--batch`, the whole
/// workload travels as one `ESTIMATE_BATCH` — a single wire round-trip
/// instead of one per query. `--deadline-ms N` bounds each request (the
/// whole batch, with `--batch`); overload rejections print as `busy` /
/// `timeout` rows rather than aborting the run.
fn query_cmd(args: &[String]) -> CmdResult {
    use cegraph::service::QueryReply;
    let (args, batch) = take_flag(args, "batch");
    let (args, deadline) = take_opt(&args, "deadline-ms")?;
    let deadline_ms: Option<u64> = deadline
        .map(|s| {
            s.parse()
                .map_err(|_| format!("bad --deadline-ms value `{s}`"))
        })
        .transpose()?;
    // Arguments first, filesystem second (see `workload`).
    let addr = arg(&args, 0, "server address")?;
    let workload_path = arg(&args, 1, "workload path")?;
    let dataset = args.get(2).map(String::as_str).unwrap_or("default");
    if args.len() > 3 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let queries = load_workload(workload_path).map_err(CmdError::runtime)?;
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let replies: Vec<QueryReply> = if batch {
        let qs: Vec<_> = queries.iter().map(|wq| wq.query.clone()).collect();
        client
            .estimate_batch_with_deadline(dataset, &qs, deadline_ms)
            .map_err(CmdError::runtime)?
    } else {
        let mut replies = Vec::with_capacity(queries.len());
        for wq in &queries {
            replies.push(
                client
                    .estimate_with_deadline(dataset, &wq.query, deadline_ms)
                    .map_err(CmdError::runtime)?,
            );
        }
        replies
    };
    println!(
        "{:<20} {:>14} {:>14} {:>9} {:>6}",
        "template", "estimate", "truth", "log10-q", "cache"
    );
    let (mut busy, mut timeouts) = (0usize, 0usize);
    for (wq, reply) in queries.iter().zip(&replies) {
        let reply = match reply {
            QueryReply::Estimate(r) => r,
            QueryReply::Busy(_) => {
                busy += 1;
                println!("{:<20} {:>14} {:>14.1}", wq.template, "busy", wq.truth);
                continue;
            }
            QueryReply::Timeout { .. } => {
                timeouts += 1;
                println!("{:<20} {:>14} {:>14.1}", wq.template, "timeout", wq.truth);
                continue;
            }
        };
        let cache = if reply.cached { "hit" } else { "miss" };
        match reply.value {
            Some(e) => println!(
                "{:<20} {:>14.1} {:>14.1} {:>9.2} {:>6}",
                wq.template,
                e,
                wq.truth,
                signed_log_qerror(e, wq.truth),
                cache
            ),
            None => println!(
                "{:<20} {:>14} {:>14.1} {:>9} {:>6}",
                wq.template, "-", wq.truth, "-", cache
            ),
        }
    }
    if busy + timeouts > 0 {
        println!("{busy} busy rejections, {timeouts} timeouts");
    }
    let stats = client.stats().map_err(CmdError::runtime)?;
    println!(
        "server: {} requests in {} batches, cache {} hits / {} misses",
        stats.requests, stats.batches, stats.cache_hits, stats.cache_misses
    );
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Stream a scripted `.upd` update file to a running server: `add`/`del`
/// lines buffer into the dataset's pending delta, each `commit` applies
/// the batch and prints what it did (epoch, effective adds/dels, catalog
/// entries recounted, whether the overlay was folded into a fresh CSR).
fn update_cmd(args: &[String]) -> CmdResult {
    use cegraph::workload::updates::{load_updates, UpdateOp};
    let addr = arg(args, 0, "server address")?;
    let stream = load_updates(arg(args, 1, "updates path")?).map_err(CmdError::runtime)?;
    let dataset = args.get(2).map(String::as_str).unwrap_or("default");
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let (mut adds, mut dels, mut commits) = (0usize, 0usize, 0usize);
    for op in &stream {
        match *op {
            UpdateOp::Add { src, dst, label } => {
                client
                    .add_edge(dataset, src, dst, label)
                    .map_err(CmdError::runtime)?;
                adds += 1;
            }
            UpdateOp::Del { src, dst, label } => {
                client
                    .del_edge(dataset, src, dst, label)
                    .map_err(CmdError::runtime)?;
                dels += 1;
            }
            UpdateOp::Commit => {
                let c = client.commit(dataset).map_err(CmdError::runtime)?;
                commits += 1;
                println!(
                    "commit #{commits}: epoch={} added={} deleted={} recounted={} rebased={}",
                    c.epoch, c.added, c.deleted, c.recounted, c.rebased
                );
            }
        }
    }
    println!(
        "streamed {} operations ({adds} adds, {dels} dels, {commits} commits) to `{dataset}`",
        stream.len()
    );
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Ask a running server to persist a dataset's committed graph, Markov
/// catalog and epoch to a binary `.cegsnap` file on the **server's**
/// filesystem; `cegcli serve --snapshot <file>` restores from it.
fn snapshot_cmd(args: &[String]) -> CmdResult {
    let addr = arg(args, 0, "server address")?;
    let path = arg(args, 1, "snapshot output path")?;
    let dataset = args.get(2).map(String::as_str).unwrap_or("default");
    if args.len() > 3 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let ack = client.snapshot(dataset, path).map_err(CmdError::runtime)?;
    println!(
        "snapshot of `{dataset}` at epoch {} -> {path} ({} bytes)",
        ack.epoch, ack.bytes
    );
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Dump a running server's metrics registry (latency quantiles per
/// command, queue depths, BUSY/timeout/error counters) as `<key> <value>`
/// lines — grep-friendly for dashboards and CI smoke checks.
fn metrics_cmd(args: &[String]) -> CmdResult {
    let addr = arg(args, 0, "server address")?;
    if args.len() > 1 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let pairs = client.metrics().map_err(CmdError::runtime)?;
    for (key, value) in &pairs {
        println!("{key} {value}");
    }
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Dump a running server's metrics registry in Prometheus text
/// exposition format (the `METRICS_PROM` command). With `--check`, the
/// exposition is also validated locally — every `# TYPE`d family has at
/// least one sample, histogram buckets are cumulative and agree with
/// `_count` — and a malformed exposition is a runtime error (exit 1),
/// which is what the CI smoke step greps for.
fn prom_cmd(args: &[String]) -> CmdResult {
    let (args, check) = take_flag(args, "check");
    let addr = arg(&args, 0, "server address")?;
    if args.len() > 1 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let lines = client.metrics_prom().map_err(CmdError::runtime)?;
    for line in &lines {
        println!("{line}");
    }
    if check {
        let (families, samples) = check_exposition(&lines).map_err(CmdError::runtime)?;
        eprintln!("exposition OK: {families} families, {samples} samples");
    }
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Validate a Prometheus text exposition: every sample belongs to a
/// declared (`# TYPE`) family, every declared family has at least one
/// sample, histogram buckets are cumulative with a closing `+Inf` that
/// matches `_count`. Returns `(families, samples)` on success.
fn check_exposition(lines: &[String]) -> Result<(usize, usize), String> {
    use std::collections::HashMap;
    #[derive(Default)]
    struct Hist {
        last_bucket: Option<f64>,
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut families: HashMap<String, &str> = HashMap::new();
    let mut sampled: HashMap<String, usize> = HashMap::new();
    let mut hists: HashMap<String, Hist> = HashMap::new();
    let mut samples = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or(format!("line {lineno}: # TYPE without a metric name"))?;
            let kind = match it.next() {
                Some(k @ ("counter" | "gauge" | "histogram")) => k,
                Some(k) => return Err(format!("line {lineno}: unknown metric type `{k}`")),
                None => return Err(format!("line {lineno}: # TYPE `{name}` without a type")),
            };
            if families.insert(name.to_string(), kind).is_some() {
                return Err(format!("line {lineno}: duplicate # TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (id, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample without a value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: bad sample value `{value}`"))?;
        let name = id.split('{').next().unwrap_or(id);
        // A histogram's samples carry suffixed names; fold them back
        // onto the declared family.
        let family = [("_bucket"), ("_sum"), ("_count")]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| families.get(*base).copied() == Some("histogram"))
            })
            .unwrap_or(name);
        let Some(&kind) = families.get(family) else {
            return Err(format!(
                "line {lineno}: sample `{name}` has no preceding # TYPE"
            ));
        };
        *sampled.entry(family.to_string()).or_insert(0) += 1;
        samples += 1;
        if kind == "counter" && value < 0.0 {
            return Err(format!("line {lineno}: negative counter `{name}`"));
        }
        if kind == "histogram" {
            let h = hists.entry(family.to_string()).or_default();
            if name.ends_with("_bucket") {
                if h.last_bucket.is_some_and(|last| value < last) {
                    return Err(format!(
                        "line {lineno}: bucket of `{family}` not cumulative ({value} after {})",
                        h.last_bucket.unwrap()
                    ));
                }
                h.last_bucket = Some(value);
                if id.contains("le=\"+Inf\"") {
                    h.inf = Some(value);
                }
            } else if name.ends_with("_count") {
                h.count = Some(value);
            }
        }
    }
    for name in families.keys() {
        if sampled.get(name).copied().unwrap_or(0) == 0 {
            return Err(format!("family `{name}` declared but has no samples"));
        }
    }
    for (name, h) in &hists {
        let inf = h
            .inf
            .ok_or(format!("histogram `{name}` lacks an le=\"+Inf\" bucket"))?;
        match h.count {
            Some(c) if c == inf => {}
            Some(c) => {
                return Err(format!(
                    "histogram `{name}`: _count {c} disagrees with +Inf bucket {inf}"
                ))
            }
            None => return Err(format!("histogram `{name}` lacks a _count sample")),
        }
    }
    Ok((families.len(), samples))
}

/// Dump a running server's slow-query log, newest first (the `SLOWLOG`
/// command): request id, dataset, epoch, phase timings and the query
/// itself for every over-threshold estimate the server kept.
fn slowlog_cmd(args: &[String]) -> CmdResult {
    let addr = arg(args, 0, "server address")?;
    let n: Option<usize> = args
        .get(1)
        .map(|s| s.parse().map_err(|_| format!("bad entry count `{s}`")))
        .transpose()?;
    if args.len() > 2 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    let entries = client.slowlog(n).map_err(CmdError::runtime)?;
    if entries.is_empty() {
        println!("slow-query log is empty");
    }
    for e in &entries {
        println!(
            "id={} dataset={} epoch={} total={}us (cache {}us, fill {}us, estimate {}us) query: {}",
            e.id, e.dataset, e.epoch, e.micros, e.cache_us, e.fill_us, e.estimate_us, e.query
        );
    }
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Ask a running server to drain gracefully: it stops accepting work,
/// answers in-flight clients with typed replies, writes its final
/// snapshots (if configured with `--drain-dir`) and exits 0.
fn shutdown_cmd(args: &[String]) -> CmdResult {
    let addr = arg(args, 0, "server address")?;
    if args.len() > 1 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let mut client = Client::connect(addr).map_err(CmdError::runtime)?;
    client.shutdown_server().map_err(CmdError::runtime)?;
    println!("server at {addr} is draining");
    client.quit().map_err(CmdError::runtime)?;
    Ok(())
}

/// Inspect a `.cegwal` write-ahead log offline: the committed
/// transactions it holds (epoch and operation counts), how much of the
/// file is trustworthy, and — after a crash — the scanner's diagnosis
/// of the torn tail. Damage is reported, never "repaired": the file is
/// only read.
fn wal_cmd(args: &[String]) -> CmdResult {
    use cegraph::graph::wal::scan_bytes;
    let path = arg(args, 0, "WAL path")?;
    if args.len() > 1 {
        return Err(CmdError::usage("unexpected extra arguments"));
    }
    let bytes = std::fs::read(path).map_err(CmdError::runtime)?;
    let scan = scan_bytes(&bytes).map_err(CmdError::runtime)?;
    println!(
        "{path}: {} bytes, {} records, {} committed transactions",
        bytes.len(),
        scan.records,
        scan.txs.len()
    );
    for tx in &scan.txs {
        let (adds, dels) = tx
            .ops
            .iter()
            .fold((0usize, 0usize), |(a, d), op| match op.del {
                false => (a + 1, d),
                true => (a, d + 1),
            });
        println!(
            "  epoch {:>6}: {:>5} ops ({adds} adds, {dels} dels)",
            tx.epoch,
            tx.ops.len()
        );
    }
    match (scan.last_epoch(), scan.txs.first()) {
        (Some(last), Some(first)) => println!("epoch range {}..={last}", first.epoch),
        _ => println!("no committed transactions"),
    }
    let trailing = bytes.len() as u64 - scan.valid_len.min(bytes.len() as u64);
    match &scan.diagnosis {
        Some(why) => println!(
            "torn tail: {trailing} trailing bytes beyond valid length {} ({why}); \
             re-opening for append would truncate them",
            scan.valid_len
        ),
        None => println!(
            "clean: every byte accounted for (valid length {})",
            scan.valid_len
        ),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{take_flag, take_jobs, take_opt};

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_jobs_default_is_serial() {
        let (rest, jobs) = take_jobs(&strs(&["a", "b"])).unwrap();
        assert_eq!(rest, strs(&["a", "b"]));
        assert_eq!(jobs, 1);
    }

    #[test]
    fn take_jobs_accepts_both_spellings() {
        let (rest, jobs) = take_jobs(&strs(&["a", "--jobs", "3", "b"])).unwrap();
        assert_eq!(rest, strs(&["a", "b"]));
        assert_eq!(jobs, 3);
        let (rest, jobs) = take_jobs(&strs(&["--jobs=5", "x"])).unwrap();
        assert_eq!(rest, strs(&["x"]));
        assert_eq!(jobs, 5);
    }

    #[test]
    fn take_jobs_zero_means_all_cores() {
        let (_, jobs) = take_jobs(&strs(&["--jobs", "0"])).unwrap();
        assert!(jobs >= 1);
    }

    #[test]
    fn take_jobs_rejects_duplicates() {
        let err = take_jobs(&strs(&["--jobs", "2", "--jobs", "3"])).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = take_jobs(&strs(&["--jobs=2", "--jobs", "2"])).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = take_jobs(&strs(&["--jobs=2", "--jobs=4"])).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn take_jobs_rejects_flag_shaped_values() {
        let err = take_jobs(&strs(&["--jobs", "--verbose"])).unwrap_err();
        assert!(err.contains("flag-like"), "{err}");
        let err = take_jobs(&strs(&["--jobs=-2"])).unwrap_err();
        assert!(err.contains("flag-like"), "{err}");
        assert!(take_jobs(&strs(&["--jobs"])).is_err());
        assert!(take_jobs(&strs(&["--jobs", "x"])).is_err());
    }

    #[test]
    fn take_flag_strips_every_occurrence() {
        let (rest, on) = take_flag(&strs(&["a", "--batch", "b"]), "batch");
        assert_eq!(rest, strs(&["a", "b"]));
        assert!(on);
        let (rest, on) = take_flag(&strs(&["a", "b"]), "batch");
        assert_eq!(rest, strs(&["a", "b"]));
        assert!(!on);
        let (rest, on) = take_flag(&strs(&["--batch", "--batch"]), "batch");
        assert!(rest.is_empty());
        assert!(on);
    }

    #[test]
    fn take_opt_accepts_both_spellings_and_rejects_abuse() {
        let (rest, v) =
            take_opt(&strs(&["a", "--snapshot", "s.cegsnap", "b"]), "snapshot").unwrap();
        assert_eq!(rest, strs(&["a", "b"]));
        assert_eq!(v.as_deref(), Some("s.cegsnap"));
        let (rest, v) = take_opt(&strs(&["--snapshot=s.cegsnap"]), "snapshot").unwrap();
        assert!(rest.is_empty());
        assert_eq!(v.as_deref(), Some("s.cegsnap"));
        let (_, v) = take_opt(&strs(&["a"]), "snapshot").unwrap();
        assert_eq!(v, None);
        assert!(take_opt(&strs(&["--snapshot"]), "snapshot").is_err());
        assert!(take_opt(&strs(&["--snapshot", "--x"]), "snapshot").is_err());
        let err = take_opt(&strs(&["--snapshot=a", "--snapshot", "b"]), "snapshot").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    // --- Prometheus exposition checker ------------------------------------

    use super::check_exposition;

    fn expo(lines: &[&str]) -> Vec<String> {
        lines.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn check_exposition_accepts_a_well_formed_dump() {
        let lines = expo(&[
            "# TYPE ceg_requests_total counter",
            "ceg_requests_total 42",
            "# TYPE ceg_dataset_epoch gauge",
            "ceg_dataset_epoch{dataset=\"default\"} 3",
            "# TYPE ceg_latency_estimate_us histogram",
            "ceg_latency_estimate_us_bucket{le=\"1\"} 0",
            "ceg_latency_estimate_us_bucket{le=\"2\"} 2",
            "ceg_latency_estimate_us_bucket{le=\"+Inf\"} 5",
            "ceg_latency_estimate_us_sum 900",
            "ceg_latency_estimate_us_count 5",
        ]);
        assert_eq!(check_exposition(&lines), Ok((3, 7)));
    }

    #[test]
    fn check_exposition_rejects_malformed_dumps() {
        for (lines, needle) in [
            // A declared family with no samples is invalid exposition.
            (expo(&["# TYPE ceg_requests_total counter"]), "no samples"),
            // A sample must follow its # TYPE declaration.
            (expo(&["ceg_requests_total 42"]), "no preceding # TYPE"),
            (
                expo(&[
                    "# TYPE h histogram",
                    "h_bucket{le=\"1\"} 5",
                    "h_bucket{le=\"2\"} 3",
                    "h_bucket{le=\"+Inf\"} 5",
                    "h_sum 1",
                    "h_count 5",
                ]),
                "not cumulative",
            ),
            (
                expo(&[
                    "# TYPE h histogram",
                    "h_bucket{le=\"+Inf\"} 5",
                    "h_sum 1",
                    "h_count 4",
                ]),
                "disagrees",
            ),
            (
                expo(&["# TYPE h histogram", "h_bucket{le=\"1\"} 5", "h_count 5"]),
                "+Inf",
            ),
            (
                expo(&["# TYPE x counter", "# TYPE x counter", "x 1"]),
                "duplicate",
            ),
            (expo(&["# TYPE x widget", "x 1"]), "unknown metric type"),
            (expo(&["# TYPE x counter", "x nope"]), "bad sample value"),
        ] {
            let err = check_exposition(&lines).unwrap_err();
            assert!(err.contains(needle), "{lines:?}: `{err}` lacks `{needle}`");
        }
    }

    // --- exit-path normalization -----------------------------------------
    //
    // The contract `main` builds on: argument mistakes are Usage errors
    // (usage block on stderr, exit 2), failures doing the work are
    // Runtime errors (message only, exit 1) — never mixed.

    use super::{run, usage_for, CliError, ErrorKind};

    fn fail(args: &[&str]) -> CliError {
        run(&strs(args)).expect_err("should fail")
    }

    #[test]
    fn missing_and_unknown_commands_are_usage_errors() {
        let err = fail(&[]);
        assert_eq!(err.kind, ErrorKind::Usage);
        assert_eq!(err.cmd, None);
        assert_eq!(err.exit_code(), 2);
        let err = fail(&["frobnicate"]);
        assert_eq!(err.kind, ErrorKind::Usage);
        assert_eq!(err.cmd, None);
    }

    #[test]
    fn missing_arguments_are_usage_errors_tagged_with_the_subcommand() {
        for (args, cmd) in [
            (vec!["stats"], "stats"),
            (vec!["generate"], "generate"),
            (vec!["generate", "hetionet"], "generate"),
            (vec!["serve"], "serve"),
            (vec!["query"], "query"),
            (vec!["snapshot"], "snapshot"),
            (vec!["explain", "g", "w"], "explain"),
            (vec!["explain", "127.0.0.1:0", "w"], "explain"),
            (vec!["prom"], "prom"),
            (vec!["slowlog"], "slowlog"),
            (vec!["slowlog", "127.0.0.1:0", "zero"], "slowlog"),
        ] {
            let err = fail(&args);
            assert_eq!(err.kind, ErrorKind::Usage, "{args:?}: {}", err.msg);
            assert_eq!(err.cmd, Some(cmd), "{args:?}");
            assert_eq!(err.exit_code(), 2);
            assert!(usage_for(cmd).is_some(), "usage line exists for {cmd}");
        }
    }

    #[test]
    fn bad_argument_values_are_usage_errors() {
        let err = fail(&["generate", "hetionet", "not-a-seed", "/tmp/x.edges"]);
        assert_eq!(err.kind, ErrorKind::Usage);
        let err = fail(&["stats", "g", "w", "2", "out", "--jobs", "x"]);
        assert_eq!(err.kind, ErrorKind::Usage);
        let err = fail(&["serve", "addr", "graph", "--snapshot", "s", "extra"]);
        assert_eq!(err.kind, ErrorKind::Usage);
    }

    #[test]
    fn durability_flags_are_validated_before_any_io() {
        // The WAL tuning knobs are meaningless without a data dir, and
        // two boot-state sources contradict each other; both must fail
        // as usage errors without touching the filesystem or network.
        for args in [
            vec!["serve", "addr", "g", "--wal-rotate-bytes", "4096"],
            vec!["serve", "addr", "g", "--snapshot-every", "8"],
            vec!["serve", "addr", "--snapshot", "s", "--data-dir", "d"],
            vec![
                "serve",
                "addr",
                "g",
                "--data-dir",
                "d",
                "--wal-rotate-bytes",
                "nope",
            ],
        ] {
            let err = fail(&args);
            assert_eq!(err.kind, ErrorKind::Usage, "{args:?}: {}", err.msg);
            assert_eq!(err.cmd, Some("serve"), "{args:?}");
        }
    }

    // --- `wal` inspection --------------------------------------------------

    #[test]
    fn wal_without_a_path_is_a_usage_error() {
        let err = fail(&["wal"]);
        assert_eq!(err.kind, ErrorKind::Usage);
        assert_eq!(err.cmd, Some("wal"));
        let err = fail(&["wal", "a.cegwal", "extra"]);
        assert_eq!(err.kind, ErrorKind::Usage);
    }

    #[test]
    fn wal_on_a_missing_or_non_wal_file_is_a_runtime_error() {
        let err = fail(&["wal", "/no/such/file.cegwal"]);
        assert_eq!(err.kind, ErrorKind::Runtime);
        // A file that exists but is no WAL (wrong magic).
        let path = std::env::temp_dir().join("cegcli-not-a-wal.cegwal");
        std::fs::write(&path, b"definitely not a write-ahead log").unwrap();
        let err = fail(&["wal", path.to_str().unwrap()]);
        assert_eq!(err.kind, ErrorKind::Runtime, "{}", err.msg);
        assert!(err.msg.contains("not a WAL"), "{}", err.msg);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_prints_committed_transactions_from_a_real_log() {
        use cegraph::graph::vfs::OsStorage;
        use cegraph::graph::wal::{WalOp, WalWriter};
        let path = std::env::temp_dir().join("cegcli-wal-inspect.cegwal");
        let _ = std::fs::remove_file(&path);
        let (mut w, _) = WalWriter::open(&OsStorage, &path).unwrap();
        w.append_tx(
            1,
            &[WalOp {
                src: 0,
                dst: 1,
                label: 0,
                del: false,
            }],
        )
        .unwrap();
        w.append_tx(
            2,
            &[WalOp {
                src: 0,
                dst: 1,
                label: 0,
                del: true,
            }],
        )
        .unwrap();
        drop(w);
        // The command is exercised end-to-end through `run` — success
        // means the file parsed and printed without a panic.
        run(&strs(&["wal", path.to_str().unwrap()])).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_failures_are_runtime_errors_without_usage_dump() {
        for args in [
            vec!["estimate", "/no/such/file.edges", "/no/such/file.wl"],
            vec!["molp", "/no/such/file.edges", "/no/such/file.wl"],
            vec![
                "serve",
                "127.0.0.1:0",
                "--snapshot",
                "/no/such/file.cegsnap",
            ],
            // Nothing listens on a reserved port of the discard range.
            vec!["snapshot", "127.0.0.1:1", "/tmp/x.cegsnap"],
        ] {
            let err = fail(&args);
            assert_eq!(err.kind, ErrorKind::Runtime, "{args:?}: {}", err.msg);
            assert_eq!(err.exit_code(), 1, "{args:?}");
        }
    }
}
