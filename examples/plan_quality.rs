//! Plan quality end to end (Section 6.6): inject different estimators
//! into the DP join optimizer and watch the chosen plans' actual costs.
//!
//! ```sh
//! cargo run --release --example plan_quality
//! ```

use cegraph::catalog::MarkovTable;
use cegraph::core::{Aggr, Heuristic, PathLen};
use cegraph::estimators::{OptimisticEstimator, Rdf3xDefaultEstimator};
use cegraph::planner::{execute_plan, optimize};
use cegraph::query::templates;
use cegraph::workload::Dataset;

fn main() {
    let graph = Dataset::Dblp.generate(5);
    let q = templates::tree_depth(6, 4, &[0, 1, 2, 0, 1, 2]);
    println!("query: {q}");

    let table = MarkovTable::build_for_query(&graph, &q, 2);
    let budget = 8_000_000;

    let mut default_est = Rdf3xDefaultEstimator::new(&graph);
    let (default_plan, _) = optimize(&q, &mut default_est);
    println!("\nRDF-3X default plan: {}", default_plan.render());
    let base = execute_plan(&graph, &q, &default_plan, budget).expect("plan runs");
    println!(
        "  -> {} intermediate tuples, {} results, {:?}",
        base.intermediate_tuples, base.output, base.wall
    );

    for h in [
        Heuristic::new(PathLen::MaxHop, Aggr::Max),
        Heuristic::new(PathLen::MinHop, Aggr::Min),
    ] {
        let mut est = OptimisticEstimator::new(&table, h);
        let (plan, cost) = optimize(&q, &mut est);
        let stats = execute_plan(&graph, &q, &plan, budget).expect("plan runs");
        println!(
            "\n{} plan (est. C_out {cost:.0}): {}",
            h.name(),
            plan.render()
        );
        println!(
            "  -> {} intermediate tuples, {} results, {:?} ({}x vs default)",
            stats.intermediate_tuples,
            stats.output,
            stats.wall,
            base.intermediate_tuples.max(1) / stats.intermediate_tuples.max(1),
        );
        assert_eq!(stats.output, base.output, "plans must agree on the result");
    }
}
