//! Large cyclic queries: CEG_O breaks cycles into paths and
//! overestimates; CEG_OCR's sampled cycle-closing rates repair it
//! (Section 4.3, Figure 6).
//!
//! ```sh
//! cargo run --example cyclic_queries
//! ```

use cegraph::catalog::{CcrTable, MarkovTable};
use cegraph::core::ceg_ocr::build_ceg_ocr;
use cegraph::core::{Aggr, CegO, Heuristic, PathLen};
use cegraph::exec::count;
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::templates;

/// Many 4-paths, few 4-cycles: the worst case for CEG_O on cycles.
fn sparse_cycles() -> LabeledGraph {
    let mut b = GraphBuilder::new(400);
    for i in 0..60u32 {
        let v = 4 * i;
        b.add_edge(v, v + 1, 0);
        b.add_edge(v + 1, v + 2, 1);
        b.add_edge(v + 2, v + 3, 2);
        if i % 6 == 0 {
            b.add_edge(v + 3, v, 3); // only 1 in 6 paths closes
        } else {
            b.add_edge(v + 3, 240 + i, 3);
        }
    }
    b.build()
}

fn main() {
    let graph = sparse_cycles();
    let q = templates::cycle(4, &[0, 1, 2, 3]);
    let truth = count(&graph, &q);
    println!("query: 4-cycle {q}");
    println!("true cardinality: {truth}\n");

    let qs = [q.clone()];
    let table = MarkovTable::build(&graph, &qs, 2);
    let ccr = CcrTable::build(&graph, &qs, 4000, 7);
    println!(
        "statistics: {} Markov entries (h=2), {} cycle-closing rates",
        table.len(),
        ccr.len()
    );

    let ceg_o = CegO::build(&q, &table);
    let ceg_ocr = build_ceg_ocr(&q, &table, &ccr);

    println!("\n{:<14} {:>12} {:>12}", "heuristic", "CEG_O", "CEG_OCR");
    for h in Heuristic::all() {
        let o = ceg_o.ceg().estimate(h).unwrap_or(f64::NAN);
        let r = ceg_ocr.ceg().estimate(h).unwrap_or(f64::NAN);
        println!("{:<14} {o:>12.2} {r:>12.2}", h.name());
    }
    println!("{:<14} {truth:>12} {truth:>12}", "truth");

    // the paper's conclusions, asserted:
    let o_best = ceg_o
        .ceg()
        .estimate(Heuristic::new(PathLen::MinHop, Aggr::Min))
        .unwrap();
    let ocr_best = ceg_ocr
        .ceg()
        .estimate(Heuristic::new(PathLen::MaxHop, Aggr::Max))
        .unwrap();
    let t = truth as f64;
    println!("\nCEG_O min-hop-min (its best aggregator):  {o_best:.2}");
    println!("CEG_OCR max-hop-max (its best aggregator): {ocr_best:.2}");
    let qe = |e: f64| (e.max(1e-9) / t).max(t / e.max(1e-9));
    println!(
        "q-errors: CEG_O {:.2} vs CEG_OCR {:.2} — the closing rates win",
        qe(o_best),
        qe(ocr_best)
    );
}
