//! Quickstart: build a graph, collect statistics, estimate a query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cegraph::catalog::MarkovTable;
use cegraph::core::{Aggr, CegO, Heuristic, PathLen};
use cegraph::estimators::{CardinalityEstimator, OptimisticEstimator};
use cegraph::exec::count;
use cegraph::graph::GraphBuilder;
use cegraph::query::templates;

fn main() {
    // 1. A labeled graph = one binary relation per edge label.
    //    Labels: 0 = "follows", 1 = "likes", 2 = "authored".
    let mut b = GraphBuilder::new(12);
    for (s, d, l) in [
        (0, 1, 0),
        (0, 2, 0),
        (1, 2, 0),
        (3, 2, 0),
        (1, 4, 1),
        (2, 4, 1),
        (2, 5, 1),
        (3, 5, 1),
        (4, 6, 2),
        (4, 7, 2),
        (5, 7, 2),
        (5, 8, 2),
    ] {
        b.add_edge(s, d, l);
    }
    let graph = b.build();
    println!(
        "graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels()
    );

    // 2. The query: a 3-path  a0 -follows-> a1 -likes-> a2 -authored-> a3.
    let query = templates::path(3, &[0, 1, 2]);
    println!("query: {query}");

    // 3. Build a Markov table of size h = 2 (cardinalities of all 1- and
    //    2-edge sub-patterns of the query).
    let table = MarkovTable::build_for_query(&graph, &query, 2);
    println!("markov table: {} entries", table.len());
    let mut entries: Vec<String> = table.iter().map(|(p, c)| format!("  {p} -> {c}")).collect();
    entries.sort();
    for e in entries {
        println!("{e}");
    }

    // 4. The CEG_O of the query: every bottom-to-top path is a formula.
    let ceg = CegO::build(&query, &table);
    println!(
        "CEG_O: {} nodes, {} edges, estimates {:?}",
        ceg.ceg().num_nodes(),
        ceg.ceg().num_edges(),
        ceg.ceg().path_estimates(100)
    );

    // 5. Estimate with the paper's recommended heuristic and compare.
    let mut est = OptimisticEstimator::new(&table, Heuristic::new(PathLen::MaxHop, Aggr::Max));
    let estimate = est.estimate(&query).expect("query is estimable");
    let truth = count(&graph, &query);
    println!("max-hop-max estimate: {estimate:.2}");
    println!("true cardinality:     {truth}");
    println!(
        "q-error:              {:.2}",
        cegraph::core::oracle::qerror(estimate, truth as f64)
    );
}
