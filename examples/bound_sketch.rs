//! The bound-sketch optimization (Section 5.2): hash-partitioning the
//! join attributes tightens both the pessimistic MOLP bound and the
//! optimistic estimates.
//!
//! ```sh
//! cargo run --example bound_sketch
//! ```

use cegraph::catalog::MarkovTable;
use cegraph::core::bound_sketch::{molp_sketch_bound, optimistic_sketch_estimate};
use cegraph::core::PathLen;
use cegraph::exec::count;
use cegraph::query::templates;
use cegraph::workload::Dataset;

fn main() {
    let graph = Dataset::Hetionet.generate(11);
    // a 2-path whose join attribute is heavily skewed
    let q = templates::path(2, &[0, 1]);
    let truth = count(&graph, &q) as f64;
    println!("query: {q}");
    println!("truth: {truth}\n");

    let table = MarkovTable::build_for_query(&graph, &q, 2);

    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14}",
        "K", "MOLP bound", "MOLP q-err", "max-hop-max", "opt q-err"
    );
    for k in [1u32, 4, 16, 64, 128] {
        let molp = molp_sketch_bound(&graph, &q, k);
        let opt = optimistic_sketch_estimate(&graph, &q, &table, PathLen::MaxHop, true, k)
            .expect("estimable");
        let qe = |e: f64| (e.max(1e-9) / truth).max(truth / e.max(1e-9));
        println!(
            "{k:>6} {molp:>16.1} {:>16.2} {opt:>14.1} {:>14.2}",
            qe(molp),
            qe(opt)
        );
    }
    println!("\npartitioning can only tighten the MOLP bound (sum of partition");
    println!("bounds ≤ direct bound) and sharpens the uniformity assumption of");
    println!("the optimistic estimate (Section 5.2.2).");
}
