//! The running example of the paper: the fork query Q5f (Figure 1) and
//! its three CEGs — CEG_O with h = 2 (Figure 4), h = 3 (Figure 3), and
//! the pessimistic CEG_M (Figure 7).
//!
//! ```sh
//! cargo run --example fork_query
//! ```

use cegraph::catalog::{DegreeStats, MarkovTable};
use cegraph::core::{molp_bound, molp_lp_bound, Aggr, CegO, Heuristic, MolpInstance, PathLen};
use cegraph::exec::count;
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::templates;

/// A dataset in the spirit of Figure 2: five labels A..E with skewed fan
/// out of the hub vertices, so different CEG paths disagree.
fn figure2_like() -> LabeledGraph {
    let mut b = GraphBuilder::new(40);
    // A (label 0): four sources into two hubs
    b.add_edge(0, 10, 0);
    b.add_edge(1, 10, 0);
    b.add_edge(2, 11, 0);
    b.add_edge(3, 11, 0);
    // B (label 1): hubs to centers
    b.add_edge(10, 20, 1);
    b.add_edge(11, 21, 1);
    // C (label 2): centers fan out unevenly
    for d in 22..26 {
        b.add_edge(20, d, 2);
    }
    b.add_edge(21, 26, 2);
    // D (label 3)
    b.add_edge(20, 27, 3);
    b.add_edge(21, 28, 3);
    b.add_edge(21, 29, 3);
    // E (label 4)
    b.add_edge(20, 30, 4);
    b.add_edge(20, 31, 4);
    b.add_edge(21, 32, 4);
    b.build()
}

fn show_ceg(name: &str, ceg: &CegO) {
    println!("--- {name} ---");
    println!(
        "{} nodes, {} edges, min-hops {:?}, max-hops {:?}",
        ceg.ceg().num_nodes(),
        ceg.ceg().num_edges(),
        ceg.ceg().min_hops(),
        ceg.ceg().max_hops()
    );
    let estimates = ceg.ceg().path_estimates(10_000);
    println!(
        "distinct path estimates ({}): {estimates:?}",
        estimates.len()
    );
    for h in Heuristic::all() {
        if let Some(e) = ceg.ceg().estimate(h) {
            println!("  {:<14} -> {e:.2}", h.name());
        }
    }
}

fn main() {
    let graph = figure2_like();
    let q5f = templates::q5f(&[0, 1, 2, 3, 4]);
    let truth = count(&graph, &q5f);
    println!("query Q5f: {q5f}");
    println!("true cardinality: {truth}\n");

    // Figure 4: CEG_O with a Markov table of size 2.
    let t2 = MarkovTable::build_for_query(&graph, &q5f, 2);
    let ceg2 = CegO::build(&q5f, &t2);
    show_ceg("CEG_O, h = 2 (Figure 4)", &ceg2);

    // Figure 3: CEG_O with a Markov table of size 3 — short-hop vs
    // long-hop paths appear (Section 4.2).
    let t3 = MarkovTable::build_for_query(&graph, &q5f, 3);
    let ceg3 = CegO::build(&q5f, &t3);
    show_ceg("CEG_O, h = 3 (Figure 3)", &ceg3);

    // Figure 7: CEG_M / the MOLP bound, via Dijkstra and via the literal
    // LP (Theorem 5.1 says they agree).
    let stats = DegreeStats::build_base(&graph);
    let inst = MolpInstance::from_stats(&q5f, &stats, false);
    let dij = molp_bound(&inst);
    let lp = molp_lp_bound(&inst, false);
    println!("--- CEG_M / MOLP (Figure 7) ---");
    println!("MOLP bound via Dijkstra over CEG_M: {dij:.2}");
    println!("MOLP bound via the literal LP:      {lp:.2}");
    println!("true cardinality:                   {truth}");
    assert!((dij.ln() - lp.ln()).abs() < 1e-6, "Theorem 5.1 violated!");
    assert!(dij >= truth as f64, "MOLP must be pessimistic");

    // the paper's headline: pick the *max-weight* path on CEG_O
    let best = ceg2
        .ceg()
        .estimate(Heuristic::new(PathLen::MaxHop, Aggr::Max))
        .unwrap();
    println!("\nmax-hop-max on CEG_O: {best:.2} (truth {truth}, MOLP {dij:.2})");
}
