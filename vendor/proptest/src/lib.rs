//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset of the proptest API its property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map) and boxing,
//! * range strategies (`0u32..12`, `2usize..=3`, `0.5f64..1000.0`),
//! * tuple strategies up to arity 4,
//! * [`collection::vec`] with `Range`/`RangeInclusive` size bounds,
//! * the [`proptest!`], `prop_oneof!`, [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! reported but **not shrunk**. Sampling is fully deterministic — the RNG
//! seed is derived from the test function's name, so a failure reproduces
//! exactly on re-run.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: strategies sample
    /// directly and no shrinking is performed.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the sampled value through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (the `prop_oneof!` macro).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.rng.random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Strategy yielding a constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size bound for collection strategies; built from `a..b` or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors of values drawn from
    /// `element`, with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The RNG handed to strategies. Seeded deterministically from the test
    /// name so every run samples the same cases.
    pub struct TestRng {
        pub rng: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }
}

/// `prop::` namespace as exposed by the upstream prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a test that samples `cases` inputs and runs the body on each.
/// Failures report the case number; no shrinking is attempted.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::sample(&($strat), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), lhs, rhs),
            ));
        }
    }};
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 2usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u16..5, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn tuples_and_oneof((a, b) in (0u32..4, 0u32..4), c in prop_oneof![0u8..1, 9u8..10]) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(c == 0 || c == 9, "c = {}", c);
        }

        #[test]
        fn prop_map_works(n in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u32..100, 5..10);
        let a: Vec<Vec<u32>> = {
            let mut rng = TestRng::deterministic("x");
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut rng = TestRng::deterministic("x");
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
