//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the small subset of the criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a plain wall-clock mean over `sample_size` iterations after a
//! short warm-up — no statistics, outlier analysis, or HTML reports. When
//! the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` targets) each benchmark runs exactly once, as a smoke
//! test.

use std::time::{Duration, Instant};

/// Re-export for call sites that import `criterion::black_box`.
pub use std::hint::black_box;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Times `f` and prints the mean per-iteration wall time.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let iters = if test_mode() { 1 } else { sample_size.max(1) };
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "  {name}: {} (mean of {} iters)",
        format_time(mean),
        b.iters
    );
    append_json_record(name, mean, b.iters);
}

/// When `CRITERION_JSON` names a file, append one JSON line per benchmark
/// (`{"name": …, "mean_secs": …, "iters": …}`) so CI steps and snapshot
/// files (`BENCH_*.json`) can consume the means without scraping stdout.
fn append_json_record(name: &str, mean_secs: f64, iters: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let line = format!(
        "{{\"name\":\"{}\",\"mean_secs\":{mean_secs:.9},\"iters\":{iters}}}\n",
        name.replace('"', "'")
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing the batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
