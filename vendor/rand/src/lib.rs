//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *minimal* subset of the rand 0.9
//! API that the CEG codebase actually uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`], [`Rng::random_bool`] and [`Rng::random_range`].
//!
//! The generator is a xoshiro256++ seeded through SplitMix64 — fast, high
//! quality for simulation purposes, and fully deterministic for a given
//! seed (the workspace relies on seeded reproducibility, not on matching
//! upstream rand's exact streams).

/// Low-level uniform-bit source. Object-safe core trait; the ergonomic
/// generic methods live on [`Rng`], which is blanket-implemented for every
/// `RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the type's "natural" range:
/// `[0, 1)` for floats, the full domain for integers, a fair coin for
/// `bool`.
pub trait StandardUniform: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that support uniform sampling from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. `high` must be > `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty sample range");
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                low + u * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                Self::sample_range(rng, low, high)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::random_range`]: `a..b` or `a..=b`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Ergonomic sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution (`[0, 1)` for
    /// floats, uniform over the whole domain for integers).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        <f64 as StandardUniform>::sample_standard(self) < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T: SampleUniform, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 like upstream `rand`'s `from_seed` path.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.random_range(0..=4);
            assert!(y <= 4);
            let f: f64 = r.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits}");
    }
}
