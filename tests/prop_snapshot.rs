//! Property tests of the binary snapshot path, end to end through the
//! service registry: for random base graphs × random committed deltas,
//! `write_snapshot → read_snapshot` must hand back
//!
//! 1. an **equal graph** (same domain, same edge set),
//! 2. a **byte-identical catalog** (persisted text form, the strictest
//!    table equality available),
//! 3. the **preserved epoch** — and the restored entry must continue the
//!    epoch sequence, not restart it.
//!
//! Plus the durability property: *every* strict prefix of a valid
//! snapshot file is rejected with an error (truncation can never produce
//! a silently different dataset), as is any snapshot with a flipped
//! graph-payload byte (checksum).

use std::sync::atomic::{AtomicUsize, Ordering};

use cegraph::catalog::io::write_markov;
use cegraph::catalog::MarkovTable;
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::templates;
use cegraph::service::DatasetEntry;
use proptest::prelude::*;

const VERTICES: u32 = 12;
const LABELS: u16 = 3;

/// One random edge operation: `(src, dst, label, is_add)`.
type Op = (u32, u32, u16, bool);

fn arb_case() -> impl Strategy<Value = (Vec<(u32, u32, u16)>, Vec<Op>, bool)> {
    (
        prop::collection::vec((0u32..VERTICES, 0u32..VERTICES, 0u16..LABELS), 5..40),
        prop::collection::vec(
            (
                0u32..VERTICES,
                0u32..VERTICES,
                0u16..LABELS,
                (0u8..2).prop_map(|b| b == 1),
            ),
            1..25,
        ),
        // Eager-rebase vs overlay-kept layering regime.
        (0u8..2).prop_map(|b| b == 1),
    )
}

fn build_graph(edges: &[(u32, u32, u16)]) -> LabeledGraph {
    let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
    for &(s, d, l) in edges {
        b.add_edge(s, d, l);
    }
    b.build()
}

fn table_bytes(t: &MarkovTable) -> Vec<u8> {
    let mut buf = Vec::new();
    write_markov(t, &mut buf).unwrap();
    buf
}

/// A unique scratch path per proptest case (cases run in one process).
fn scratch_path(stem: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ceg-{stem}-{}-{n}.cegsnap", std::process::id()))
}

/// Drive one random case into a committed entry with a warm catalog.
fn committed_entry(base_edges: &[(u32, u32, u16)], ops: &[Op], eager: bool) -> DatasetEntry {
    let threshold = if eager { 1 } else { usize::MAX };
    let entry = DatasetEntry::new("ds", build_graph(base_edges), MarkovTable::empty(2))
        .with_rebase_threshold(threshold);
    let queries = [
        templates::path(2, &[0, 1]),
        templates::star(2, &[1, 2]),
        templates::cycle(3, &[0, 1, 2]),
    ];
    entry.ensure_patterns(&queries);
    for &(s, d, l, add) in ops {
        if add {
            entry.add_edge(s, d, l).unwrap();
        } else {
            entry.del_edge(s, d, l).unwrap();
        }
    }
    entry.commit();
    entry
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_roundtrip_preserves_graph_catalog_and_epoch(
        (base_edges, ops, eager) in arb_case()
    ) {
        let entry = committed_entry(&base_edges, &ops, eager);
        let path = scratch_path("prop-roundtrip");
        let (epoch, bytes) = entry.write_snapshot(&path).unwrap();
        prop_assert!(bytes > 0);
        prop_assert_eq!(epoch, entry.epoch());

        let restored = DatasetEntry::read_snapshot("restored", &path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // (3) epoch-preserving.
        prop_assert_eq!(restored.epoch(), entry.epoch());

        // (1) graph-equal: same summary, same edge set, both directions.
        prop_assert_eq!(restored.graph_summary(), entry.graph_summary());
        let live = entry.materialized_graph();
        let back = restored.materialized_graph();
        prop_assert_eq!(live.num_edges(), back.num_edges());
        for e in live.all_edges() {
            prop_assert!(back.has_edge(e.src, e.dst, e.label), "missing {:?}", e);
        }
        for l in 0..live.num_labels() as u16 {
            prop_assert_eq!(live.distinct_sources(l), back.distinct_sources(l));
            prop_assert_eq!(live.distinct_targets(l), back.distinct_targets(l));
        }

        // (2) catalog byte-identical.
        let live_bytes = entry.with_markov(table_bytes);
        let back_bytes = restored.with_markov(table_bytes);
        prop_assert_eq!(live_bytes, back_bytes);

        // The restored entry is live: the epoch sequence continues.
        let before = restored.epoch();
        restored.add_edge(0, 1, 0).unwrap();
        restored.del_edge(0, 1, 0).unwrap();
        restored.add_edge(1, 0, 1).unwrap();
        let outcome = restored.commit();
        prop_assert!(outcome.epoch == before || outcome.epoch == before + 1);
    }

    #[test]
    fn every_truncation_and_byte_flip_is_rejected(
        (base_edges, ops, eager) in arb_case(),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
    ) {
        let entry = committed_entry(&base_edges, &ops, eager);
        let path = scratch_path("prop-corrupt");
        entry.write_snapshot(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // A strict prefix never restores: either the container errors
        // (mid-section truncation) or a required section is missing.
        let cut = ((good.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &good[..cut.min(good.len() - 1)]).unwrap();
        prop_assert!(DatasetEntry::read_snapshot("x", &path).is_err(), "cut at {}", cut);

        // Flipping any byte of the file must fail the restore: the magic
        // or version check, a section checksum, or — when the flip hits
        // a section tag — the required-section check.
        let idx = (((good.len() - 1) as f64) * flip_frac) as usize;
        let mut flipped = good.clone();
        flipped[idx] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(DatasetEntry::read_snapshot("x", &path).is_err(), "flip at {}", idx);

        std::fs::remove_file(&path).unwrap();
    }
}
