//! Property tests of the optimistic CEG machinery: exactness inside the
//! Markov table, aggregator orderings, oracle dominance, and statistics
//! consistency.

use cegraph::catalog::MarkovTable;
use cegraph::core::oracle::qerror;
use cegraph::core::{Aggr, CegO, Heuristic, PathLen};
use cegraph::estimators::pstar_estimate;
use cegraph::exec::{count, count_constrained, VarConstraint, VarConstraints};
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryGraph};
use proptest::prelude::*;

const LABELS: u16 = 3;

fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
    prop::collection::vec((0u32..14, 0u32..14, 0u16..LABELS), 3..50).prop_map(|edges| {
        let mut b = GraphBuilder::with_labels(14, LABELS as usize);
        for (s, d, l) in edges {
            b.add_edge(s, d, l);
        }
        b.build()
    })
}

fn arb_acyclic_query() -> impl Strategy<Value = QueryGraph> {
    let l = 0u16..LABELS;
    prop_oneof![
        prop::collection::vec(l.clone(), 2..=5).prop_map(|ls| templates::path(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 2..=5).prop_map(|ls| templates::star(ls.len(), &ls)),
        prop::collection::vec(l, 5..=5).prop_map(|ls| templates::q5f(&ls)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queries that fit in the Markov table are answered exactly by every
    /// heuristic (no independence assumption is needed).
    #[test]
    fn exact_within_table(g in arb_graph(), l1 in 0u16..LABELS, l2 in 0u16..LABELS) {
        let q = templates::path(2, &[l1, l2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        let truth = count(&g, &q) as f64;
        for h in Heuristic::all() {
            let est = ceg.ceg().estimate(h);
            prop_assert_eq!(est, Some(truth), "{}", h.name());
        }
    }

    /// For a fixed path-length class, max-aggr ≥ avg-aggr ≥ min-aggr.
    #[test]
    fn aggregator_ordering((g, q) in (arb_graph(), arb_acyclic_query()), h in 2usize..=3) {
        let t = MarkovTable::build_for_query(&g, &q, h);
        let ceg = CegO::build(&q, &t);
        for pl in [PathLen::MaxHop, PathLen::MinHop, PathLen::AllHops] {
            let get = |a| ceg.ceg().estimate(Heuristic::new(pl, a));
            if let (Some(mx), Some(av), Some(mn)) =
                (get(Aggr::Max), get(Aggr::Avg), get(Aggr::Min))
            {
                prop_assert!(mx >= av - 1e-9 && av >= mn - 1e-9,
                    "{pl:?}: max {mx} avg {av} min {mn}");
            }
        }
    }

    /// all-hops-max dominates every hop-restricted max (superset of
    /// paths), and symmetrically for min.
    #[test]
    fn all_hops_bracket((g, q) in (arb_graph(), arb_acyclic_query()), h in 2usize..=3) {
        let t = MarkovTable::build_for_query(&g, &q, h);
        let ceg = CegO::build(&q, &t);
        let e = |pl, a| ceg.ceg().estimate(Heuristic::new(pl, a));
        if let (Some(am), Some(mm), Some(nm)) = (
            e(PathLen::AllHops, Aggr::Max),
            e(PathLen::MaxHop, Aggr::Max),
            e(PathLen::MinHop, Aggr::Max),
        ) {
            prop_assert!(am >= mm - 1e-9 && am >= nm - 1e-9);
        }
        if let (Some(am), Some(mm), Some(nm)) = (
            e(PathLen::AllHops, Aggr::Min),
            e(PathLen::MaxHop, Aggr::Min),
            e(PathLen::MinHop, Aggr::Min),
        ) {
            prop_assert!(am <= mm + 1e-9 && am <= nm + 1e-9);
        }
    }

    /// The P* oracle dominates every single-path heuristic in q-error.
    #[test]
    fn pstar_dominates((g, q) in (arb_graph(), arb_acyclic_query())) {
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let truth = count(&g, &q) as f64;
        if let Some(star) = pstar_estimate(&q, &t, None, truth) {
            let star_err = qerror(star, truth);
            let ceg = CegO::build(&q, &t);
            for h in Heuristic::all() {
                if h.aggr == Aggr::Avg {
                    continue;
                }
                if let Some(v) = ceg.ceg().estimate(h) {
                    prop_assert!(star_err <= qerror(v, truth) + 1e-9,
                        "P* {star} beaten by {} = {v}", h.name());
                }
            }
        }
    }

    /// Markov table entries always equal fresh executor counts.
    #[test]
    fn markov_consistency((g, q) in (arb_graph(), arb_acyclic_query()), h in 2usize..=3) {
        let t = MarkovTable::build_for_query(&g, &q, h);
        for (p, c) in t.iter() {
            prop_assert_eq!(c, count(&g, &p.to_query()), "pattern {}", p);
        }
    }

    /// Hash-partitioned counts sum to the unconstrained count.
    #[test]
    fn partition_counts_sum((g, q) in (arb_graph(), arb_acyclic_query()), buckets in 2u32..5) {
        let total = count(&g, &q);
        let var = q.num_vars() / 2;
        let mut sum = 0u64;
        for bucket in 0..buckets {
            let mut cons = VarConstraints::none(q.num_vars());
            cons.set(var, VarConstraint::HashBucket { buckets, bucket });
            sum += count_constrained(&g, &q, &cons);
        }
        prop_assert_eq!(sum, total);
    }

    /// Tree-DP counting agrees with backtracking on acyclic queries.
    #[test]
    fn tree_dp_agrees((g, q) in (arb_graph(), arb_acyclic_query())) {
        let dp = cegraph::exec::count_tree_dp(&g, &q).expect("acyclic");
        let bt = count(&g, &q) as f64;
        prop_assert_eq!(dp, bt);
    }
}
