//! Property tests for the metrics layer and its wire key surface.
//!
//! Two things are pinned here. First, the lock-free log2 `Histogram` is
//! driven against a naive sorted-vector reference: for any sample set
//! and any quantile, the histogram's answer must bracket the true
//! quantile within its documented 2× bucket fidelity, stay monotone in
//! `q`, and keep `count`/`sum` exact. Second, the *names* in the
//! `METRICS` snapshot and the `METRICS_PROM` exposition are a public
//! interface — dashboards and the CI smoke scripts grep for them — so
//! the exact key sets are asserted, turning an accidental rename into a
//! test failure instead of a silently broken dashboard.

use std::collections::BTreeSet;
use std::time::Duration;

use cegraph::service::{Histogram, Metrics};
use proptest::prelude::*;

/// The true quantile of a sorted sample set: the smallest value with at
/// least `ceil(q * n)` samples at or below it (matching the histogram's
/// rank definition).
fn ref_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// For arbitrary samples, the histogram quantile is the upper bound
    /// of the bucket holding the true quantile: `true <= answer < 2*true`
    /// (with the bucket-0 floor for sub-microsecond samples).
    #[test]
    fn histogram_quantile_brackets_the_true_quantile(
        samples in prop::collection::vec(0u64..=10_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_micros(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum_micros(), samples.iter().sum::<u64>());
        for &q in &qs {
            let truth = ref_quantile(&sorted, q);
            let got = h.quantile_micros(q);
            // Bucket i covers [2^(i-1), 2^i): the reported upper bound
            // is >= the true value and < 2x it (bucket 0 reports 1).
            prop_assert!(got >= truth, "q={q}: got {got} < true {truth}");
            prop_assert!(
                got <= truth.max(1).saturating_mul(2),
                "q={q}: got {got} > 2x true {truth}"
            );
        }
    }

    /// Quantiles are monotone in `q` regardless of the sample set.
    #[test]
    fn histogram_quantiles_are_monotone_in_q(
        samples in prop::collection::vec(0u64..=1_000_000, 0..100),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_micros(s));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile_micros(w[0]) <= h.quantile_micros(w[1]));
        }
    }

    /// The cumulative `_bucket` series always ends at `_count`, for any
    /// sample set — the invariant the Prometheus checker enforces on a
    /// live server.
    #[test]
    fn histogram_prom_count_matches_inf_bucket(
        samples in prop::collection::vec(0u64..=10_000_000, 0..100),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_micros(s));
        }
        let mut lines = Vec::new();
        h.prom_into("x", &mut lines);
        let value_of = |needle: &str| -> u64 {
            lines
                .iter()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        prop_assert_eq!(value_of("x_bucket{le=\"+Inf\"}"), samples.len() as u64);
        prop_assert_eq!(value_of("x_count"), samples.len() as u64);
        prop_assert_eq!(value_of("x_sum"), samples.iter().sum::<u64>());
    }
}

/// The exact `METRICS` key set. A rename or deletion here breaks
/// dashboards and the CI greps; additions are fine but must be made
/// deliberately (update this list in the same change).
#[test]
fn metrics_snapshot_keys_are_stable() {
    let snapshot = Metrics::new().snapshot();
    let keys: BTreeSet<&str> = snapshot.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys.len(), snapshot.len(), "duplicate metrics keys");

    let mut expected: BTreeSet<String> = [
        "busy_total",
        "timeout_total",
        "error_total",
        "estimator_degenerate_total",
        "queued",
        "queued_peak",
        "kernel_candidates_total",
        "kernel_intersect_merge_total",
        "kernel_intersect_gallop_total",
        "kernel_intersect_bitset_total",
        "kernel_suffix_shortcuts_total",
        "kernel_memo_hits_total",
        "kernel_budget_consumed_total",
        "queue_wait_count",
        "queue_wait_sum_us",
        "queue_wait_p50_us",
        "queue_wait_p99_us",
        "wal_commits_total",
        "wal_bytes_total",
        "wal_errors_total",
        "wal_rotations_total",
        "wal_recovered_commits_total",
        "wal_torn_tails_total",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for cmd in [
        "estimate",
        "estimate_batch",
        "explain_estimate",
        "add_edge",
        "del_edge",
        "commit",
        "snapshot",
        "stats",
        "metrics",
        "metrics_prom",
        "slowlog",
        "ping",
    ] {
        for suffix in ["count", "sum_us", "p50_us", "p99_us"] {
            expected.insert(format!("latency_{cmd}_{suffix}"));
        }
    }
    let got: BTreeSet<String> = keys.iter().map(|k| k.to_string()).collect();
    assert_eq!(got, expected);
}

/// The exact set of `# TYPE`d family names in the metrics-owned part of
/// the Prometheus exposition (the engine appends cache/dataset families
/// on top; those are covered by the service integration tests).
#[test]
fn metrics_prom_families_are_stable() {
    let lines = Metrics::new().prom_lines();
    let families: BTreeSet<&str> = lines
        .iter()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();

    let mut expected: BTreeSet<String> = [
        "ceg_busy_total",
        "ceg_timeout_total",
        "ceg_error_total",
        "ceg_estimator_degenerate_total",
        "ceg_kernel_candidates_total",
        "ceg_kernel_intersect_merge_total",
        "ceg_kernel_intersect_gallop_total",
        "ceg_kernel_intersect_bitset_total",
        "ceg_kernel_suffix_shortcuts_total",
        "ceg_kernel_memo_hits_total",
        "ceg_kernel_budget_consumed_total",
        "ceg_queued",
        "ceg_queued_peak",
        "ceg_queue_wait_micros",
        "ceg_wal_commits_total",
        "ceg_wal_bytes_total",
        "ceg_wal_errors_total",
        "ceg_wal_rotations_total",
        "ceg_wal_recovered_commits_total",
        "ceg_wal_torn_tails_total",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for cmd in [
        "estimate",
        "estimate_batch",
        "explain_estimate",
        "add_edge",
        "del_edge",
        "commit",
        "snapshot",
        "stats",
        "metrics",
        "metrics_prom",
        "slowlog",
        "ping",
    ] {
        expected.insert(format!("ceg_latency_{cmd}_micros"));
    }
    let got: BTreeSet<String> = families.iter().map(|f| f.to_string()).collect();
    assert_eq!(got, expected);

    // Every sample line belongs to a declared family: the exposition the
    // server serves must pass the same structural checks `cegcli prom
    // --check` applies.
    for line in &lines {
        if line.starts_with('#') {
            continue;
        }
        let name = line.split([' ', '{']).next().unwrap();
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            families.contains(base) || families.contains(name),
            "sample `{name}` has no # TYPE family"
        );
    }
}
