//! Differential tests of the live-update path, end to end.
//!
//! The acceptance bar for PR 4's tentpole: for random base graphs and
//! random update streams,
//!
//! 1. the incrementally maintained Markov catalog is **byte-identical**
//!    (persisted form) to a from-scratch rebuild on the rebased graph,
//!    in both layering regimes (overlay kept vs. eagerly folded),
//! 2. estimates served after `COMMIT` match a cold server loaded with
//!    the final graph,
//! 3. cache entries from before an update can no longer hit (epoch
//!    invalidation), observable over the wire.

use std::sync::Arc;

use cegraph::catalog::io::write_markov;
use cegraph::catalog::MarkovTable;
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryGraph};
use cegraph::service::{Client, DatasetEntry, DatasetRegistry, Engine, Server, ServerConfig};
use cegraph::workload::updates::{final_graph, generate_update_stream, UpdateOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LABELS: u16 = 3;
const VERTICES: u32 = 16;

fn random_graph(rng: &mut StdRng, edges: usize) -> LabeledGraph {
    let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
    for _ in 0..edges {
        b.add_edge(
            rng.random_range(0..VERTICES),
            rng.random_range(0..VERTICES),
            rng.random_range(0..LABELS),
        );
    }
    b.build()
}

fn workload_queries() -> Vec<QueryGraph> {
    vec![
        templates::path(2, &[0, 1]),
        templates::path(2, &[1, 2]),
        templates::star(2, &[0, 2]),
        templates::path(3, &[0, 1, 2]),
        templates::cycle(3, &[0, 1, 2]),
    ]
}

fn table_bytes(t: &MarkovTable) -> Vec<u8> {
    let mut buf = Vec::new();
    write_markov(t, &mut buf).unwrap();
    buf
}

/// Drive one update stream through a live entry, committing at every
/// barrier; returns the number of effective commits (epoch bumps).
fn drive(entry: &DatasetEntry, stream: &[UpdateOp]) -> u64 {
    for op in stream {
        match *op {
            UpdateOp::Add { src, dst, label } => {
                entry.add_edge(src, dst, label).unwrap();
            }
            UpdateOp::Del { src, dst, label } => {
                entry.del_edge(src, dst, label).unwrap();
            }
            UpdateOp::Commit => {
                entry.commit();
            }
        }
    }
    entry.epoch()
}

/// (1) Incremental catalog maintenance == from-scratch rebuild on the
/// rebased graph, byte-identical in persisted form, across random
/// graphs × random streams × both rebase regimes.
#[test]
fn incremental_catalog_is_byte_identical_to_rebuild() {
    let queries = workload_queries();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_graph(&mut rng, 40);
        let stream = generate_update_stream(&base, 24, 5, seed ^ 0xCE6);
        let want_graph = final_graph(&base, &stream);
        let want_table = MarkovTable::build(&want_graph, &queries, 2);
        let want_bytes = table_bytes(&want_table);

        for (regime, threshold) in [("eager-rebase", 1usize), ("overlay", usize::MAX)] {
            let entry = DatasetEntry::new("ds", base.clone(), MarkovTable::empty(2))
                .with_rebase_threshold(threshold);
            // Seed the catalog with the workload's patterns pre-update,
            // so incremental maintenance has real entries to carry over
            // and to recount.
            entry.ensure_patterns(&queries);
            let epochs = drive(&entry, &stream);
            assert!(epochs > 0, "seed {seed}: stream should commit something");
            let live_bytes = entry.with_markov(table_bytes);
            assert_eq!(
                live_bytes, want_bytes,
                "seed {seed}, {regime}: incremental catalog diverged from rebuild"
            );
            // The materialized graph agrees with folding the stream.
            let live = entry.materialized_graph();
            assert_eq!(
                live.num_edges(),
                want_graph.num_edges(),
                "seed {seed}, {regime}"
            );
            for e in want_graph.all_edges() {
                assert!(
                    live.has_edge(e.src, e.dst, e.label),
                    "seed {seed}: missing {e:?}"
                );
            }
        }
    }
}

/// (2) A live engine that absorbed the stream answers every workload
/// query exactly like a cold engine loaded with the final graph.
#[test]
fn estimates_after_commit_match_cold_server() {
    let queries = workload_queries();
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let base = random_graph(&mut rng, 50);
        let stream = generate_update_stream(&base, 20, 4, seed);

        let live_registry = Arc::new(DatasetRegistry::new());
        let live_entry = live_registry.insert_graph("ds", base.clone(), 2);
        let live = Engine::new(live_registry.clone(), 256);
        // Warm the live server pre-update so its caches hold pre-update
        // values that must all be invalidated.
        for q in &queries {
            live.estimate("ds", q).unwrap();
        }
        drive(&live_entry, &stream);

        let cold_registry = Arc::new(DatasetRegistry::new());
        cold_registry.insert_graph("ds", final_graph(&base, &stream), 2);
        let cold = Engine::new(cold_registry, 256);

        for q in &queries {
            let l = live.estimate("ds", q).unwrap();
            let c = cold.estimate("ds", q).unwrap();
            assert_eq!(
                l.value, c.value,
                "seed {seed}: live vs cold diverged on {q}"
            );
        }
    }
}

/// (3) Over the wire: ADD_EDGE/DEL_EDGE buffer (epoch unchanged, cache
/// still valid), COMMIT bumps the epoch, pre-update cache entries miss,
/// and the recomputed estimate reflects the new graph.
#[test]
fn wire_level_commit_bumps_epoch_and_invalidates_cache() {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 1);
    b.add_edge(1, 3, 1);
    b.add_edge(3, 4, 0);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("default", b.build(), 2);
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let q = templates::path(2, &[0, 1]);
    let first = client.estimate("default", &q).unwrap();
    assert_eq!(first.value, Some(2.0));
    assert!(!first.cached);
    assert!(client.estimate("default", &q).unwrap().cached);

    // Buffered updates are invisible: epoch stays 0, cache still hits.
    let ack = client.add_edge("default", 4, 0, 1).unwrap();
    assert_eq!((ack.epoch, ack.pending), (0, 1));
    let ack = client.del_edge("default", 9, 9, 2).unwrap(); // no-op del
    assert_eq!((ack.epoch, ack.pending), (0, 2));
    assert!(client.estimate("default", &q).unwrap().cached);

    // COMMIT: epoch bump visible in the reply; only the real insertion
    // survives normalization.
    let outcome = client.commit("default").unwrap();
    assert_eq!(outcome.epoch, 1);
    assert_eq!((outcome.added, outcome.deleted), (1, 0));
    assert!(outcome.recounted > 0);

    // The pre-update cache entry must miss, and the fresh estimate sees
    // the committed edge (3->4->0 now completes the path).
    let after = client.estimate("default", &q).unwrap();
    assert!(!after.cached, "pre-update cache entry must not hit");
    assert_eq!(after.value, Some(3.0));
    assert!(client.estimate("default", &q).unwrap().cached);

    // An effect-free commit keeps the epoch and the cache.
    let noop = client.commit("default").unwrap();
    assert_eq!(noop.epoch, 1);
    assert!(client.estimate("default", &q).unwrap().cached);

    // Unknown datasets and out-of-allowance ids are wire errors, not
    // panics (the id parses fine; the registry's domain+growth bound
    // rejects it).
    assert!(client.add_edge("nope", 0, 1, 0).is_err());
    assert!(client.commit("nope").is_err());
    assert!(client.add_edge("default", 50_000_000, 0, 0).is_err());
    client.ping().unwrap();
    client.quit().unwrap();
    server.shutdown();
}

/// Epochs also separate datasets: committing on one dataset must not
/// invalidate another's cache.
#[test]
fn commits_invalidate_per_dataset() {
    let graph = |n: u32| {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, n, 1);
        b.build()
    };
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("a", graph(2), 2);
    registry.insert_graph("b", graph(3), 2);
    let engine = Engine::new(registry, 64);
    let q = templates::path(2, &[0, 1]);
    engine.estimate("a", &q).unwrap();
    engine.estimate("b", &q).unwrap();
    engine.add_edge("a", 0, 3, 0).unwrap();
    engine.commit("a").unwrap();
    assert!(
        !engine.estimate("a", &q).unwrap().cached,
        "a was invalidated"
    );
    assert!(
        engine.estimate("b", &q).unwrap().cached,
        "b must stay cached"
    );
}
