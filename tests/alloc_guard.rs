//! Allocation guard for the counting kernel.
//!
//! A [`CountPlan`] does all of its allocation up front (extension plans,
//! root candidate lists, per-depth buffers sized from cached maximum
//! degrees); the recursion itself must never touch the allocator. This
//! binary installs a counting global allocator and asserts exactly that
//! on a 6-edge cycle query — the satellite criterion for the kernel
//! rewrite. A single test lives here so no concurrent test case can
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cegraph::exec::{CountBudget, CountPlan, IntersectStrategy, VarConstraints};
use cegraph::graph::GraphBuilder;
use cegraph::query::templates;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn six_edge_cycle_counts_without_post_setup_allocations() {
    // Two 6-rings: label 0 closes six 6-cycles, label 1 is a decoy ring,
    // plus chords so intersections see non-trivial lists.
    let mut b = GraphBuilder::new(12);
    for i in 0..6u32 {
        b.add_edge(i, (i + 1) % 6, 0);
        b.add_edge(6 + i, 6 + (i + 1) % 6, 1);
        b.add_edge(i, 6 + i, 0);
    }
    let g = b.build();
    let q = templates::cycle(6, &[0; 6]);
    let cons = VarConstraints::none(q.num_vars());

    // Setup (allocates: plans, root list, buffers) …
    let mut plan = CountPlan::new(&g, &q, &cons);

    // … then counting and enumeration run allocation-free.
    let before = ALLOCS.load(Ordering::SeqCst);
    let total = plan.count();
    let mut visited = 0u64;
    let complete = plan.enumerate(&mut |_| {
        visited += 1;
        true
    });
    let budgeted = plan.count_with_limit(CountBudget::new(3));
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "counting a 6-edge cycle allocated post-setup"
    );
    assert_eq!(total, 6, "each rotation of the label-0 ring matches");
    assert!(complete);
    assert_eq!(visited, total);
    assert_eq!(budgeted, None, "budget of 3 must exhaust");

    // The bitset path must hold the same invariant: its per-depth
    // bitsets are plan-time allocations, lazily reset (never reallocated)
    // as the stable binding moves, so a forced-bitset counting plan also
    // runs allocation-free — across repeated reuses of the same plan.
    let mut bitset_plan =
        CountPlan::counting_with_strategy(&g, &q, &cons, IntersectStrategy::Bitset);
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..3 {
        assert_eq!(bitset_plan.count(), 6, "bitset path agrees with merge");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "the bitset intersection path allocated post-setup"
    );
}
