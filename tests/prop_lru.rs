//! Model-based property test of the service's `LruCache`.
//!
//! The cache tracks recency with per-entry stamps plus a lazily compacted
//! observation queue — an O(1)-amortized scheme whose subtle failure mode
//! is recency ties: if two touches could ever share a stamp, eviction
//! would fall back to queue order and a recently `get` key could be
//! evicted first. The reference model below is the textbook list-based
//! LRU (most recent at the back, no stamps at all); driving both with the
//! same random operation sequences pins the optimized implementation to
//! the semantics, including the tick bump on every `touch`.

use cegraph::service::LruCache;
use proptest::prelude::*;

/// Textbook reference LRU: a vector ordered least → most recently used.
struct RefLru {
    capacity: usize,
    entries: Vec<(u8, u32)>,
}

impl RefLru {
    fn new(capacity: usize) -> Self {
        RefLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: u8) -> Option<u32> {
        let i = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(i);
        let value = entry.1;
        self.entries.push(entry);
        Some(value)
    }

    fn insert(&mut self, key: u8, value: u32) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, value));
        if self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One scripted cache operation over a deliberately small key space (so
/// sequences revisit keys, exercising touches, replacement and eviction).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8),
    Get(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..2, 0u8..10), 0..300).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, key)| {
                if kind == 0 {
                    Op::Insert(key)
                } else {
                    Op::Get(key)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every `get` observes the same value (and presence) in the real
    /// cache and the model, after any interleaving of inserts and gets —
    /// in particular, a key touched by `get` must survive eviction
    /// exactly as long as the model says it does.
    #[test]
    fn lru_matches_reference_model(
        (capacity, ops) in (0usize..6, arb_ops())
    ) {
        let mut real: LruCache<u8, u32> = LruCache::new(capacity);
        let mut model = RefLru::new(capacity);
        // Values are a running counter so stale entries are detectable.
        let mut next_value = 0u32;
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(key) => {
                    next_value += 1;
                    real.insert(key, next_value);
                    model.insert(key, next_value);
                }
                Op::Get(key) => {
                    prop_assert_eq!(
                        real.get(&key).copied(),
                        model.get(key),
                        "step {}: get({}) diverged (capacity {})",
                        step, key, capacity
                    );
                }
            }
            prop_assert_eq!(real.len(), model.len(), "step {step}: len diverged");
        }
        // Final sweep: membership must agree key by key. (Probing mutates
        // recency identically on both sides, so the comparison stays fair
        // as the sweep advances.)
        for key in 0u8..10 {
            prop_assert_eq!(
                real.get(&key).copied(),
                model.get(key),
                "final sweep: get({}) diverged", key
            );
        }
    }
}
