//! Wire-level tests of the snapshot + batch tentpole: a server restarted
//! from a `.cegsnap` must be indistinguishable from the one that wrote
//! it — byte-identical responses, same estimates, same epoch — and the
//! batched estimation path must agree answer-for-answer with the
//! one-at-a-time path.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use cegraph::graph::GraphBuilder;
use cegraph::query::templates;
use cegraph::service::{Client, DatasetRegistry, Server, ServerConfig};

fn toy_registry() -> Arc<DatasetRegistry> {
    let mut b = GraphBuilder::new(6);
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 1);
    b.add_edge(1, 3, 1);
    b.add_edge(3, 4, 0);
    b.add_edge(4, 5, 2);
    b.add_edge(5, 0, 0);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("default", b.build(), 2);
    registry
}

fn config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        batch_max: 8,
        cache_capacity: 256,
        ..ServerConfig::default()
    }
}

fn snap_path(stem: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ceg-snap-test-{stem}-{}.cegsnap",
        std::process::id()
    ))
}

/// Send raw request lines and collect exactly `expect` response lines.
/// The per-request `id=<n>` tail is stripped: ids are a per-server
/// monotone sequence (the writer server has already handled the setup
/// requests), so byte-identity is asserted on the reply bodies.
fn raw_exchange(addr: std::net::SocketAddr, request: &str, expect: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(request.as_bytes()).expect("write");
    writer.flush().expect("flush");
    (0..expect)
        .map(|_| {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0, "early EOF");
            let line = line.trim_end();
            match line.rsplit_once(' ') {
                Some((body, tail)) if tail.starts_with("id=") => body.to_string(),
                _ => line.to_string(),
            }
        })
        .collect()
}

/// The tentpole acceptance test: mutate a live server, snapshot it over
/// the wire, restart a second server from the file, and drive both
/// through the **same** probe script on fresh connections — every
/// response byte must match, including estimates, cache flags, epochs
/// and the follow-up commit's epoch.
#[test]
fn restarted_server_answers_byte_identically() {
    let server1 = Server::start(toy_registry(), "127.0.0.1:0", config()).unwrap();
    let mut client = Client::connect(server1.local_addr()).unwrap();

    // Mutate: two effective commits, so the epoch is non-trivial.
    client.add_edge("default", 2, 3, 0).unwrap();
    client.commit("default").unwrap();
    client.add_edge("default", 4, 0, 1).unwrap();
    client.del_edge("default", 5, 0, 0).unwrap();
    let outcome = client.commit("default").unwrap();
    assert_eq!(outcome.epoch, 2);

    // Snapshot the committed state over the wire. No estimate has been
    // served yet, so both servers will start the probe with identical
    // cache counters.
    let path = snap_path("restart");
    let ack = client.snapshot("default", path.to_str().unwrap()).unwrap();
    assert_eq!(ack.epoch, 2);
    assert!(ack.bytes > 0);
    client.quit().unwrap();

    // The byte-identity probe uses single-request round-trips only: one
    // connection serializes them completely, so every byte — estimates,
    // cache flags, epochs, even the server-wide counters — is
    // deterministic. 8 requests, 8 response lines.
    let q1 = templates::path(2, &[0, 1]);
    let q2 = templates::star(2, &[1, 1]);
    let q3 = templates::path(3, &[0, 1, 2]);
    let fmt = |q: &cegraph::query::QueryGraph| {
        let mut s = format!("{} {}", q.num_vars(), q.num_edges());
        for e in q.edges() {
            s.push_str(&format!(" {} {} {}", e.src, e.dst, e.label));
        }
        s
    };
    let probe = format!(
        "ESTIMATE default {q1}\nESTIMATE default {q1}\nESTIMATE default {q3}\n\
         ADD_EDGE default 3 5 2\nCOMMIT default\nESTIMATE default {q2}\nPING\nSTATS\n",
        q1 = fmt(&q1),
        q2 = fmt(&q2),
        q3 = fmt(&q3),
    );

    // Restart path: a second server restored from the snapshot file.
    let registry2 = Arc::new(DatasetRegistry::new());
    registry2.load_snapshot("default", &path).unwrap();
    let server2 = Server::start(registry2, "127.0.0.1:0", config()).unwrap();

    let replies1 = raw_exchange(server1.local_addr(), &probe, 8);
    let replies2 = raw_exchange(server2.local_addr(), &probe, 8);
    assert_eq!(
        replies1, replies2,
        "a restarted-from-snapshot server must answer byte-identically"
    );

    // Sanity on the shared transcript: real estimates, a cache hit, the
    // continued epoch sequence.
    assert!(replies1[0].starts_with("EST "), "{}", replies1[0]);
    assert!(replies1[0].contains("cache=miss"));
    assert!(replies1[1].contains("cache=hit"));
    assert!(replies1[3].starts_with("OK epoch=2"), "{}", replies1[3]);
    assert!(
        replies1[4].starts_with("COMMITTED epoch=3"),
        "{}",
        replies1[4]
    );

    // The batched path agrees too, on its deterministic prefix: the
    // batch header and each reply's value + cache flag. (The trailing
    // server-wide hit/miss counters depend on how the pool drained the
    // batch — timing, not state — so they are not compared.)
    let batch = format!(
        "ESTIMATE_BATCH default 3\n{}\n{}\n{}\n",
        fmt(&q1),
        fmt(&q2),
        fmt(&q3)
    );
    let strip = |lines: Vec<String>| -> Vec<String> {
        lines
            .into_iter()
            .map(|l| {
                l.split_whitespace()
                    .take_while(|tok| !tok.starts_with("hits="))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    };
    let batch1 = strip(raw_exchange(server1.local_addr(), &batch, 4));
    let batch2 = strip(raw_exchange(server2.local_addr(), &batch, 4));
    assert_eq!(batch1, batch2, "batched estimates must agree after restart");
    assert_eq!(batch1[0], "BATCH 3");
    for line in &batch1[1..] {
        assert!(line.starts_with("EST "), "{line}");
    }

    std::fs::remove_file(&path).unwrap();
    server1.shutdown();
    server2.shutdown();
}

/// Batch answers must agree exactly with single-query answers, arrive in
/// request order, and mix cache hits and misses per query.
#[test]
fn batch_estimates_match_singles_in_order() {
    let server = Server::start(toy_registry(), "127.0.0.1:0", config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let queries = vec![
        templates::path(2, &[0, 1]),
        templates::star(2, &[1, 1]),
        templates::path(3, &[0, 1, 2]),
        templates::path(2, &[1, 0]),
        templates::path(2, &[0, 1]), // duplicate: must hit within the batch's epoch
    ];
    // Warm exactly one query through the single path.
    let single = client.estimate("default", &queries[0]).unwrap();
    assert!(!single.cached);

    let replies = client.estimate_batch("default", &queries).unwrap();
    assert_eq!(replies.len(), queries.len());
    assert_eq!(replies[0].value, single.value, "batch must agree");
    assert!(replies[0].cached, "warmed query must hit inside the batch");

    // Every reply agrees with a fresh single estimate of the same query
    // (all cached now, same values).
    for (q, batch_reply) in queries.iter().zip(&replies) {
        let again = client.estimate("default", q).unwrap();
        assert_eq!(again.value, batch_reply.value);
        assert!(again.cached);
    }

    // Empty batch: answered locally, no wire traffic.
    assert!(client.estimate_batch("default", &[]).unwrap().is_empty());

    // A batch past the server's MAX_BATCH_QUERIES cap is chunked
    // transparently by the client instead of tripping the server's
    // framing guard (which would drop the connection).
    let oversized: Vec<_> =
        std::iter::repeat_n(queries[0].clone(), cegraph::service::MAX_BATCH_QUERIES + 1).collect();
    let chunked = client.estimate_batch("default", &oversized).unwrap();
    assert_eq!(chunked.len(), oversized.len());
    assert!(chunked.iter().all(|r| r.value == single.value));

    // Unknown dataset: every query in the batch reports the error; the
    // connection survives.
    assert!(client.estimate_batch("nope", &queries).is_err());
    client.ping().unwrap();
    client.quit().unwrap();
    server.shutdown();
}

/// SNAPSHOT failure modes over the wire: unknown dataset and unwritable
/// path are `ERR` responses, and the connection (and server) survive.
#[test]
fn snapshot_errors_are_reported_and_server_survives() {
    let server = Server::start(toy_registry(), "127.0.0.1:0", config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let err = client
        .snapshot("nope", "/tmp/whatever.cegsnap")
        .unwrap_err();
    assert!(err.to_string().contains("unknown dataset"), "{err}");
    client.ping().unwrap();

    let err = client
        .snapshot("default", "/no/such/dir/x.cegsnap")
        .unwrap_err();
    assert!(err.to_string().contains("snapshot failed"), "{err}");
    client.ping().unwrap();

    // The wire command is a remote-triggered filesystem write: only
    // `.cegsnap` paths are allowed, so a client can never truncate an
    // arbitrary file the server process can write.
    let err = client
        .snapshot("default", "/tmp/innocent-file.txt")
        .unwrap_err();
    assert!(err.to_string().contains(".cegsnap"), "{err}");
    client.ping().unwrap();

    // And a good one still works afterwards.
    let path = snap_path("errors");
    let ack = client.snapshot("default", path.to_str().unwrap()).unwrap();
    assert_eq!(ack.epoch, 0);
    let snap = cegraph::catalog::io::read_snapshot(&path).unwrap();
    assert_eq!(snap.epoch, 0);
    assert_eq!(snap.graph.num_edges(), 6);
    std::fs::remove_file(&path).unwrap();
    client.quit().unwrap();
    server.shutdown();
}

/// An uncommitted pending buffer is NOT captured: restore reflects the
/// last committed state only.
#[test]
fn snapshot_excludes_pending_updates() {
    let registry = toy_registry();
    let entry = registry.get("default").unwrap();
    let server = Server::start(registry.clone(), "127.0.0.1:0", config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let ack = client.add_edge("default", 0, 5, 1).unwrap();
    assert_eq!(ack.pending, 1);
    let path = snap_path("pending");
    client.snapshot("default", path.to_str().unwrap()).unwrap();
    assert_eq!(entry.pending_len(), 1, "snapshot must not drain pending");

    let snap = cegraph::catalog::io::read_snapshot(&path).unwrap();
    assert!(!snap.graph.has_edge(0, 5, 1), "pending op must not persist");
    assert_eq!(snap.epoch, 0);
    std::fs::remove_file(&path).unwrap();
    client.quit().unwrap();
    server.shutdown();
}
