//! Graceful-drain lifecycle: `SHUTDOWN` arriving in the middle of a long
//! cold batch must leave the in-flight client with a complete, typed
//! transcript (estimates and `BUSY` lines — never a connection reset),
//! reject post-drain work with typed replies, and [`Server::drain`] must
//! write a final snapshot per dataset that restores **byte-identically**
//! (the snapshot encoding is canonical, so restore → re-write → compare
//! is an exact check) and answers exactly like the drained server did.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryGraph};
use cegraph::service::{
    Client, DatasetEntry, DatasetRegistry, Engine, QueryReply, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Dense on purpose: each cold 4-edge count must cost enough that a
// 16-job backlog comfortably outlives the SHUTDOWN round-trip racing it.
const VERTICES: u32 = 128;
const LABELS: u16 = 3;

fn dense_graph() -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(0xD7A1);
    let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
    for _ in 0..2500 {
        b.add_edge(
            rng.random_range(0..VERTICES),
            rng.random_range(0..VERTICES),
            rng.random_range(0..LABELS),
        );
    }
    b.build()
}

/// 16 distinct 4-edge queries: with `workers: 1`, `batch_max: 1` and the
/// cache disabled, each is a separate cold job, so the batch occupies the
/// single worker long enough for a SHUTDOWN to overtake it.
fn long_cold_batch() -> Vec<QueryGraph> {
    let mut queries = Vec::new();
    for a in 0..LABELS {
        for b in 0..LABELS {
            for c in 0..LABELS {
                queries.push(templates::path(4, &[a, b, c, (a + b) % LABELS]));
                if queries.len() == 16 {
                    return queries;
                }
            }
        }
    }
    unreachable!("27 label triples cover 16 queries before running out")
}

fn scratch_dir(stem: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ceg-drain-{stem}-{}", std::process::id()))
}

#[test]
fn shutdown_mid_batch_gives_typed_replies_and_a_restorable_snapshot() {
    let snap_dir = scratch_dir("mid-batch");
    let _ = std::fs::remove_dir_all(&snap_dir);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("default", dense_graph(), 2);
    let server = Server::start(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            batch_max: 1,
            cache_capacity: 0,
            queue_cap: 32,
            default_deadline_ms: None,
            drain_snapshot_dir: Some(snap_dir.clone()),
            drain_grace_ms: 10_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Commit a mutation first so the drained snapshot carries a
    // non-trivial epoch.
    let mut setup = Client::connect(addr).unwrap();
    setup.add_edge("default", 0, 5, 1).unwrap();
    let outcome = setup.commit("default").unwrap();
    assert_eq!(outcome.epoch, 1);
    // Reference answers for the post-restore comparison, computed before
    // the drain so they reflect exactly the state being snapshotted.
    let probes = [
        templates::path(2, &[0, 1]),
        templates::path(3, &[1, 2, 0]),
        templates::star(2, &[0, 2]),
    ];
    let expected: Vec<Option<f64>> = probes
        .iter()
        .map(|q| setup.estimate("default", q).unwrap().value)
        .collect();
    setup.quit().unwrap();

    // The in-flight client: a raw connection so the test controls (and
    // observes) every wire line of the long batch.
    let batch = long_cold_batch();
    let (first_reply_tx, first_reply_rx) = mpsc::channel();
    let in_flight = std::thread::spawn({
        let batch = batch.clone();
        move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut request = format!("ESTIMATE_BATCH default {}\n", batch.len());
            for q in &batch {
                request.push_str(&format!("{} {}", q.num_vars(), q.num_edges()));
                for e in q.edges() {
                    request.push_str(&format!(" {} {} {}", e.src, e.dst, e.label));
                }
                request.push('\n');
            }
            writer.write_all(request.as_bytes()).expect("write batch");
            writer.flush().expect("flush");
            let mut read_line = || {
                let mut line = String::new();
                assert!(
                    reader.read_line(&mut line).expect("read") > 0,
                    "connection reset mid-batch"
                );
                // Strip the per-request `id=<n>` tail — this transcript
                // asserts on the reply bodies.
                let line = line.trim_end();
                match line.rsplit_once(' ') {
                    Some((body, tail)) if tail.starts_with("id=") => body.to_string(),
                    _ => line.to_string(),
                }
            };
            assert_eq!(read_line(), format!("BATCH {}", batch.len()));
            let mut replies = vec![read_line()];
            first_reply_tx.send(()).expect("signal");
            for _ in 1..batch.len() {
                replies.push(read_line());
            }
            // The stream is still framed and the connection still serves.
            writer.write_all(b"PING\n").expect("ping");
            writer.flush().expect("flush");
            assert_eq!(read_line(), "PONG");
            replies
        }
    });

    // Once the first estimate is on the wire the batch is provably
    // mid-flight; shut the server down from a second connection.
    first_reply_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("first batch reply");
    let mut second = Client::connect(addr).unwrap();
    second
        .shutdown_server()
        .expect("SHUTDOWN acked with DRAINING");

    // Post-drain work gets typed rejections, not resets.
    let reply = second
        .estimate_with_deadline("default", &probes[0], None)
        .expect("typed reply while draining");
    assert!(
        matches!(reply, QueryReply::Busy(ref msg) if msg.contains("draining")),
        "estimate during drain must be a typed BUSY, got {reply:?}"
    );
    let err = second.add_edge("default", 1, 2, 0).unwrap_err();
    assert!(
        err.to_string().contains("BUSY"),
        "mutation during drain must surface the BUSY line, got {err}"
    );

    // The in-flight batch finishes with a full typed transcript: every
    // slot is an estimate or a BUSY — and since the drain overtook it,
    // at least one slot of each kind.
    let replies = in_flight.join().expect("in-flight client");
    assert_eq!(replies.len(), batch.len());
    let est = replies.iter().filter(|r| r.starts_with("EST ")).count();
    let busy = replies.iter().filter(|r| r.starts_with("BUSY ")).count();
    assert_eq!(
        est + busy,
        replies.len(),
        "every slot must be typed, got {replies:?}"
    );
    assert!(est >= 1, "the pre-drain slot(s) must be answered");
    assert!(busy >= 1, "the drain must overtake the 16-job backlog");
    second.quit().unwrap();

    // Drain writes the final snapshot and abandons nothing: every
    // admitted job resolved to a typed reply above.
    let report = server.drain().expect("drain");
    assert_eq!(report.abandoned, 0, "no job may be left unanswered");
    assert_eq!(report.snapshots.len(), 1);
    let (name, snap_path, bytes) = &report.snapshots[0];
    assert_eq!(name, "default");
    assert!(*bytes > 0);
    assert_eq!(
        std::fs::metadata(snap_path).unwrap().len(),
        *bytes,
        "reported byte count must match the file"
    );

    // Restore → re-write → compare: the canonical encoding makes this an
    // exact byte-identity check of what the drain persisted.
    let restored = DatasetEntry::read_snapshot("default", snap_path).expect("restore");
    assert_eq!(restored.epoch(), 1);
    let rewrite_path = snap_dir.join("rewrite.cegsnap");
    restored.write_snapshot(&rewrite_path).expect("re-write");
    assert_eq!(
        std::fs::read(snap_path).unwrap(),
        std::fs::read(&rewrite_path).unwrap(),
        "drain snapshot must restore byte-identically"
    );

    // And semantically: a cold engine over the restored dataset answers
    // exactly like the pre-drain server.
    let cold_registry = Arc::new(DatasetRegistry::new());
    cold_registry.load_snapshot("default", snap_path).unwrap();
    let cold = Engine::new(cold_registry, 0);
    for (q, want) in probes.iter().zip(&expected) {
        let got = cold.estimate("default", q).expect("cold estimate").value;
        assert_eq!(got, *want, "restored dataset diverged on {q}");
    }
    std::fs::remove_dir_all(&snap_dir).unwrap();
}

/// A drain on a quiet server is the trivial case CI's service-smoke also
/// exercises end-to-end: immediate, nothing abandoned, snapshot written.
#[test]
fn drain_on_idle_server_snapshots_every_dataset() {
    let snap_dir = scratch_dir("idle");
    let _ = std::fs::remove_dir_all(&snap_dir);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("alpha", dense_graph(), 2);
    registry.insert_graph("beta", dense_graph(), 2);
    let server = Server::start(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            batch_max: 4,
            cache_capacity: 64,
            drain_snapshot_dir: Some(snap_dir.clone()),
            drain_grace_ms: 1_000,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let report = server.drain().expect("drain");
    assert_eq!(report.abandoned, 0);
    let mut names: Vec<&str> = report
        .snapshots
        .iter()
        .map(|(name, _, _)| name.as_str())
        .collect();
    names.sort_unstable();
    assert_eq!(names, ["alpha", "beta"]);
    for (name, path, _) in &report.snapshots {
        let restored = DatasetEntry::read_snapshot(name, path).expect("restore");
        assert_eq!(restored.epoch(), 0);
    }
    std::fs::remove_dir_all(&snap_dir).unwrap();
}
