//! Adversarial multi-tenant overload suite: a byte-at-a-time trickler
//! and a cold-batch flooder hammer one dataset while a well-behaved
//! tenant keeps querying another, and the server must stay **fair**
//! (the tenant's p99 stays within a bound of its uncontended p99),
//! **honest** (every flooded request resolves to a typed estimate,
//! `BUSY` or `TIMEOUT` — nothing silently dropped) and **leak-free**
//! (queue depth and OS thread count return to baseline after the storm).
//!
//! Single-core note: CI runs this on one CPU, where an uncontended
//! cache-hit round-trip is tens of microseconds. A pure `5×` multiplier
//! over that is unachievable under *any* real contention — one scheduler
//! quantum already costs milliseconds — so the fairness bound is
//! `max(5 × uncontended p99, 100ms)`: the multiplier governs on real
//! multi-core hardware, the absolute floor absorbs single-core
//! scheduling noise without letting a starved tenant (seconds of queue
//! wait) slip through.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryGraph};
use cegraph::service::{Client, DatasetRegistry, QueryReply, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VERTICES: u32 = 96;
const LABELS: u16 = 6;
const EDGES: usize = 900;

fn dense_graph(seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
    for _ in 0..EDGES {
        b.add_edge(
            rng.random_range(0..VERTICES),
            rng.random_range(0..VERTICES),
            rng.random_range(0..LABELS),
        );
    }
    b.build()
}

/// A mostly-cold query: random shape, random labels, drawn from a space
/// large enough that the flood keeps missing the cache.
fn random_cold_query(rng: &mut StdRng) -> QueryGraph {
    let k = rng.random_range(2..=4usize);
    let labels: Vec<u16> = (0..k).map(|_| rng.random_range(0..LABELS)).collect();
    match rng.random_range(0..3u32) {
        0 => templates::path(k, &labels),
        1 => templates::star(k, &labels),
        _ if k >= 3 => templates::cycle(k, &labels),
        _ => templates::path(k, &labels),
    }
}

/// The two-tenant server under test: a small per-dataset admission cap so
/// the flood hits `BUSY` quickly, and the bulk tenant's overload cannot
/// consume the well-behaved tenant's admission budget.
fn start_two_tenant_server() -> Server {
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("tenant", dense_graph(0xA11CE), 2);
    registry.insert_graph("bulk", dense_graph(0xB0B), 2);
    Server::start(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            batch_max: 8,
            cache_capacity: 8192,
            queue_cap: 4,
            default_deadline_ms: Some(10_000),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn read_proc_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

fn thread_count() -> Option<u64> {
    read_proc_status_field("Threads")
}

fn p99(samples: &mut [Duration]) -> Duration {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[(samples.len() * 99) / 100 - (samples.len() >= 100) as usize]
}

/// Fetch one metric from a `METRICS` snapshot by key.
fn metric(client: &mut Client, key: &str) -> u64 {
    let snap = client.metrics().expect("metrics");
    snap.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("metric `{key}` missing from snapshot"))
}

/// Run `rounds` warmed tenant estimates, returning per-request latency.
fn tenant_round_trips(client: &mut Client, queries: &[QueryGraph], rounds: usize) -> Vec<Duration> {
    let mut lat = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let q = &queries[i % queries.len()];
        let start = Instant::now();
        let reply = client.estimate("tenant", q).expect("tenant estimate");
        lat.push(start.elapsed());
        assert!(reply.value.is_some(), "tenant query must keep answering");
    }
    lat
}

#[test]
fn flood_and_trickle_do_not_starve_the_well_behaved_tenant() {
    let server = start_two_tenant_server();
    let addr = server.local_addr();
    let baseline_threads = thread_count();

    // The tenant's working set, warmed so contended round-trips ride the
    // inline cache fast path (the fairness mechanism under test).
    let tenant_queries: Vec<QueryGraph> = vec![
        templates::path(2, &[0, 1]),
        templates::path(2, &[2, 3]),
        templates::star(2, &[1, 4]),
        templates::path(3, &[0, 1, 2]),
        templates::cycle(3, &[1, 2, 3]),
    ];
    let mut tenant = Client::connect(addr).expect("tenant connect");
    for q in &tenant_queries {
        tenant.estimate("tenant", q).expect("warm");
    }

    // Uncontended baseline.
    let mut base = tenant_round_trips(&mut tenant, &tenant_queries, 200);
    let base_p99 = p99(&mut base);

    let stop = AtomicBool::new(false);
    let (contended_p99, flood_accounting) = std::thread::scope(|scope| {
        // Trickler: a valid request fed one byte at a time with long
        // pauses. It must tie up only its own connection handler — never
        // a worker, never the accept loop.
        let trickler = scope.spawn(|| {
            let stream = std::net::TcpStream::connect(addr).expect("trickle connect");
            let mut writer = stream.try_clone().expect("clone");
            let request = b"PING\n";
            let mut sent = 0usize;
            while !stop.load(Ordering::Relaxed) {
                writer
                    .write_all(&request[sent % request.len()..=sent % request.len()])
                    .expect("trickle byte");
                writer.flush().expect("trickle flush");
                sent += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            // The server happily answers however many PINGs dribbled in;
            // dropping the stream cleans up.
        });

        // Flooder: cold batches against the bulk dataset, far past the
        // admission cap. Every slot must come back typed.
        let flooder = scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(0xF100D);
            let mut client = Client::connect(addr).expect("flood connect");
            let (mut est, mut busy, mut timeout, mut sent) = (0u64, 0u64, 0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<QueryGraph> = (0..16).map(|_| random_cold_query(&mut rng)).collect();
                sent += batch.len() as u64;
                let replies = client
                    .estimate_batch_with_deadline("bulk", &batch, None)
                    .expect("flood batch must get typed replies");
                assert_eq!(replies.len(), batch.len(), "no slot may vanish");
                for r in replies {
                    match r {
                        QueryReply::Estimate(_) => est += 1,
                        QueryReply::Busy(_) => busy += 1,
                        QueryReply::Timeout { .. } => timeout += 1,
                    }
                }
            }
            (est, busy, timeout, sent)
        });

        // Let the storm build, then measure the tenant under contention.
        std::thread::sleep(Duration::from_millis(150));
        let mut contended = tenant_round_trips(&mut tenant, &tenant_queries, 200);
        stop.store(true, Ordering::Relaxed);
        let accounting = flooder.join().expect("flooder");
        trickler.join().expect("trickler");
        (p99(&mut contended), accounting)
    });

    // Fairness: see the module docs for why the bound has an absolute
    // floor on single-core CI.
    let bound = (base_p99 * 5).max(Duration::from_millis(100));
    assert!(
        contended_p99 <= bound,
        "tenant p99 under flood {contended_p99:?} exceeds bound {bound:?} \
         (uncontended p99 {base_p99:?})"
    );

    // Honesty: every flooded slot resolved to exactly one typed reply.
    let (est, busy, timeout, sent) = flood_accounting;
    assert_eq!(est + busy + timeout, sent, "a flooded slot went missing");
    assert!(est > 0, "the flood must still get some real answers");
    assert!(
        busy > 0,
        "a 16-wide cold batch against queue_cap=4 must trip admission control"
    );

    // Liveness + leak-freedom: the server still answers, the queue gauge
    // returns to zero, and the metrics agree with the client's tally.
    tenant.ping().expect("ping after the storm");
    let settle_until = Instant::now() + Duration::from_secs(5);
    while metric(&mut tenant, "queued") > 0 && Instant::now() < settle_until {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metric(&mut tenant, "queued"), 0, "queue depth must settle");
    assert!(metric(&mut tenant, "busy_total") >= busy);
    assert!(metric(&mut tenant, "queued_peak") >= 1);
    assert!(metric(&mut tenant, "latency_estimate_count") > 0);

    // Thread count returns to (near) baseline once the storm's
    // connections are gone. The tenant connection and a settling
    // conn-handler or two are the allowed slack.
    if let (Some(before), Some(_)) = (baseline_threads, thread_count()) {
        let until = Instant::now() + Duration::from_secs(5);
        let mut now = thread_count().unwrap();
        while now > before + 2 && Instant::now() < until {
            std::thread::sleep(Duration::from_millis(20));
            now = thread_count().unwrap();
        }
        assert!(
            now <= before + 2,
            "thread leak: {before} threads before the storm, {now} after"
        );
    }
    tenant.quit().expect("quit");
    server.shutdown();
}

/// Nightly soak: the same adversarial mix for ~2 minutes. Run with
/// `cargo test -- --ignored overload_soak`.
#[test]
#[ignore = "2-minute soak; run nightly via cargo test -- --ignored"]
fn overload_soak_two_minutes() {
    let server = start_two_tenant_server();
    let addr = server.local_addr();

    let tenant_queries: Vec<QueryGraph> = vec![
        templates::path(2, &[0, 1]),
        templates::path(3, &[0, 1, 2]),
        templates::star(3, &[1, 2, 4]),
    ];
    let mut tenant = Client::connect(addr).expect("tenant connect");
    for q in &tenant_queries {
        tenant.estimate("tenant", q).expect("warm");
    }

    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(120);
    std::thread::scope(|scope| {
        for seed in 0..2u64 {
            let stop = &stop;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x50AC + seed);
                let mut client = Client::connect(addr).expect("flood connect");
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<QueryGraph> =
                        (0..8).map(|_| random_cold_query(&mut rng)).collect();
                    // Alternate unbounded and aggressive deadlines so the
                    // soak exercises the TIMEOUT path too.
                    let deadline_ms = if rng.random_range(0..4u32) == 0 {
                        Some(1)
                    } else {
                        None
                    };
                    let replies = client
                        .estimate_batch_with_deadline("bulk", &batch, deadline_ms)
                        .expect("soak batch");
                    assert_eq!(replies.len(), batch.len());
                }
            });
        }
        while Instant::now() < deadline {
            for q in &tenant_queries {
                let reply = tenant.estimate("tenant", q).expect("soak tenant estimate");
                assert!(reply.value.is_some());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    tenant.ping().expect("alive after soak");
    let settle_until = Instant::now() + Duration::from_secs(10);
    while metric(&mut tenant, "queued") > 0 && Instant::now() < settle_until {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metric(&mut tenant, "queued"), 0);
    tenant.quit().expect("quit");
    server.shutdown();
}
