//! Protocol robustness: malformed, truncated and oversized wire input —
//! scripted and seeded-random — must come back as `ERR` lines (or a
//! clean framing disconnect for input that cannot be re-synchronized),
//! with the server staying up throughout. No panic ever crosses a
//! connection handler.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use cegraph::graph::GraphBuilder;
use cegraph::service::{Client, DatasetRegistry, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn start_server() -> Server {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 1);
    b.add_edge(1, 3, 1);
    b.add_edge(3, 4, 0);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("default", b.build(), 2);
    Server::start(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            batch_max: 4,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

struct RawConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn connect(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        RawConn {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
        self.writer.flush().expect("flush");
    }

    /// Read one response line; `None` on a server-side disconnect. The
    /// per-request `id=<n>` tail is stripped — this suite asserts on
    /// reply bodies.
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => {
                let line = line.trim_end();
                Some(match line.rsplit_once(' ') {
                    Some((body, tail)) if tail.starts_with("id=") => body.to_string(),
                    _ => line.to_string(),
                })
            }
            Err(_) => None,
        }
    }
}

/// Every scripted malformed line earns exactly one `ERR` response, and
/// the same connection keeps serving afterwards.
#[test]
fn scripted_malformed_lines_get_err_and_connection_survives() {
    let server = start_server();
    let mut conn = RawConn::connect(server.local_addr());
    for line in [
        "BOGUS",
        "ESTIMATE",
        "ESTIMATE default",
        "ESTIMATE default 3",
        "ESTIMATE default 3 1 0 1",                       // truncated edge
        "ESTIMATE default 2 1 0 5 0",                     // endpoint out of range
        "ESTIMATE default 3 1 0 1 0 9 9 9",               // trailing tokens
        "ESTIMATE default 3 99 0 1 0",                    // too many edges
        "ESTIMATE default 1 0",                           // zero edges
        "ESTIMATE default 4 2 0 1 0 2 3 1",               // disconnected
        "ESTIMATE nope 3 2 0 1 0 1 2 1",                  // unknown dataset
        "ADD_EDGE default 1 2",                           // truncated update
        "ADD_EDGE default 99999999999 0 0",               // overflows VertexId
        "ADD_EDGE default 99999999 0 0",                  // parses, fails domain bound
        "COMMIT",                                         // missing dataset
        "COMMIT nope",                                    // unknown dataset
        "SNAPSHOT default",                               // missing path
        "SNAPSHOT nope /tmp/x.cegsnap",                   // unknown dataset
        "SNAPSHOT default /no/such/dir/x.cegsnap",        // unwritable path
        "ESTIMATE_BATCH default 1\n2 1 0 1",              // truncated query line
        "ESTIMATE_BATCH default 2\n2 1 0 1 0\n2 1 0 5 0", // bad 2nd query
        "\u{1}\u{2}\u{3} binary garbage",
    ] {
        conn.send(format!("{line}\n").as_bytes());
        let reply = conn.read_line().expect("server must answer, not drop");
        assert!(
            reply.starts_with("ERR "),
            "line {line:?} should earn ERR, got {reply:?}"
        );
        // The connection still serves real traffic.
        conn.send(b"PING\n");
        assert_eq!(conn.read_line().as_deref(), Some("PONG"));
    }
    server.shutdown();
}

/// Framing violations that cannot be re-synchronized — an oversized
/// line, a garbage batch count — answer one `ERR` and drop only that
/// connection; the server itself keeps accepting.
#[test]
fn unsyncable_framing_drops_the_connection_not_the_server() {
    let server = start_server();
    let addr = server.local_addr();

    // A line past the 64 KB cap with no newline.
    let mut conn = RawConn::connect(addr);
    conn.send(&vec![b'A'; 80 * 1024]);
    assert_eq!(
        conn.read_line().as_deref(),
        Some("ERR request line too long")
    );
    assert_eq!(conn.read_line(), None, "connection must be dropped");

    // A batch header whose count is garbage: the query-line count is
    // unknowable, so staying on the connection would desynchronize it.
    for header in [
        "ESTIMATE_BATCH default x\n",
        "ESTIMATE_BATCH default 0\n",
        "ESTIMATE_BATCH default 99999\n",
        "ESTIMATE_BATCH default\n",
    ] {
        let mut conn = RawConn::connect(addr);
        conn.send(header.as_bytes());
        let reply = conn.read_line().expect("one ERR before the drop");
        assert!(reply.starts_with("ERR "), "{header:?} -> {reply:?}");
        assert_eq!(conn.read_line(), None, "{header:?} must drop the conn");
    }

    // A batch abandoned mid-way (client disconnects) must not wedge the
    // server.
    let mut conn = RawConn::connect(addr);
    conn.send(b"ESTIMATE_BATCH default 3\n2 1 0 1 0\n");
    drop(conn);

    // The server is still alive and serving.
    let mut client = Client::connect(addr).expect("server still accepting");
    client.ping().expect("ping");
    assert!(client
        .estimate("default", &cegraph::query::templates::path(2, &[0, 1]))
        .expect("estimate")
        .value
        .is_some());
    client.quit().unwrap();
    server.shutdown();
}

/// Seeded fuzz: random garbage lines and random mutations of valid
/// requests. Every line must produce exactly one response line (any
/// kind), after which the connection must still answer PING — i.e. the
/// parser never desynchronizes and nothing panics server-side.
#[test]
fn fuzzed_lines_never_desync_or_kill_the_server() {
    let server = start_server();
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(0xF022);

    let valid = [
        "ESTIMATE default 3 2 0 1 0 1 2 1",
        "ADD_EDGE default 1 2 0",
        "DEL_EDGE default 0 1 0",
        "COMMIT default",
        "STATS",
    ];
    let charset: Vec<char> = "ABCDEFGHIJKLMNOPQRSTUVWXYZ_abcdefghijklmnopqrstuvwxyz0123456789 -=."
        .chars()
        .collect();

    let mut conn = RawConn::connect(addr);
    for round in 0..400 {
        let line: String = match rng.random_range(0..3u32) {
            // Pure random token soup.
            0 => {
                let len = rng.random_range(0..60usize);
                (0..len)
                    .map(|_| charset[rng.random_range(0..charset.len())])
                    .collect()
            }
            // A valid request, mutated: truncate, or swap one char.
            1 => {
                let base = valid[rng.random_range(0..valid.len())];
                let mut s: Vec<char> = base.chars().collect();
                if rng.random_range(0..2u32) == 0 && !s.is_empty() {
                    s.truncate(rng.random_range(0..s.len()));
                } else if !s.is_empty() {
                    let i = rng.random_range(0..s.len());
                    s[i] = charset[rng.random_range(0..charset.len())];
                }
                s.into_iter().collect()
            }
            // A valid request verbatim (mutations must not poison the
            // connection for real traffic).
            _ => valid[rng.random_range(0..valid.len())].to_string(),
        };
        // Empty/whitespace lines are ignored by the server (no response),
        // and QUIT-shaped lines would close the connection legitimately:
        // skip both so "one line in, one line out" stays assertable.
        if line.trim().is_empty() || line.trim_start().starts_with("QUIT") {
            continue;
        }
        conn.send(format!("{line}\n").as_bytes());
        let reply = conn
            .read_line()
            .unwrap_or_else(|| panic!("round {round}: server dropped on {line:?}"));
        assert!(!reply.is_empty(), "round {round}: empty reply to {line:?}");
        conn.send(b"PING\n");
        assert_eq!(
            conn.read_line().as_deref(),
            Some("PONG"),
            "round {round}: connection desynced after {line:?}"
        );
    }
    server.shutdown();
}
