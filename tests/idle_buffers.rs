//! Idle-connection memory: a fleet of connections that each sent one
//! large (near the 64 KB cap, still answerable) request line and then
//! went idle must not pin its grown read buffers. The server shrinks the
//! per-connection line buffer back to ~1 KB after every oversized
//! request, so resident memory grows by small per-connection state —
//! stream buffers, a touched stack page or two — not by 64 KB a piece.
//!
//! The check is a process-RSS regression (server and test share this
//! process): without the shrink, ~1k idle connections retain ~60 MB;
//! with it, the delta stays well under the asserted bound even counting
//! allocator arenas that hold freed chunks.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cegraph::graph::GraphBuilder;
use cegraph::service::{DatasetRegistry, Server, ServerConfig};

/// Per-connection RSS allowance (KB) once idle: 4 KB read + 4 KB write
/// stream buffers, the shrunk 1 KB line buffer, a couple of touched
/// 4 KB stack/TCB pages, allocator slack.
const IDLE_KB_PER_CONN: u64 = 24;

fn read_proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            return rest
                .trim_start_matches(':')
                .split_whitespace()
                .next()?
                .parse()
                .ok();
        }
    }
    None
}

/// Soft open-file limit from `/proc/self/limits`; `None` off-Linux.
fn soft_fd_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

struct IdleConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl IdleConn {
    fn connect(addr: std::net::SocketAddr) -> IdleConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        IdleConn {
            writer: stream.try_clone().expect("clone"),
            // Small client-side buffer: the measurement targets the
            // server's per-connection state, not the harness's.
            reader: BufReader::with_capacity(1024, stream),
        }
    }

    fn roundtrip(&mut self, request: &[u8]) -> String {
        self.writer.write_all(request).expect("write");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("read") > 0,
            "server closed the connection"
        );
        // Strip the per-request `id=<n>` tail; the assertions here are
        // about the reply bodies.
        let line = line.trim_end();
        match line.rsplit_once(' ') {
            Some((body, tail)) if tail.starts_with("id=") => body.to_string(),
            _ => line.to_string(),
        }
    }
}

#[test]
fn thousand_idle_connections_do_not_pin_grown_read_buffers() {
    let Some(fd_limit) = soft_fd_limit() else {
        eprintln!("skipping: /proc/self/limits unavailable (non-Linux)");
        return;
    };
    if read_proc_status_kb("VmRSS").is_none() {
        eprintln!("skipping: /proc/self/status has no VmRSS");
        return;
    }
    // Each connection costs two fds in this process (client + server
    // end); leave headroom for everything else the test binary holds.
    let n = 1000usize.min(((fd_limit.saturating_sub(128)) / 2) as usize);
    assert!(n >= 64, "fd limit {fd_limit} too low to say anything");

    let registry = Arc::new(DatasetRegistry::new());
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 1);
    b.add_edge(2, 3, 0);
    registry.insert_graph("default", b.build(), 2);
    let server = Server::start(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            batch_max: 4,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Establish the fleet and force every handler thread fully up (one
    // PING each) before taking the baseline, so thread stacks and stream
    // buffers are counted in *both* measurements and the delta isolates
    // what the big lines leave behind.
    let mut conns: Vec<IdleConn> = (0..n).map(|_| IdleConn::connect(addr)).collect();
    for conn in &mut conns {
        assert_eq!(conn.roundtrip(b"PING\n"), "PONG");
    }
    let rss_before = read_proc_status_kb("VmRSS").unwrap();

    // One ~56 KB garbage line per connection: under the 64 KB framing
    // cap, so the server answers `ERR` and keeps the connection — but
    // its line buffer has ballooned and must be given back.
    let mut big = String::with_capacity(57 * 1024);
    big.push_str("BOGUS ");
    while big.len() < 56 * 1024 {
        big.push('x');
    }
    big.push('\n');
    for conn in &mut conns {
        let reply = conn.roundtrip(big.as_bytes());
        assert!(reply.starts_with("ERR "), "got {reply:?}");
    }
    // The fleet is idle again; the same connections still serve.
    for conn in &mut conns {
        assert_eq!(conn.roundtrip(b"PING\n"), "PONG");
    }
    std::thread::sleep(Duration::from_millis(200));

    let rss_after = read_proc_status_kb("VmRSS").unwrap();
    let delta_kb = rss_after.saturating_sub(rss_before);
    let bound_kb = (n as u64) * IDLE_KB_PER_CONN;
    assert!(
        delta_kb <= bound_kb,
        "{n} idle connections retained {delta_kb} KB (> {bound_kb} KB): \
         grown read buffers are being pinned"
    );

    drop(conns);
    server.shutdown();
}
