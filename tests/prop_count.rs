//! Differential property tests of the counting kernel.
//!
//! The plan-driven kernel (`cegraph::exec::count`) — per-depth extension
//! plans, k-way merge/galloping intersection, label-restricted roots,
//! independent-suffix products — must return exactly the counts of the
//! retained naive reference matcher (`cegraph::exec::count_naive`) on
//! random graphs, random queries and random per-variable constraints.

use cegraph::exec::{
    count_naive, count_with_limit, enumerate, CountBudget, VarConstraint, VarConstraints,
};
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryEdge, QueryGraph};
use proptest::prelude::*;

const LABELS: u16 = 3;
const VERTICES: u32 = 14;

fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
    // up to 60 edges over 14 vertices and 3 labels; self-loops included
    prop::collection::vec((0u32..VERTICES, 0u32..VERTICES, 0u16..LABELS), 0..60).prop_map(|edges| {
        let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
        for (s, d, l) in edges {
            b.add_edge(s, d, l);
        }
        b.build()
    })
}

/// Template queries plus free-form connected-ish edge lists (including
/// self-loops, parallel edges and disconnected components).
fn arb_query() -> impl Strategy<Value = QueryGraph> {
    let l = 0u16..LABELS;
    prop_oneof![
        prop::collection::vec(l.clone(), 1..=5).prop_map(|ls| templates::path(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 2..=5).prop_map(|ls| templates::star(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 3..=6).prop_map(|ls| templates::cycle(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 5..=5).prop_map(|ls| templates::q5f(&ls)),
        prop::collection::vec(l.clone(), 6..=6).prop_map(|ls| templates::tree_depth(
            ls.len(),
            3,
            &ls
        )),
        // free-form: up to 6 edges over up to 5 variables
        prop::collection::vec((0u8..5, 0u8..5, l), 1..=6).prop_map(|es| {
            let edges: Vec<QueryEdge> = es
                .into_iter()
                .map(|(s, d, l)| QueryEdge::new(s, d, l))
                .collect();
            QueryGraph::new(5, edges)
        }),
    ]
}

fn arb_constraint() -> impl Strategy<Value = VarConstraint> {
    prop_oneof![
        Just(VarConstraint::Any),
        (2u32..4, 0u32..2).prop_map(|(buckets, bucket)| VarConstraint::HashBucket {
            buckets,
            bucket: bucket % buckets,
        }),
        (0u32..VERTICES).prop_map(VarConstraint::Fixed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unconstrained counts agree with the naive reference.
    #[test]
    fn kernel_matches_naive((g, q) in (arb_graph(), arb_query())) {
        let cons = VarConstraints::none(q.num_vars());
        let fast = count_with_limit(&g, &q, &cons, CountBudget::UNLIMITED).unwrap();
        let naive = count_naive(&g, &q, &cons);
        prop_assert_eq!(fast, naive, "query {}", q);
    }

    /// Constrained counts (hash buckets and pinned vertices) agree too.
    #[test]
    fn constrained_kernel_matches_naive(
        (g, q, c0, c1) in (arb_graph(), arb_query(), arb_constraint(), arb_constraint())
    ) {
        let mut cons = VarConstraints::none(q.num_vars());
        cons.set(0, c0);
        if q.num_vars() > 1 {
            cons.set(1, c1);
        }
        let fast = count_with_limit(&g, &q, &cons, CountBudget::UNLIMITED).unwrap();
        let naive = count_naive(&g, &q, &cons);
        prop_assert_eq!(fast, naive, "query {}", q);
    }

    /// Enumeration visits exactly the homomorphisms the count promises,
    /// each binding valid edge-by-edge, with no duplicates.
    #[test]
    fn enumerate_is_sound_complete_and_duplicate_free((g, q) in (arb_graph(), arb_query())) {
        let cons = VarConstraints::none(q.num_vars());
        let mut seen: Vec<Vec<u32>> = Vec::new();
        enumerate(&g, &q, &cons, &mut |b| {
            seen.push(b.to_vec());
            true
        });
        for b in &seen {
            for e in q.edges() {
                prop_assert!(
                    g.has_edge(b[e.src as usize], b[e.dst as usize], e.label),
                    "binding {b:?} violates edge {e:?} of {q}"
                );
            }
        }
        let n = seen.len() as u64;
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len() as u64, n, "duplicate bindings from {}", q);
        prop_assert_eq!(n, count_naive(&g, &q, &cons), "query {}", q);
    }

    /// A budget never changes a completed count, and exhaustion is the
    /// only way to get `None`.
    #[test]
    fn budget_only_truncates((g, q) in (arb_graph(), arb_query())) {
        let cons = VarConstraints::none(q.num_vars());
        let full = count_with_limit(&g, &q, &cons, CountBudget::UNLIMITED).unwrap();
        // None means the budget was exhausted and no count is claimed.
        if let Some(c) = count_with_limit(&g, &q, &cons, CountBudget::new(50)) {
            prop_assert_eq!(c, full);
        }
    }
}
