//! Property tests of the pessimistic-bound theory on random instances:
//! Theorem 5.1, Proposition 5.1, Observation 3, Appendix B equivalence,
//! Corollary D.1 and the AGM relationships.

use cegraph::catalog::DegreeStats;
use cegraph::core::agm::agm_bound;
use cegraph::core::bound_sketch::molp_sketch_bound;
use cegraph::core::cbs::cbs_bound;
use cegraph::core::dbplp::dbplp_bound_default;
use cegraph::core::{molp_bound, molp_lp_bound, MolpInstance};
use cegraph::exec::count;
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::cycles::is_acyclic;
use cegraph::query::{templates, QueryGraph};
use proptest::prelude::*;

const LABELS: u16 = 3;

fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
    // up to 40 edges over 12 vertices and 3 labels
    prop::collection::vec((0u32..12, 0u32..12, 0u16..LABELS), 1..40).prop_map(|edges| {
        let mut b = GraphBuilder::with_labels(12, LABELS as usize);
        for (s, d, l) in edges {
            b.add_edge(s, d, l);
        }
        b.build()
    })
}

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    let l = 0u16..LABELS;
    prop_oneof![
        prop::collection::vec(l.clone(), 2..=4).prop_map(|ls| templates::path(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 2..=4).prop_map(|ls| templates::star(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 3..=4).prop_map(|ls| templates::cycle(ls.len(), &ls)),
        prop::collection::vec(l, 4..=4).prop_map(|ls| templates::tree_depth(4, 3, &ls)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 5.1: the MOLP bound covers the true cardinality.
    #[test]
    fn molp_is_pessimistic((g, q) in (arb_graph(), arb_query())) {
        let inst = MolpInstance::from_graph(&g, &q);
        let bound = molp_bound(&inst);
        let truth = count(&g, &q) as f64;
        prop_assert!(bound >= truth - 1e-6, "bound {bound} < truth {truth}");
    }

    /// Theorem 5.1: Dijkstra over CEG_M equals the literal MOLP LP.
    #[test]
    fn theorem_5_1((g, q) in (arb_graph(), arb_query())) {
        let inst = MolpInstance::from_graph(&g, &q);
        let dij = molp_bound(&inst);
        let lp = molp_lp_bound(&inst, false);
        let (a, b) = (dij.max(1e-12).ln(), lp.max(1e-12).ln());
        prop_assert!((a - b).abs() < 1e-6, "dijkstra {dij} vs lp {lp}");
    }

    /// Observation 3: projection inequalities never change the optimum.
    #[test]
    fn observation_3((g, q) in (arb_graph(), arb_query())) {
        let inst = MolpInstance::from_graph(&g, &q);
        let without = molp_lp_bound(&inst, false);
        let with = molp_lp_bound(&inst, true);
        let (a, b) = (without.max(1e-12).ln(), with.max(1e-12).ln());
        prop_assert!((a - b).abs() < 1e-6, "{without} vs {with}");
    }

    /// Appendix B: CBS == MOLP on acyclic binary queries (and hence
    /// MOLP ≤ CBS there). On cyclic queries CBS can be *unsafe* (Appendix
    /// C) and may fall below MOLP and even below the truth, so no
    /// relation is asserted.
    #[test]
    fn appendix_b((g, q) in (arb_graph(), arb_query())) {
        if !is_acyclic(&q) {
            return Ok(());
        }
        let stats = DegreeStats::build_base(&g);
        let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
        let cbs = cbs_bound(&q, &stats);
        let (a, b) = (molp.max(1e-12).ln(), cbs.max(1e-12).ln());
        prop_assert!((a - b).abs() < 1e-6, "acyclic: MOLP {molp} != CBS {cbs}");
    }

    /// Corollary D.1: MOLP is at least as tight as DBPLP.
    #[test]
    fn corollary_d1((g, q) in (arb_graph(), arb_query())) {
        let stats = DegreeStats::build_base(&g);
        let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
        let dbplp = dbplp_bound_default(&q, &stats);
        prop_assert!(molp <= dbplp * (1.0 + 1e-9) + 1e-9, "MOLP {molp} > DBPLP {dbplp}");
    }

    /// AGM is a valid upper bound, and on acyclic queries MOLP refines it.
    #[test]
    fn agm_properties((g, q) in (arb_graph(), arb_query())) {
        let stats = DegreeStats::build_base(&g);
        let agm = agm_bound(&q, &stats);
        let truth = count(&g, &q) as f64;
        prop_assert!(agm >= truth - 1e-6, "AGM {agm} < truth {truth}");
        if is_acyclic(&q) {
            let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
            prop_assert!(molp <= agm * (1.0 + 1e-9) + 1e-9, "MOLP {molp} > AGM {agm}");
        }
    }

    /// Bound sketches stay pessimistic and never loosen the bound.
    #[test]
    fn sketch_tightens((g, q) in (arb_graph(), arb_query()), k in 1u32..32) {
        let direct = molp_sketch_bound(&g, &q, 1);
        let sketched = molp_sketch_bound(&g, &q, k);
        let truth = count(&g, &q) as f64;
        prop_assert!(sketched <= direct * (1.0 + 1e-9) + 1e-9, "k={k}: {sketched} > {direct}");
        prop_assert!(sketched >= truth - 1e-6, "k={k}: {sketched} < truth {truth}");
    }

    /// 2-join degree statistics only ever tighten MOLP.
    #[test]
    fn join_stats_tighten((g, q) in (arb_graph(), arb_query())) {
        let queries = [q.clone()];
        let stats = DegreeStats::build_with_joins(&g, &queries, 1 << 22);
        let base = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
        let joined = molp_bound(&MolpInstance::from_stats(&q, &stats, true));
        let truth = count(&g, &q) as f64;
        prop_assert!(joined <= base * (1.0 + 1e-9) + 1e-9, "{joined} > {base}");
        prop_assert!(joined >= truth - 1e-6, "{joined} < truth {truth}");
    }
}
