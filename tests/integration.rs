//! End-to-end integration: dataset generation → workload instantiation →
//! statistics → every estimator → report rendering, plus cross-crate
//! invariants the paper's evaluation relies on.

use cegraph::catalog::{CharacteristicSets, DegreeStats, MarkovTable, SummaryGraph};
use cegraph::core::{Aggr, Heuristic, PathLen};
use cegraph::estimators::{
    CardinalityEstimator, CbsEstimator, CsEstimator, MolpEstimator, OptimisticEstimator,
    Rdf3xDefaultEstimator, SketchedMolp, SketchedOptimistic, SumRdfEstimator, WanderJoinEstimator,
};
use cegraph::planner::{execute_plan, optimize};
use cegraph::workload::runner::{render_table, run_estimators};
use cegraph::workload::{Dataset, Workload};

#[test]
fn full_pipeline_on_hetionet_job() {
    let graph = Dataset::Hetionet.generate(1);
    let queries = Workload::Job.build(&graph, 2, 1);
    assert!(queries.len() >= 5, "workload too small: {}", queries.len());

    let table = MarkovTable::build(
        &graph,
        &queries.iter().map(|q| q.query.clone()).collect::<Vec<_>>(),
        2,
    );
    let degs = DegreeStats::build_base(&graph);
    let cs = CharacteristicSets::build(&graph);
    let summary = SummaryGraph::build(&graph, 32);

    let mut ests: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(OptimisticEstimator::new(
            &table,
            Heuristic::new(PathLen::MaxHop, Aggr::Max),
        )),
        Box::new(OptimisticEstimator::new(
            &table,
            Heuristic::new(PathLen::MinHop, Aggr::Min),
        )),
        Box::new(MolpEstimator::new(&degs, false)),
        Box::new(CbsEstimator::new(&degs)),
        Box::new(CsEstimator::new(&cs)),
        Box::new(SumRdfEstimator::new(&summary, 2_000_000)),
        Box::new(WanderJoinEstimator::new(&graph, 0.05, 7)),
        Box::new(Rdf3xDefaultEstimator::new(&graph)),
        Box::new(SketchedOptimistic::max_hop_max(&graph, &table, 4)),
        Box::new(SketchedMolp::new(&graph, 4)),
    ];
    let reports = run_estimators(&queries, &mut ests);
    assert_eq!(reports.len(), ests.len());

    // MOLP and sketched MOLP never underestimate
    for r in &reports {
        if r.name.starts_with("MOLP") {
            assert!(
                r.summary.min >= -1e-6,
                "{} underestimated: min signed log q-error {}",
                r.name,
                r.summary.min
            );
        }
    }

    // rendering must produce a row per estimator
    let table_txt = render_table("integration", &reports);
    for r in &reports {
        assert!(table_txt.contains(&r.name), "missing row for {}", r.name);
    }
}

#[test]
fn max_hop_max_beats_min_hop_min_on_acyclic() {
    // the paper's headline result, end to end on a synthetic dataset
    let graph = Dataset::Dblp.generate(3);
    let queries = Workload::Acyclic.build(&graph, 2, 3);
    assert!(!queries.is_empty());
    let table = MarkovTable::build(
        &graph,
        &queries.iter().map(|q| q.query.clone()).collect::<Vec<_>>(),
        3,
    );
    let mut mm = OptimisticEstimator::new(&table, Heuristic::new(PathLen::MaxHop, Aggr::Max));
    let mut nn = OptimisticEstimator::new(&table, Heuristic::new(PathLen::MinHop, Aggr::Min));
    let mut mm_err = 0.0f64;
    let mut nn_err = 0.0f64;
    let mut n = 0usize;
    for wq in &queries {
        let (Some(a), Some(b)) = (mm.estimate(&wq.query), nn.estimate(&wq.query)) else {
            continue;
        };
        mm_err += cegraph::core::oracle::qerror(a, wq.truth).log10();
        nn_err += cegraph::core::oracle::qerror(b, wq.truth).log10();
        n += 1;
    }
    assert!(n > 0);
    assert!(
        mm_err <= nn_err + 1e-9,
        "max-hop-max mean log q-error {} worse than min-hop-min {}",
        mm_err / n as f64,
        nn_err / n as f64
    );
}

#[test]
fn every_estimator_is_deterministic() {
    let graph = Dataset::Epinions.generate(5);
    let queries = Workload::Job.build(&graph, 1, 5);
    let table = MarkovTable::build(
        &graph,
        &queries.iter().map(|q| q.query.clone()).collect::<Vec<_>>(),
        2,
    );
    let degs = DegreeStats::build_base(&graph);
    for wq in &queries {
        let mut a = OptimisticEstimator::recommended(&table);
        let mut b = OptimisticEstimator::recommended(&table);
        assert_eq!(a.estimate(&wq.query), b.estimate(&wq.query));
        let mut m1 = MolpEstimator::new(&degs, false);
        let mut m2 = MolpEstimator::new(&degs, false);
        assert_eq!(m1.estimate(&wq.query), m2.estimate(&wq.query));
    }
}

#[test]
fn planner_uses_estimates_end_to_end() {
    let graph = Dataset::Watdiv.generate(2);
    let queries = Workload::Job.build(&graph, 1, 2);
    let table = MarkovTable::build(
        &graph,
        &queries.iter().map(|q| q.query.clone()).collect::<Vec<_>>(),
        2,
    );
    for wq in queries.iter().take(4) {
        let mut est = OptimisticEstimator::recommended(&table);
        let (plan, cost) = optimize(&wq.query, &mut est);
        assert!(cost >= 0.0);
        if let Some(stats) = execute_plan(&graph, &wq.query, &plan, 8_000_000) {
            assert_eq!(stats.output as f64, wq.truth, "plan output != truth");
        }
    }
}

#[test]
fn workload_truths_match_executor() {
    let graph = Dataset::Hetionet.generate(8);
    let queries = Workload::Cyclic.build(&graph, 1, 8);
    for wq in &queries {
        let direct = cegraph::exec::count(&graph, &wq.query) as f64;
        assert_eq!(direct, wq.truth, "{}", wq.template);
    }
}

#[test]
fn vertex_labels_flow_through_estimation() {
    // Section 6.1's vertex-label extension via the unary-relation
    // reduction: labels filter matches and Markov statistics cover them.
    use cegraph::exec::count;
    use cegraph::graph::GraphBuilder;
    use cegraph::query::{templates, VertexLabelSpace};

    let space = VertexLabelSpace::new(2);
    let mut b = GraphBuilder::new(24);
    for i in 0..8u32 {
        b.add_edge(i, 8 + i, 0);
        b.add_edge(8 + i, 16 + (i % 4), 1);
        if i % 2 == 0 {
            space.label_vertex(&mut b, 8 + i, 0);
        }
    }
    let g = b.build();

    let plain = templates::path(2, &[0, 1]);
    let labeled = space.with_vertex_label(&plain, 1, 0);
    let truth_plain = count(&g, &plain);
    let truth_labeled = count(&g, &labeled);
    assert!(truth_labeled < truth_plain, "label must filter matches");

    // a Markov table of size 3 answers the 3-edge labeled query exactly
    let t = MarkovTable::build_for_query(&g, &labeled, 3);
    let mut est = OptimisticEstimator::recommended(&t);
    let e = est.estimate(&labeled).unwrap();
    assert_eq!(e, truth_labeled as f64);

    // with h = 2 the estimator must still produce a sane estimate
    let t2 = MarkovTable::build_for_query(&g, &labeled, 2);
    let mut est2 = OptimisticEstimator::recommended(&t2);
    let e2 = est2.estimate(&labeled).unwrap();
    assert!(e2 > 0.0 && e2.is_finite());
}
