//! Property tests for the deadline machinery: random query mixes with
//! random (often absurdly tight) deadlines against a live server must
//! produce, for every single request slot, either a **correct estimate**
//! (equal to a deadline-free control engine's answer) or a **typed
//! `TIMEOUT`** — never a partial answer, a corrupted line, or a
//! desynchronized stream. After every exchange the same connection must
//! still round-trip a `PING`, which is what "the stream stayed framed"
//! means on the wire.

use std::sync::Arc;

use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryGraph};
use cegraph::service::{Client, DatasetRegistry, Engine, QueryReply, Server, ServerConfig};
use proptest::prelude::*;

const LABELS: u16 = 3;

fn toy_graph() -> LabeledGraph {
    let mut b = GraphBuilder::with_labels(12, LABELS as usize);
    for (s, d, l) in [
        (0, 1, 0),
        (1, 2, 1),
        (2, 3, 2),
        (3, 4, 0),
        (4, 5, 1),
        (5, 0, 2),
        (1, 6, 0),
        (6, 7, 1),
        (7, 1, 2),
        (8, 9, 0),
        (9, 10, 1),
        (10, 11, 0),
        (11, 8, 1),
        (2, 8, 2),
        (5, 9, 0),
    ] {
        b.add_edge(s, d, l);
    }
    b.build()
}

/// The closed query universe both servers and the control engine see.
fn query_universe() -> Vec<QueryGraph> {
    vec![
        templates::path(2, &[0, 1]),
        templates::path(2, &[1, 2]),
        templates::path(2, &[2, 0]),
        templates::path(3, &[0, 1, 2]),
        templates::path(3, &[1, 0, 1]),
        templates::star(2, &[0, 2]),
        templates::star(3, &[0, 1, 2]),
        templates::cycle(3, &[0, 1, 2]),
        templates::cycle(4, &[0, 1, 0, 1]),
    ]
}

fn registry() -> Arc<DatasetRegistry> {
    let r = Arc::new(DatasetRegistry::new());
    r.insert_graph("default", toy_graph(), 2);
    r
}

/// Deadline-free control answers, computed once per process: the wire
/// servers under test must agree with these on every answered slot.
fn control_values() -> &'static Vec<Option<f64>> {
    use std::sync::OnceLock;
    static CONTROL: OnceLock<Vec<Option<f64>>> = OnceLock::new();
    CONTROL.get_or_init(|| {
        let engine = Engine::new(registry(), 0);
        query_universe()
            .iter()
            .map(|q| {
                engine
                    .estimate("default", q)
                    .expect("control estimate")
                    .value
            })
            .collect()
    })
}

/// One request slot: which query, and what deadline (if any) to attach.
/// Deadlines are drawn from a set biased toward the nasty end — 0ms and
/// 1ms mostly expire in the queue, 10s never does.
fn arb_slot() -> impl Strategy<Value = (usize, Option<u64>)> {
    let n = query_universe().len();
    (
        0..n,
        prop_oneof![
            Just(None),
            Just(Some(0u64)),
            Just(Some(1u64)),
            Just(Some(5u64)),
            Just(Some(10_000u64)),
        ],
    )
}

fn check_reply(
    reply: &QueryReply,
    query_idx: usize,
    requested_ms: Option<u64>,
    default_ms: u64,
) -> Result<(), TestCaseError> {
    match reply {
        QueryReply::Estimate(est) => {
            prop_assert_eq!(
                est.value,
                control_values()[query_idx],
                "answered slot must equal the deadline-free control"
            );
        }
        QueryReply::Timeout { deadline_ms } => {
            // The echoed deadline is the one the server enforced: the
            // request's own, or the server default when none was sent.
            let enforced = requested_ms.unwrap_or(default_ms);
            prop_assert_eq!(*deadline_ms, enforced, "TIMEOUT must echo the deadline");
        }
        QueryReply::Busy(msg) => {
            // A single sequential client can never fill the default
            // 1024-job admission queue.
            return Err(TestCaseError::fail(format!(
                "sequential client must never see BUSY, got `{msg}`"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-request mode: each slot goes out as its own `ESTIMATE`.
    #[test]
    fn every_single_reply_is_correct_or_typed_timeout(
        slots in prop::collection::vec(arb_slot(), 1..10)
    ) {
        let server = Server::start(
            registry(),
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                batch_max: 4,
                cache_capacity: 64,
                default_deadline_ms: Some(10_000),
                ..ServerConfig::default()
            },
        ).unwrap();
        let queries = query_universe();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for &(qi, deadline_ms) in &slots {
            let reply = client
                .estimate_with_deadline("default", &queries[qi], deadline_ms)
                .expect("typed reply, never a broken stream");
            check_reply(&reply, qi, deadline_ms, 10_000)?;
            // Framing: the connection answers an interleaved PING after
            // every slot, timed out or not.
            client.ping().expect("stream must stay in sync");
        }
        client.quit().unwrap();
        server.shutdown();
    }

    /// Batch mode: all slots in one `ESTIMATE_BATCH` under one deadline.
    /// A timed-out batch must still answer exactly `n` ordered typed
    /// lines and leave the stream framed.
    #[test]
    fn batches_with_deadlines_stay_framed(
        slots in prop::collection::vec(0..query_universe().len(), 1..10),
        deadline_ms in prop_oneof![
            Just(None),
            Just(Some(0u64)),
            Just(Some(1u64)),
            Just(Some(10_000u64)),
        ],
    ) {
        let server = Server::start(
            registry(),
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                batch_max: 4,
                cache_capacity: 64,
                default_deadline_ms: Some(10_000),
                ..ServerConfig::default()
            },
        ).unwrap();
        let queries = query_universe();
        let batch: Vec<QueryGraph> = slots.iter().map(|&i| queries[i].clone()).collect();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let replies = client
            .estimate_batch_with_deadline("default", &batch, deadline_ms)
            .expect("a timed-out batch is still a well-formed batch");
        prop_assert_eq!(replies.len(), batch.len(), "every slot answers");
        for (&qi, reply) in slots.iter().zip(&replies) {
            check_reply(reply, qi, deadline_ms, 10_000)?;
        }
        client.ping().expect("stream must stay in sync after the batch");

        // The same batch re-sent with no deadline answers everything,
        // and still matches the control: a timeout left no partial
        // state (poisoned cache entry, half-filled catalog) behind.
        let replies = client
            .estimate_batch_with_deadline("default", &batch, None)
            .expect("deadline-free batch");
        for (&qi, reply) in slots.iter().zip(&replies) {
            match reply {
                QueryReply::Estimate(est) => {
                    prop_assert_eq!(est.value, control_values()[qi]);
                }
                // 10s server default: an honest timeout here would mean
                // the earlier timed-out attempt corrupted the dataset.
                other => {
                    return Err(TestCaseError::fail(format!(
                        "deadline-free retry must answer, got {other:?}"
                    )));
                }
            }
        }
        client.quit().unwrap();
        server.shutdown();
    }
}

/// Deterministic regression: a whole batch sent with `DEADLINE_MS=0`
/// (already expired on arrival) gets `n` typed lines — `TIMEOUT` for
/// every cold slot — and the connection keeps serving.
#[test]
fn zero_deadline_batch_times_out_cleanly() {
    let server = Server::start(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            batch_max: 4,
            cache_capacity: 0, // no cache: every slot must take the queued path
            default_deadline_ms: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let queries = query_universe();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let replies = client
        .estimate_batch_with_deadline("default", &queries, Some(0))
        .expect("typed replies");
    assert_eq!(replies.len(), queries.len());
    for reply in &replies {
        match reply {
            QueryReply::Timeout { deadline_ms } => assert_eq!(*deadline_ms, 0),
            QueryReply::Estimate(_) => {
                // Legal but rare: the worker can dequeue within the same
                // clock tick the deadline was stamped. Correctness is
                // still required.
            }
            QueryReply::Busy(msg) => panic!("unexpected BUSY: {msg}"),
        }
    }
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, QueryReply::Timeout { .. })),
        "an expired-on-arrival batch should produce at least one TIMEOUT"
    );
    client.ping().expect("stream in sync after mass timeout");

    // And the dataset is untouched: the same batch, unbounded, answers
    // with the control values.
    let replies = client
        .estimate_batch_with_deadline("default", &queries, None)
        .expect("unbounded batch");
    for (i, reply) in replies.iter().enumerate() {
        match reply {
            QueryReply::Estimate(est) => assert_eq!(est.value, control_values()[i]),
            other => panic!("slot {i}: expected estimate, got {other:?}"),
        }
    }
    client.quit().unwrap();
    server.shutdown();
}
