//! The crash-recovery harness: kill the durable commit path at **every**
//! I/O step and prove the recovery contract each time.
//!
//! The contract, verified after every injected crash and after a real
//! `kill -9`:
//!
//! 1. **No acked commit is lost** — if `COMMIT` replied OK, the commit
//!    is present after recovery.
//! 2. **No unacked commit half-applies** — the recovered state is the
//!    base graph plus a *whole-transaction prefix* of the commit
//!    sequence, never a partial transaction. (An unacked commit whose
//!    WAL record happened to land completely *may* survive; it must
//!    then survive whole.)
//! 3. **Estimates match a control** — a server recovered from
//!    snapshot plus WAL answers byte-for-byte like one that executed
//!    the same committed prefix without ever crashing: same epoch,
//!    same edge set, same catalog bytes, same estimate.
//!
//! The sweep works like a record/replay fuzzer: one fault-free run
//! against [`FaultStorage`] learns how many storage operations the
//! workload performs, then the workload is re-run once per operation
//! index with `crash_after` armed there — covering every snapshot
//! write, WAL append and fsync, including the ones inside
//! `attach_durability` itself. The quick sweep models "page cache
//! lost" (reboot keeps 0 unsynced bytes); the `#[ignore]`d exhaustive
//! variant (nightly soak) also sweeps "one stray sector" and
//! "everything happened to land".

use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

use cegraph::catalog::io::write_markov;
use cegraph::catalog::MarkovTable;
use cegraph::core::{Aggr, Heuristic, PathLen};
use cegraph::estimators::{CardinalityEstimator, OptimisticEstimator};
use cegraph::graph::vfs::{FaultPlan, FaultStorage, Storage};
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::templates;
use cegraph::query::QueryGraph;
use cegraph::service::{Client, DatasetEntry, DatasetRegistry, Server, ServerConfig};

const SNAP: &str = "/data/default.cegsnap";
const WAL: &str = "/data/default.cegwal";
const VERTICES: usize = 12;
const LABELS: usize = 3;

/// One scripted edge operation: `(src, dst, label, is_delete)`.
type Op = (u32, u32, u16, bool);

fn base_graph() -> LabeledGraph {
    let mut b = GraphBuilder::with_labels(VERTICES, LABELS);
    for (s, d, l) in [
        (0, 1, 0),
        (1, 2, 1),
        (2, 3, 2),
        (3, 4, 0),
        (4, 0, 2),
        (1, 3, 1),
        (2, 0, 1),
    ] {
        b.add_edge(s, d, l);
    }
    b.build()
}

/// The scripted commit sequence. Vertices 8..12 are untouched by the
/// base graph, so every transaction carries at least one genuinely new
/// edge — its effective delta is never empty and each acked commit
/// advances the epoch by exactly one. Redundant ops (re-adding a live
/// edge, deleting a dead one) are sprinkled in to prove the WAL logs
/// the *effective* delta.
fn workload() -> Vec<Vec<Op>> {
    vec![
        vec![(8, 9, 0, false), (0, 1, 0, true)],
        vec![(9, 10, 1, false), (8, 9, 0, false)], // redundant re-add
        vec![(10, 11, 2, false), (8, 9, 0, true)],
        vec![(8, 10, 1, false)],
        vec![(9, 11, 0, false), (4, 5, 1, false)],
        vec![(8, 11, 2, false), (9, 10, 1, true)],
        vec![(10, 8, 0, false), (0, 1, 0, true)], // redundant re-delete
        vec![(11, 9, 1, false), (2, 3, 2, true)],
    ]
}

fn queries() -> Vec<QueryGraph> {
    vec![
        templates::path(2, &[0, 1]),
        templates::star(2, &[1, 2]),
        templates::cycle(3, &[0, 1, 2]),
    ]
}

/// A fresh entry with a warm catalog, not yet durable.
fn plain_entry(name: &str) -> DatasetEntry {
    let entry = DatasetEntry::new(name, base_graph(), MarkovTable::empty(2));
    entry.ensure_patterns(&queries());
    entry
}

/// Buffer and commit every scripted transaction, like a client whose
/// `COMMIT`s may start failing mid-run. Returns how many commits were
/// **acked** (`try_commit` returned `Ok`) — the prefix recovery must
/// preserve.
fn drive(entry: &DatasetEntry, txs: &[Vec<Op>]) -> usize {
    let mut acked = 0;
    for tx in txs {
        for &(s, d, l, del) in tx {
            let buffered = if del {
                entry.del_edge(s, d, l)
            } else {
                entry.add_edge(s, d, l)
            };
            buffered.expect("buffering is in-memory and must not fail");
        }
        if entry.try_commit().is_ok() {
            acked += 1;
        }
    }
    acked
}

/// The uncrashed control: the same catalog warmup and the first `k`
/// transactions, committed without any durability in the way.
fn control_after(k: usize) -> DatasetEntry {
    let entry = plain_entry("control");
    let acked = drive(&entry, &workload()[..k]);
    assert_eq!(acked, k, "the control run cannot fail");
    entry
}

fn table_bytes(t: &MarkovTable) -> Vec<u8> {
    let mut buf = Vec::new();
    write_markov(t, &mut buf).unwrap();
    buf
}

fn estimate_path(entry: &DatasetEntry) -> Option<f64> {
    let q = templates::path(2, &[0, 1]);
    entry.with_markov(|t| {
        let mut est = OptimisticEstimator::new(t, Heuristic::new(PathLen::MaxHop, Aggr::Max));
        est.estimate(&q)
    })
}

/// The recovered entry must be indistinguishable from the control that
/// committed the same prefix: epoch, edge set (both directions of the
/// CSR), catalog bytes, and an actual estimate.
fn assert_matches_control(recovered: &DatasetEntry, k: usize) {
    let control = control_after(k);
    assert_eq!(
        recovered.epoch(),
        control.epoch(),
        "epoch after {k} commits"
    );
    assert_eq!(recovered.graph_summary(), control.graph_summary());
    let a = recovered.materialized_graph();
    let b = control.materialized_graph();
    assert_eq!(a.num_edges(), b.num_edges(), "edge count after {k} commits");
    for e in a.all_edges() {
        assert!(
            b.has_edge(e.src, e.dst, e.label),
            "recovered edge {e:?} is not in the control after {k} commits"
        );
    }
    assert_eq!(
        recovered.with_markov(table_bytes),
        control.with_markov(table_bytes),
        "catalog bytes diverge after {k} commits"
    );
    assert_eq!(estimate_path(recovered), estimate_path(&control));
}

/// Run the workload with a crash armed at storage operation `crash_at`,
/// reboot keeping `keep_unsynced` unsynced bytes per file, recover, and
/// check the contract. Returns `(acked, recovered_epoch)`.
fn crash_and_recover(crash_at: u64, keep_unsynced: usize) -> (usize, u64) {
    let fs = FaultStorage::new();
    fs.set_plan(FaultPlan::default().crash_after(crash_at));
    let entry = plain_entry("default");
    // If the crash hits inside attach_durability (baseline snapshot or
    // WAL creation), the server never came up — nothing was acked.
    let acked = match entry.attach_durability(Arc::new(fs.clone()), SNAP, WAL) {
        Ok(()) => drive(&entry, &workload()),
        Err(_) => 0,
    };
    drop(entry);

    fs.reboot(keep_unsynced);
    let storage: Arc<dyn Storage> = Arc::new(fs.clone());
    if !storage.exists(Path::new(SNAP)) {
        // The baseline snapshot never landed; attach must have failed
        // before any commit could be acked.
        assert_eq!(acked, 0, "commits were acked without a snapshot on disk");
        return (0, 0);
    }
    let (recovered, report) = DatasetEntry::recover("default", storage, SNAP, WAL, 1)
        .unwrap_or_else(|e| panic!("recovery after crash at op {crash_at} failed: {e}"));
    let epoch = recovered.epoch();
    assert_eq!(epoch, report.epoch);
    assert!(
        epoch >= acked as u64,
        "crash at op {crash_at}: {acked} commits were acked but recovery reached epoch {epoch}"
    );
    assert!(
        epoch <= workload().len() as u64,
        "crash at op {crash_at}: recovered epoch {epoch} beyond the workload"
    );
    // Whole-transaction prefix, matching the uncrashed control exactly.
    assert_matches_control(&recovered, epoch as usize);
    (acked, epoch)
}

/// One fault-free run to learn the operation budget the sweeps cover.
fn fault_free_op_count() -> u64 {
    let fs = FaultStorage::new();
    let entry = plain_entry("default");
    entry
        .attach_durability(Arc::new(fs.clone()), SNAP, WAL)
        .unwrap();
    let acked = drive(&entry, &workload());
    assert_eq!(
        acked,
        workload().len(),
        "the fault-free run must ack everything"
    );
    fs.op_count()
}

fn sweep(keep_unsynced: usize) {
    let total_ops = fault_free_op_count();
    assert!(
        total_ops > 20,
        "the workload performs real I/O ({total_ops} ops)"
    );
    let mut lossless = 0usize;
    for crash_at in 0..total_ops {
        let (acked, epoch) = crash_and_recover(crash_at, keep_unsynced);
        if epoch == acked as u64 {
            lossless += 1;
        }
    }
    // Sanity on the sweep itself: in the common case recovery lands
    // exactly on the acked prefix (the >= in crash_and_recover allows a
    // fully-durable unacked commit to survive, but that is the rare
    // shape, not the rule).
    assert!(
        lossless * 2 > total_ops as usize,
        "suspicious sweep: only {lossless}/{total_ops} crashes recovered to the acked epoch"
    );
}

/// The quick sweep: every crash point, page cache lost at reboot.
#[test]
fn every_crash_point_recovers_the_acked_prefix() {
    sweep(0);
}

/// The exhaustive soak variant: every crash point × every reboot shape
/// (all unsynced bytes lost / one stray byte survives / everything
/// happened to land). Run by the nightly workflow via `--ignored`.
#[test]
#[ignore = "exhaustive crash sweep; covered nightly by the soak job"]
fn exhaustive_crash_sweep_over_reboot_shapes() {
    for keep_unsynced in [0, 1, usize::MAX] {
        sweep(keep_unsynced);
    }
}

/// Transient storage failures (one ENOSPC, or one short write tearing a
/// record) must not lose anything either: the failed commit is refused,
/// a retry lands it, and recovery still matches the control. Sweeps the
/// failure over every post-attach operation.
#[test]
fn transient_failures_and_short_writes_never_lose_acked_commits() {
    // Learn where attach ends so the sweep targets the commit path.
    let fs = FaultStorage::new();
    let entry = plain_entry("default");
    entry
        .attach_durability(Arc::new(fs.clone()), SNAP, WAL)
        .unwrap();
    let attach_ops = fs.op_count();
    drive(&entry, &workload());
    let total_ops = fs.op_count();
    drop(entry);

    for fail_op in attach_ops..total_ops {
        for plan in [
            FaultPlan::default().fail_at(fail_op, std::io::ErrorKind::StorageFull),
            FaultPlan::default().short_write_at(fail_op),
        ] {
            let fs = FaultStorage::new();
            let entry = plain_entry("default");
            entry
                .attach_durability(Arc::new(fs.clone()), SNAP, WAL)
                .unwrap();
            fs.set_plan(plan);
            let mut acked = 0usize;
            for tx in &workload() {
                for &(s, d, l, del) in tx {
                    if del {
                        entry.del_edge(s, d, l).unwrap();
                    } else {
                        entry.add_edge(s, d, l).unwrap();
                    }
                }
                match entry.try_commit() {
                    Ok(_) => acked += 1,
                    Err(_) => {
                        // The injected failure is transient and the WAL
                        // repairs its tail, so one retry must succeed —
                        // with the same pending delta, restored intact.
                        entry.try_commit().unwrap_or_else(|e| {
                            panic!("retry after transient failure at op {fail_op}: {e}")
                        });
                        acked += 1;
                    }
                }
            }
            assert_eq!(acked, workload().len());
            drop(entry);
            fs.reboot(0);
            let (recovered, _) =
                DatasetEntry::recover("default", Arc::new(fs.clone()), SNAP, WAL, 1).unwrap();
            assert_matches_control(&recovered, workload().len());
        }
    }
}

/// End to end over the wire: when the disk dies under a live server,
/// every later COMMIT is refused with a typed error (never a silent
/// in-memory-only apply), reads keep answering, and a restart recovers
/// exactly the acked commits.
#[test]
fn a_dead_disk_refuses_commits_and_a_restart_recovers_the_acked_state() {
    let fs = FaultStorage::new();
    let registry = Arc::new(DatasetRegistry::new());
    let entry = plain_entry("default");
    entry
        .attach_durability(Arc::new(fs.clone()), SNAP, WAL)
        .unwrap();
    registry.insert(entry);
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Two commits acked while the disk is healthy.
    client.add_edge("default", 8, 9, 0).unwrap();
    let first = client.commit("default").unwrap();
    assert_eq!(first.epoch, 1);
    client.add_edge("default", 9, 10, 1).unwrap();
    assert_eq!(client.commit("default").unwrap().epoch, 2);

    // The disk dies. The next COMMIT must come back as a typed error.
    fs.set_plan(FaultPlan::default().crash_after(fs.op_count()));
    client.add_edge("default", 10, 11, 2).unwrap();
    let err = client.commit("default").unwrap_err();
    assert!(
        err.to_string().contains("not durable"),
        "commit on a dead disk: {err}"
    );
    // And it stays refused — the WAL is poisoned, not silently skipped.
    let err = client.commit("default").unwrap_err();
    assert!(err.to_string().contains("poisoned"), "{err}");
    // Reads do not need the disk.
    let reply = client
        .estimate("default", &templates::path(2, &[0, 1]))
        .unwrap();
    assert!(reply.value.is_some());
    drop(client);
    server.shutdown();

    // "Restart": reboot the storage and recover. Only the two acked
    // commits exist; the refused one left no trace.
    fs.reboot(0);
    let (recovered, report) =
        DatasetEntry::recover("default", Arc::new(fs.clone()), SNAP, WAL, 1).unwrap();
    assert_eq!(recovered.epoch(), 2);
    assert_eq!(report.replayed_commits, 2);
    let g = recovered.materialized_graph();
    assert!(g.has_edge(8, 9, 0) && g.has_edge(9, 10, 1));
    assert!(!g.has_edge(10, 11, 2), "an unacked commit half-applied");
}

// ---------------------------------------------------------------------
// The real thing: a separate server process killed with SIGKILL.
// ---------------------------------------------------------------------

/// Read the child's stdout until the serving banner appears; return the
/// bound address and the boot epoch it printed.
fn wait_for_banner(stdout: &mut impl BufRead) -> (String, u64) {
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("read server stdout");
        assert!(n > 0, "server exited before printing its banner");
        if line.starts_with("serving `default`") {
            let addr = line
                .split(" on ")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next())
                .expect("banner carries the bound address")
                .to_string();
            let epoch = line
                .split("epoch ")
                .nth(1)
                .and_then(|rest| rest.split(')').next())
                .and_then(|e| e.parse().ok())
                .expect("banner carries the epoch");
            return (addr, epoch);
        }
    }
}

/// Kill a real `cegcli serve --data-dir` process with SIGKILL between
/// acked commits, restart it with the *same command line*, and verify
/// the recovered server continues at the acked epoch with matching
/// estimates. This is the one test no fault model can fake.
#[test]
fn kill_dash_nine_loses_no_acked_commit() {
    use std::process::{Command, Stdio};
    let dir = std::env::temp_dir().join(format!("ceg-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("g.edges");
    cegraph::graph::io::save_graph(&base_graph(), &graph_path).unwrap();
    let data_dir = dir.join("data");
    let serve_args = [
        "serve",
        "127.0.0.1:0",
        graph_path.to_str().unwrap(),
        "--data-dir",
        data_dir.to_str().unwrap(),
    ];
    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_cegcli"))
            .args(serve_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn cegcli serve")
    };

    let mut child = spawn();
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let (addr, epoch) = wait_for_banner(&mut stdout);
    assert_eq!(epoch, 0, "cold boot starts at epoch 0");

    let mut client = Client::connect(&addr).unwrap();
    let mut last_acked = 0;
    for tx in &workload() {
        for &(s, d, l, del) in tx {
            if del {
                client.del_edge("default", s, d, l).unwrap();
            } else {
                client.add_edge("default", s, d, l).unwrap();
            }
        }
        last_acked = client.commit("default").unwrap().epoch;
    }
    assert_eq!(last_acked, workload().len() as u64);
    let before = client
        .estimate("default", &templates::path(2, &[0, 1]))
        .unwrap()
        .value;
    drop(client);

    // SIGKILL: no drain, no final snapshot, no flush beyond what each
    // acked COMMIT already fsynced.
    child.kill().unwrap();
    child.wait().unwrap();

    // Same command line again: the data dir is authoritative now.
    let mut child = spawn();
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let (addr, epoch) = wait_for_banner(&mut stdout);
    assert_eq!(
        epoch, last_acked,
        "restarted server must resume at the last acked epoch"
    );
    let mut client = Client::connect(&addr).unwrap();
    let after = client
        .estimate("default", &templates::path(2, &[0, 1]))
        .unwrap()
        .value;
    assert_eq!(before, after, "estimate changed across kill -9 + recovery");
    // A commit after recovery continues the epoch sequence.
    client.add_edge("default", 5, 6, 0).unwrap();
    assert_eq!(client.commit("default").unwrap().epoch, last_acked + 1);
    client.shutdown_server().unwrap();
    drop(client);
    let status = child.wait().unwrap();
    assert!(status.success(), "drained server exits 0: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
