//! Integration tests for the estimation service: a real server on an
//! ephemeral port, concurrent clients, and observable cache behavior.

use std::sync::Arc;
use std::thread;

use cegraph::service::{Client, DatasetEntry, DatasetRegistry, QueryReply, Server, ServerConfig};
use cegraph::workload::{Dataset, Workload, WorkloadQuery};

fn start_server(workers: usize) -> (Server, Vec<WorkloadQuery>) {
    let graph = Dataset::Hetionet.generate(4);
    let queries = Workload::Job.build(&graph, 1, 4);
    assert!(!queries.is_empty());
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert(DatasetEntry::new(
        "default",
        graph,
        cegraph::catalog::MarkovTable::empty(2),
    ));
    let config = ServerConfig {
        workers,
        batch_max: 16,
        cache_capacity: 1024,
        ..ServerConfig::default()
    };
    let server = Server::start(registry, "127.0.0.1:0", config).expect("bind ephemeral port");
    (server, queries)
}

/// ≥ 4 concurrent client threads fire the same workload; every thread
/// must observe identical estimates (whether computed or cache-served),
/// and afterwards a repeated query must be a verified cache hit.
#[test]
fn concurrent_clients_get_identical_estimates_and_cache_hits() {
    let (server, queries) = start_server(4);
    let addr = server.local_addr();

    const CLIENTS: usize = 5;
    let per_thread: Vec<Vec<Option<f64>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    queries
                        .iter()
                        .map(|wq| client.estimate("default", &wq.query).expect("estimate"))
                        .map(|reply| reply.value)
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for other in &per_thread[1..] {
        assert_eq!(&per_thread[0], other, "all clients must agree");
    }
    assert!(per_thread[0].iter().all(|v| v.is_some()));

    // Every query has been answered at least once, so a fresh client
    // repeating one must hit the LRU cache — observable through the
    // protocol's cache flag and the server-wide hit counter.
    let mut client = Client::connect(addr).expect("connect");
    let before = client.stats().expect("stats");
    let reply = client
        .estimate("default", &queries[0].query)
        .expect("estimate");
    assert!(reply.cached, "repeated query must be served from cache");
    assert_eq!(reply.value, per_thread[0][0]);
    assert!(reply.hits > before.cache_hits);

    // Every lookup is accounted for. Concurrent first arrivals of the
    // same query may each miss (both compute the same deterministic
    // value), so misses is at least — not exactly — the distinct-query
    // count; everything else must have hit.
    let stats = client.stats().expect("stats");
    let total_lookups = (CLIENTS * queries.len()) as u64 + 1;
    assert_eq!(stats.cache_hits + stats.cache_misses, total_lookups);
    assert!(stats.cache_misses >= queries.len() as u64);
    assert!(stats.cache_hits >= 1);
    server.shutdown();
}

/// The cache key is the renaming-invariant canonical hash: a client
/// sending a variable-renamed version of an already-served query gets a
/// cache hit with the identical estimate.
#[test]
fn isomorphic_queries_share_cache_entries() {
    let (server, queries) = start_server(2);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let wq = &queries[0];
    let first = client.estimate("default", &wq.query).expect("estimate");
    assert!(!first.cached);

    // Reverse the variable numbering: same pattern, different labels on
    // the variables.
    let n = wq.query.num_vars();
    let renamed = {
        use cegraph::query::{QueryEdge, QueryGraph};
        let edges = wq
            .query
            .edges()
            .iter()
            .map(|e| QueryEdge::new(n - 1 - e.src, n - 1 - e.dst, e.label))
            .collect();
        QueryGraph::new(n, edges)
    };
    assert!(renamed.is_isomorphic(&wq.query));
    let second = client.estimate("default", &renamed).expect("estimate");
    assert!(second.cached, "isomorphic rename must hit the cache");
    assert_eq!(second.value, first.value);
    server.shutdown();
}

/// Protocol-level errors (unknown dataset, malformed lines) come back as
/// `ERR` responses without killing the connection.
#[test]
fn errors_are_reported_and_connection_survives() {
    use std::io::{BufRead, BufReader, Write};

    let (server, queries) = start_server(2);
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let err = client.estimate("no-such-dataset", &queries[0].query);
    assert!(err.is_err());
    // Same connection still works afterwards.
    client.ping().expect("ping after error");
    let ok = client.estimate("default", &queries[0].query).expect("ok");
    assert!(ok.value.is_some());

    // Raw socket with a malformed line: one ERR line back, then normal
    // service resumes on the same connection.
    let stream = std::net::TcpStream::connect(addr).expect("connect raw");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "ESTIMATE default 3 99 0 1 0").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR "), "got: {line}");
    // Every reply line carries the request's `id=<n>` tail.
    assert!(line
        .trim_end()
        .rsplit(' ')
        .next()
        .unwrap()
        .starts_with("id="));
    writeln!(writer, "PING").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.trim_end().starts_with("PONG id="), "got: {line}");

    // A request line with no newline cannot grow the server's buffer
    // without bound: past the cap the server refuses and disconnects.
    let stream = std::net::TcpStream::connect(addr).expect("connect raw");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&vec![b'A'; 80 * 1024]).expect("write");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.trim_end().starts_with("ERR request line too long"),
        "got: {line}"
    );
    server.shutdown();
}

/// The tentpole acceptance check: `EXPLAIN_ESTIMATE` answers exactly
/// like `ESTIMATE` while naming the work. Cold, the breakdown shows the
/// catalog fill and nonzero kernel intersection counters; warm, it shows
/// a cache hit and no kernel work at all.
#[test]
fn explain_estimate_traces_cold_and_warm_paths() {
    // The cyclic workload at hop depth 3 is the interesting case: its
    // 3-edge sub-patterns include shared-destination shapes, so the
    // catalog fill exercises the kernel's intersection loop (a chain-only
    // fill never intersects — every level extends from one list).
    let graph = Dataset::Hetionet.generate(4);
    let queries = Workload::Cyclic.build(&graph, 1, 4);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert(DatasetEntry::new(
        "default",
        graph,
        cegraph::catalog::MarkovTable::empty(3),
    ));
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Cold pass over the workload: every explain computes (and caches)
    // its estimate and names every stage of the miss path.
    let mut intersecting: Option<(usize, u64, Option<f64>)> = None;
    let mut last_id = 0;
    for (i, wq) in queries.iter().enumerate() {
        let cold = client
            .explain("default", &wq.query, None)
            .expect("cold explain");
        let QueryReply::Estimate(est) = &cold.reply else {
            panic!(
                "cold explain must produce an estimate, got {:?}",
                cold.reply
            );
        };
        assert!(!est.cached, "query {i} unexpectedly cached");
        let id = cold.id.expect("reply header must carry the request id");
        assert!(id > last_id, "request ids are monotone");
        last_id = id;
        for span in [
            "queue_wait",
            "lock_wait",
            "cache_probe",
            "catalog_fill",
            "estimate",
        ] {
            assert!(
                cold.span(span).is_some(),
                "cold explain {i} lacks span `{span}`: {:?}",
                cold.spans
            );
        }
        assert_eq!(cold.counter("cache_cold_miss"), Some(1));
        assert_eq!(cold.counter("cache_hit"), Some(0));
        assert!(cold.counter("catalog_patterns_counted").unwrap() > 0);
        assert!(cold.counter("kernel_candidates").unwrap() > 0);
        // The three intersection-path counters are pinned names: EXPLAIN
        // output must always carry all of them, split by strategy.
        let intersections = cold.counter("kernel_intersect_merge").unwrap()
            + cold.counter("kernel_intersect_gallop").unwrap()
            + cold.counter("kernel_intersect_bitset").unwrap();
        if intersections > 0 && intersecting.is_none() {
            intersecting = Some((i, intersections, est.value));
        }
    }
    let (idx, intersections, cold_value) =
        intersecting.expect("some cyclic query must exercise the intersection loop");
    assert!(intersections > 0);

    // A plain ESTIMATE of the same query returns the identical value —
    // explain changes what is reported, never what is computed.
    let wq = &queries[idx];
    let plain = client.estimate("default", &wq.query).expect("estimate");
    assert!(plain.cached);
    assert_eq!(plain.value, cold_value);

    // Warm: a cache hit, and none of the fill/kernel machinery ran.
    let warm = client
        .explain("default", &wq.query, None)
        .expect("warm explain");
    let QueryReply::Estimate(warm_est) = &warm.reply else {
        panic!("warm explain must produce an estimate");
    };
    assert!(warm_est.cached);
    assert_eq!(warm_est.value, cold_value);
    assert_eq!(warm.counter("cache_hit"), Some(1));
    assert_eq!(warm.counter("cache_cold_miss"), Some(0));
    for span in ["catalog_fill", "estimate"] {
        assert!(
            warm.span(span).is_none(),
            "warm explain must not run `{span}`: {:?}",
            warm.spans
        );
    }
    assert_eq!(warm.counter("kernel_candidates"), None);
    server.shutdown();
}

/// With the slow-query threshold at zero every computed estimate lands
/// in the ring-buffer slow-query log, tagged with the request id the
/// reply carried; cache hits stay out of it. `METRICS_PROM` serves a
/// structurally valid exposition alongside.
#[test]
fn slowlog_records_misses_and_prom_exposition_is_served() {
    let graph = Dataset::Hetionet.generate(4);
    let queries = Workload::Job.build(&graph, 1, 4);
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert(DatasetEntry::new(
        "default",
        graph,
        cegraph::catalog::MarkovTable::empty(2),
    ));
    let config = ServerConfig {
        workers: 2,
        slow_query_threshold_ms: 0,
        ..ServerConfig::default()
    };
    let server = Server::start(registry, "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    assert!(client.slowlog(None).expect("slowlog").is_empty());
    let wq = &queries[0];
    let first = client.estimate("default", &wq.query).expect("estimate");
    let entries = client.slowlog(None).expect("slowlog");
    assert_eq!(entries.len(), 1, "one computed estimate, one entry");
    assert_eq!(entries[0].dataset, "default");
    assert!(entries[0].id > 0, "entry carries the request id");
    assert!(!entries[0].query.is_empty());

    // A cache hit did not cause the latency, so it is not logged.
    let again = client.estimate("default", &wq.query).expect("estimate");
    assert!(again.cached);
    assert_eq!(again.value, first.value);
    assert_eq!(client.slowlog(None).expect("slowlog").len(), 1);

    // Newest first: a second distinct query leads the log.
    if queries.len() > 1 {
        client
            .estimate("default", &queries[1].query)
            .expect("estimate");
        let entries = client.slowlog(None).expect("slowlog");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].id > entries[1].id, "newest first");
        assert_eq!(client.slowlog(Some(1)).expect("slowlog").len(), 1);
    }

    // The Prometheus exposition is non-trivial and structurally sound:
    // every `# TYPE`d family (including the per-dataset gauges) has at
    // least one sample, and the estimate-latency histogram recorded the
    // requests above.
    let lines = client.metrics_prom().expect("metrics_prom");
    let families: Vec<&str> = lines
        .iter()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for family in [
        "ceg_requests_total",
        "ceg_cache_hits_total",
        "ceg_dataset_epoch",
        "ceg_latency_estimate_micros",
    ] {
        assert!(families.contains(&family), "missing family `{family}`");
    }
    assert!(lines
        .iter()
        .any(|l| l.starts_with("ceg_dataset_epoch{dataset=\"default\"}")));
    let count = lines
        .iter()
        .find(|l| l.starts_with("ceg_latency_estimate_micros_count"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert!(count >= 2, "estimate latency histogram must have samples");
    server.shutdown();
}
