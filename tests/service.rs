//! Integration tests for the estimation service: a real server on an
//! ephemeral port, concurrent clients, and observable cache behavior.

use std::sync::Arc;
use std::thread;

use cegraph::service::{Client, DatasetEntry, DatasetRegistry, Server, ServerConfig};
use cegraph::workload::{Dataset, Workload, WorkloadQuery};

fn start_server(workers: usize) -> (Server, Vec<WorkloadQuery>) {
    let graph = Dataset::Hetionet.generate(4);
    let queries = Workload::Job.build(&graph, 1, 4);
    assert!(!queries.is_empty());
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert(DatasetEntry::new(
        "default",
        graph,
        cegraph::catalog::MarkovTable::empty(2),
    ));
    let config = ServerConfig {
        workers,
        batch_max: 16,
        cache_capacity: 1024,
        ..ServerConfig::default()
    };
    let server = Server::start(registry, "127.0.0.1:0", config).expect("bind ephemeral port");
    (server, queries)
}

/// ≥ 4 concurrent client threads fire the same workload; every thread
/// must observe identical estimates (whether computed or cache-served),
/// and afterwards a repeated query must be a verified cache hit.
#[test]
fn concurrent_clients_get_identical_estimates_and_cache_hits() {
    let (server, queries) = start_server(4);
    let addr = server.local_addr();

    const CLIENTS: usize = 5;
    let per_thread: Vec<Vec<Option<f64>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    queries
                        .iter()
                        .map(|wq| client.estimate("default", &wq.query).expect("estimate"))
                        .map(|reply| reply.value)
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for other in &per_thread[1..] {
        assert_eq!(&per_thread[0], other, "all clients must agree");
    }
    assert!(per_thread[0].iter().all(|v| v.is_some()));

    // Every query has been answered at least once, so a fresh client
    // repeating one must hit the LRU cache — observable through the
    // protocol's cache flag and the server-wide hit counter.
    let mut client = Client::connect(addr).expect("connect");
    let before = client.stats().expect("stats");
    let reply = client
        .estimate("default", &queries[0].query)
        .expect("estimate");
    assert!(reply.cached, "repeated query must be served from cache");
    assert_eq!(reply.value, per_thread[0][0]);
    assert!(reply.hits > before.cache_hits);

    // Every lookup is accounted for. Concurrent first arrivals of the
    // same query may each miss (both compute the same deterministic
    // value), so misses is at least — not exactly — the distinct-query
    // count; everything else must have hit.
    let stats = client.stats().expect("stats");
    let total_lookups = (CLIENTS * queries.len()) as u64 + 1;
    assert_eq!(stats.cache_hits + stats.cache_misses, total_lookups);
    assert!(stats.cache_misses >= queries.len() as u64);
    assert!(stats.cache_hits >= 1);
    server.shutdown();
}

/// The cache key is the renaming-invariant canonical hash: a client
/// sending a variable-renamed version of an already-served query gets a
/// cache hit with the identical estimate.
#[test]
fn isomorphic_queries_share_cache_entries() {
    let (server, queries) = start_server(2);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let wq = &queries[0];
    let first = client.estimate("default", &wq.query).expect("estimate");
    assert!(!first.cached);

    // Reverse the variable numbering: same pattern, different labels on
    // the variables.
    let n = wq.query.num_vars();
    let renamed = {
        use cegraph::query::{QueryEdge, QueryGraph};
        let edges = wq
            .query
            .edges()
            .iter()
            .map(|e| QueryEdge::new(n - 1 - e.src, n - 1 - e.dst, e.label))
            .collect();
        QueryGraph::new(n, edges)
    };
    assert!(renamed.is_isomorphic(&wq.query));
    let second = client.estimate("default", &renamed).expect("estimate");
    assert!(second.cached, "isomorphic rename must hit the cache");
    assert_eq!(second.value, first.value);
    server.shutdown();
}

/// Protocol-level errors (unknown dataset, malformed lines) come back as
/// `ERR` responses without killing the connection.
#[test]
fn errors_are_reported_and_connection_survives() {
    use std::io::{BufRead, BufReader, Write};

    let (server, queries) = start_server(2);
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let err = client.estimate("no-such-dataset", &queries[0].query);
    assert!(err.is_err());
    // Same connection still works afterwards.
    client.ping().expect("ping after error");
    let ok = client.estimate("default", &queries[0].query).expect("ok");
    assert!(ok.value.is_some());

    // Raw socket with a malformed line: one ERR line back, then normal
    // service resumes on the same connection.
    let stream = std::net::TcpStream::connect(addr).expect("connect raw");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "ESTIMATE default 3 99 0 1 0").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR "), "got: {line}");
    writeln!(writer, "PING").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim_end(), "PONG");

    // A request line with no newline cannot grow the server's buffer
    // without bound: past the cap the server refuses and disconnects.
    let stream = std::net::TcpStream::connect(addr).expect("connect raw");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&vec![b'A'; 80 * 1024]).expect("write");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim_end(), "ERR request line too long");
    server.shutdown();
}
