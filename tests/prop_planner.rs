//! Property tests of the planner: any optimizer variant under any
//! estimator must execute to the same (correct) output, and the DP
//! optimizer is cost-optimal within its search space.

use cegraph::estimators::CardinalityEstimator;
use cegraph::exec::count;
use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::planner::{execute_plan, optimize, optimize_greedy, optimize_left_deep};
use cegraph::query::{templates, QueryGraph};
use proptest::prelude::*;

const LABELS: u16 = 3;

fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
    prop::collection::vec((0u32..12, 0u32..12, 0u16..LABELS), 3..40).prop_map(|edges| {
        let mut b = GraphBuilder::with_labels(12, LABELS as usize);
        for (s, d, l) in edges {
            b.add_edge(s, d, l);
        }
        b.build()
    })
}

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    let l = 0u16..LABELS;
    prop_oneof![
        prop::collection::vec(l.clone(), 2..=4).prop_map(|ls| templates::path(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 2..=4).prop_map(|ls| templates::star(ls.len(), &ls)),
        prop::collection::vec(l, 3..=4).prop_map(|ls| templates::cycle(ls.len(), &ls)),
    ]
}

/// An adversarial estimator: arbitrary positive values per subquery size.
struct Weird(Vec<f64>);
impl CardinalityEstimator for Weird {
    fn name(&self) -> String {
        "weird".into()
    }
    fn estimate(&mut self, q: &QueryGraph) -> Option<f64> {
        Some(self.0[q.num_edges() % self.0.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the estimator says, every optimizer variant's plan
    /// executes to the true result size.
    #[test]
    fn all_plans_compute_the_true_output(
        (g, q) in (arb_graph(), arb_query()),
        weights in prop::collection::vec(0.5f64..1000.0, 5..=5),
    ) {
        let truth = count(&g, &q);
        let budget = 1 << 22;
        let mut est = Weird(weights);
        let plans = [
            optimize(&q, &mut est).0,
            optimize_left_deep(&q, &mut est).0,
            optimize_greedy(&q, &mut est).0,
        ];
        for plan in &plans {
            prop_assert_eq!(plan.mask(), q.full_mask());
            if let Some(stats) = execute_plan(&g, &q, plan, budget) {
                prop_assert_eq!(stats.output, truth, "plan {}", plan.render());
            }
        }
    }

    /// The bushy DP never reports a higher cost than the restricted
    /// variants under the same estimates.
    #[test]
    fn dp_cost_dominates(
        q in arb_query(),
        weights in prop::collection::vec(0.5f64..1000.0, 5..=5),
    ) {
        let mut est = Weird(weights);
        let (_, dp) = optimize(&q, &mut est);
        let (_, ld) = optimize_left_deep(&q, &mut est);
        let (_, greedy) = optimize_greedy(&q, &mut est);
        prop_assert!(dp <= ld + 1e-6, "dp {dp} > left-deep {ld}");
        prop_assert!(dp <= greedy + 1e-6, "dp {dp} > greedy {greedy}");
    }
}
