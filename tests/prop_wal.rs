//! Property tests of the `.cegwal` write-ahead log codec, mirroring
//! `tests/prop_snapshot.rs` for the WAL:
//!
//! 1. **Round-trip** — appending random transactions and scanning the
//!    bytes back recovers exactly the transactions that were appended,
//!    in order, with `valid_len` equal to the file length and no
//!    diagnosis.
//! 2. **Truncation** — *every* strict prefix of a valid log scans to a
//!    valid whole-transaction prefix of the original sequence, never an
//!    error, never a partial transaction.
//! 3. **Bit rot** — flipping any single bit of the record area yields
//!    either the original sequence (the flip landed beyond `valid_len`
//!    semantics: impossible here, the file is fully valid) or a shorter
//!    whole-transaction prefix; a flipped header is refused outright as
//!    "not a WAL" / unsupported version, never misread.

use cegraph::graph::vfs::{FaultStorage, Storage};
use cegraph::graph::wal::{scan_bytes, WalOp, WalTx, WalWriter, WAL_HEADER_LEN};
use proptest::prelude::*;
use std::path::Path;

const WAL: &str = "/w/log.cegwal";

fn arb_op() -> impl Strategy<Value = WalOp> {
    (0u32..64, 0u32..64, 0u16..8, (0u8..2).prop_map(|b| b == 1)).prop_map(
        |(src, dst, label, del)| WalOp {
            src,
            dst,
            label,
            del,
        },
    )
}

/// Random transactions with strictly increasing epochs (the invariant
/// the commit path maintains; the scanner enforces it).
fn arb_txs() -> impl Strategy<Value = Vec<WalTx>> {
    (
        prop::collection::vec(prop::collection::vec(arb_op(), 0..6), 1..8),
        1u64..20,
        prop::collection::vec(1u64..4, 8),
    )
        .prop_map(|(ops_per_tx, first_epoch, gaps)| {
            let mut epoch = first_epoch;
            ops_per_tx
                .into_iter()
                .zip(gaps.into_iter().chain(std::iter::repeat(1)))
                .map(|(ops, gap)| {
                    let tx = WalTx { epoch, ops };
                    epoch += gap;
                    tx
                })
                .collect()
        })
}

/// Write the transactions through the real writer and return the bytes
/// that would be on disk.
fn log_bytes(txs: &[WalTx]) -> Vec<u8> {
    let fs = FaultStorage::new();
    let path = Path::new(WAL);
    let (mut w, scan) = WalWriter::open(&fs, path).unwrap();
    assert!(scan.txs.is_empty());
    for tx in txs {
        w.append_tx(tx.epoch, &tx.ops).unwrap();
    }
    drop(w);
    fs.read(path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_recovers_exactly_what_was_appended(txs in arb_txs()) {
        let bytes = log_bytes(&txs);
        let scan = scan_bytes(&bytes).unwrap();
        prop_assert_eq!(&scan.txs, &txs);
        prop_assert_eq!(scan.valid_len, bytes.len() as u64);
        prop_assert!(scan.diagnosis.is_none(), "{:?}", scan.diagnosis);

        // And re-opening the same bytes through the writer appends
        // byte-identically: a second writer continues the log, it does
        // not rewrite it.
        let fs = FaultStorage::new();
        fs.install(Path::new(WAL), bytes.clone());
        let (w, scan2) = WalWriter::open(&fs, Path::new(WAL)).unwrap();
        prop_assert_eq!(scan2.txs, txs);
        prop_assert_eq!(w.len(), bytes.len() as u64);
        prop_assert_eq!(fs.read(Path::new(WAL)).unwrap(), bytes);
    }

    #[test]
    fn every_truncation_scans_to_a_whole_transaction_prefix(
        txs in arb_txs(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = log_bytes(&txs);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len() - 1); // strict prefix
        let truncated = &bytes[..cut];
        if cut < WAL_HEADER_LEN as usize {
            // A torn header scans as an empty log flagged for
            // re-creation, or (length 0 .. header) is still "torn".
            let scan = scan_bytes(truncated).unwrap();
            prop_assert_eq!(scan.valid_len, 0);
            prop_assert!(scan.txs.is_empty());
            prop_assert!(scan.diagnosis.is_some());
        } else {
            let scan = scan_bytes(truncated).unwrap();
            // Whole-transaction prefix of the original, nothing else.
            prop_assert!(scan.txs.len() <= txs.len());
            prop_assert_eq!(&scan.txs[..], &txs[..scan.txs.len()]);
            prop_assert!(scan.valid_len <= cut as u64);
            // Anything cut mid-record must be diagnosed.
            if (scan.valid_len as usize) < cut {
                prop_assert!(scan.diagnosis.is_some());
            }
            // Recovery truncates to valid_len; that image is clean.
            let clean = scan_bytes(&truncated[..scan.valid_len as usize]).unwrap();
            prop_assert_eq!(clean.txs, scan.txs);
            prop_assert!(clean.diagnosis.is_none());
        }
    }

    #[test]
    fn every_bit_flip_yields_a_valid_prefix_or_a_refusal(
        txs in arb_txs(),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = log_bytes(&txs);
        let idx = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        let mut rotted = bytes.clone();
        rotted[idx] ^= 1 << bit;
        if idx < WAL_HEADER_LEN as usize {
            // Magic or version damage: refused as not-a-WAL, never
            // misinterpreted. (A flip inside the version field could in
            // principle still be version 1 — it cannot, a flip always
            // changes the u32.)
            prop_assert!(scan_bytes(&rotted).is_err());
        } else {
            // Record damage: the checksum (which covers the tag) stops
            // the scan at the flipped record, so the result is a whole-
            // transaction prefix of the original.
            let scan = scan_bytes(&rotted).unwrap();
            prop_assert!(scan.txs.len() <= txs.len());
            prop_assert_eq!(&scan.txs[..], &txs[..scan.txs.len()]);
            if scan.txs.len() < txs.len() {
                prop_assert!(scan.diagnosis.is_some(), "shortened scan must say why");
            }
        }
    }
}
