//! Differential kernel-equivalence suite for the intersection strategies
//! and the factorized counter.
//!
//! The counting kernel now has four ways to produce a candidate set —
//! adaptive (degree-stat crossover), forced merge, forced gallop, forced
//! bitset — and two ways to plan a counting query (the classic plan and
//! the factorized plan that folds pendant trees into closed-form
//! weights). All of them are answers to the same question, so on random
//! graphs with planted high-degree hubs (dense enough that the adaptive
//! crossover genuinely enables the bitset path) every combination must
//! agree exactly with the naive reference matcher — and every count must
//! be invariant under an arbitrary renumbering of the data vertices.

use cegraph::exec::count::CountPlan;
use cegraph::exec::{count_naive, IntersectStrategy, VarConstraints};
use cegraph::graph::{GraphBuilder, LabeledGraph, VertexRemap};
use cegraph::query::{QueryEdge, QueryGraph};
use proptest::prelude::*;

const LABELS: u16 = 2;
const VERTICES: u32 = 48;

/// Random graph with 1–2 planted hubs fanning out to 33+ distinct
/// targets (above the kernel's bitset degree crossover, so the adaptive
/// strategy actually takes the bitset path on these graphs) plus random
/// background edges.
fn arb_hub_graph() -> impl Strategy<Value = LabeledGraph> {
    let hubs = prop::collection::vec((0u32..VERTICES, 33usize..=44, 0u16..LABELS), 1..=2);
    let background = prop::collection::vec((0u32..VERTICES, 0u32..VERTICES, 0u16..LABELS), 0..70);
    (hubs, background).prop_map(|(hubs, background)| {
        let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
        for (hub, fan, label) in hubs {
            for t in 0..fan as u32 {
                b.add_edge(hub, (hub + 1 + t) % VERTICES, label);
            }
            // A few edges back into the hub so cycles through it close.
            for t in 0..4u32 {
                b.add_edge((hub + 7 * (t + 1)) % VERTICES, hub, label);
            }
        }
        for (s, d, l) in background {
            b.add_edge(s, d, l);
        }
        b.build()
    })
}

/// Cyclic and acyclic query shapes: pure cycles, cycles with pendant
/// paths hanging off one cycle variable (the factorized counter's
/// target shape), short paths/stars, and free-form edge soups.
fn arb_query() -> impl Strategy<Value = QueryGraph> {
    let l = 0u16..LABELS;
    prop_oneof![
        // Pure k-cycle, k = 3..=6.
        prop::collection::vec(l.clone(), 3..=6).prop_map(|ls| {
            let k = ls.len() as u8;
            let edges = (0..k)
                .map(|i| QueryEdge::new(i, (i + 1) % k, ls[i as usize]))
                .collect();
            QueryGraph::new(k, edges)
        }),
        // k-cycle with a pendant path of 1–2 edges off variable 0: an
        // acyclic sub-structure on a cyclic core, which the factorized
        // plan folds into weights instead of enumerating.
        (
            prop::collection::vec(l.clone(), 3..=4),
            prop::collection::vec(l.clone(), 1..=2),
        )
            .prop_map(|(cycle, tail)| {
                let k = cycle.len() as u8;
                let mut edges: Vec<QueryEdge> = (0..k)
                    .map(|i| QueryEdge::new(i, (i + 1) % k, cycle[i as usize]))
                    .collect();
                let mut prev = 0u8;
                for (j, &lab) in tail.iter().enumerate() {
                    let next = k + j as u8;
                    edges.push(QueryEdge::new(prev, next, lab));
                    prev = next;
                }
                QueryGraph::new(k + tail.len() as u8, edges)
            }),
        // Short path.
        prop::collection::vec(l.clone(), 1..=4).prop_map(|ls| {
            let edges = ls
                .iter()
                .enumerate()
                .map(|(i, &lab)| QueryEdge::new(i as u8, i as u8 + 1, lab))
                .collect();
            QueryGraph::new(ls.len() as u8 + 1, edges)
        }),
        // Small star (kept small: the naive reference enumerates the
        // full degree product the optimized kernel shortcuts).
        prop::collection::vec(l.clone(), 2..=3).prop_map(|ls| {
            let edges = ls
                .iter()
                .enumerate()
                .map(|(i, &lab)| QueryEdge::new(0, i as u8 + 1, lab))
                .collect();
            QueryGraph::new(ls.len() as u8 + 1, edges)
        }),
        // Free-form: up to 4 edges over 4 variables (self-loops,
        // parallel edges and disconnected pieces included).
        prop::collection::vec((0u8..4, 0u8..4, l), 1..=4).prop_map(|es| {
            let edges = es
                .into_iter()
                .map(|(s, d, lab)| QueryEdge::new(s, d, lab))
                .collect();
            QueryGraph::new(4, edges)
        }),
    ]
}

const STRATEGIES: [IntersectStrategy; 4] = [
    IntersectStrategy::Adaptive,
    IntersectStrategy::Merge,
    IntersectStrategy::Gallop,
    IntersectStrategy::Bitset,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every intersection strategy, through both the factorized counting
    /// plan and the classic (unfactorized) plan, returns exactly the
    /// naive reference count.
    #[test]
    fn all_strategies_and_plans_agree_with_naive(
        g in arb_hub_graph(),
        q in arb_query(),
    ) {
        let cons = VarConstraints::none(q.num_vars());
        let expected = count_naive(&g, &q, &cons);
        for strategy in STRATEGIES {
            let factorized = CountPlan::counting_with_strategy(&g, &q, &cons, strategy).count();
            prop_assert_eq!(
                factorized, expected,
                "factorized plan under {:?} diverged on {}", strategy, q
            );
            let classic = CountPlan::with_strategy(&g, &q, &cons, strategy).count();
            prop_assert_eq!(
                classic, expected,
                "classic plan under {:?} diverged on {}", strategy, q
            );
        }
    }

    /// Counts are invariant under an arbitrary permutation of the data
    /// vertex ids — the soundness contract behind degree-aware
    /// renumbering (which is just one particular permutation).
    #[test]
    fn counts_invariant_under_vertex_renumbering(
        g in arb_hub_graph(),
        q in arb_query(),
        // A random permutation of 0..VERTICES: argsort of random keys
        // (ties broken by index keep it a bijection).
        perm in prop::collection::vec(0u32..u32::MAX, VERTICES as usize).prop_map(|keys| {
            let mut idx: Vec<u32> = (0..VERTICES).collect();
            idx.sort_by_key(|&i| (keys[i as usize], i));
            let mut perm = vec![0u32; VERTICES as usize];
            for (new, &old) in idx.iter().enumerate() {
                perm[old as usize] = new as u32;
            }
            perm
        }),
    ) {
        let cons = VarConstraints::none(q.num_vars());
        let expected = count_naive(&g, &q, &cons);

        // A uniformly random permutation...
        let mut pb = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
        for e in g.all_edges() {
            pb.add_edge(perm[e.src as usize], perm[e.dst as usize], e.label);
        }
        let permuted = pb.build();

        // ...and the deterministic hub-clustering one the service uses.
        let remap = VertexRemap::degree_descending(&g);
        let renumbered = remap.apply(&g);

        for strategy in [IntersectStrategy::Adaptive, IntersectStrategy::Bitset] {
            prop_assert_eq!(
                CountPlan::counting_with_strategy(&permuted, &q, &cons, strategy).count(),
                expected,
                "random permutation changed the count under {:?} on {}", strategy, q
            );
            prop_assert_eq!(
                CountPlan::counting_with_strategy(&renumbered, &q, &cons, strategy).count(),
                expected,
                "degree renumbering changed the count under {:?} on {}", strategy, q
            );
        }
        // Externalizing undoes the renumbering exactly.
        let back = remap.externalize(&renumbered);
        prop_assert_eq!(count_naive(&back, &q, &cons), expected);
    }
}
