//! Concurrency stress test: 8 client threads fire a seeded random mix of
//! ESTIMATE / ESTIMATE_BATCH / ADD_EDGE / DEL_EDGE / COMMIT / SNAPSHOT at
//! one live server and assert the system-wide invariants that matter
//! under contention:
//!
//! 1. **Epoch monotonicity** — the epochs any single connection observes
//!    (in acks, commit outcomes and snapshot acks) never decrease,
//! 2. **No response interleaving corruption** — every reply parses as
//!    the typed response its request expects, batches answer exactly
//!    `n` ordered lines, and the connection survives the whole script,
//! 3. **Convergence** — after the dust settles (one final COMMIT), the
//!    live server's estimates equal a cold server loaded with the final
//!    committed graph, and every snapshot written along the way restores
//!    to a valid dataset at an epoch within the observed range.

use std::sync::Arc;

use cegraph::graph::{GraphBuilder, LabeledGraph};
use cegraph::query::{templates, QueryGraph};
use cegraph::service::{Client, DatasetEntry, DatasetRegistry, Engine, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 60;
const VERTICES: u32 = 16;
const LABELS: u16 = 3;

fn base_graph() -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(0xCE6_57E55);
    let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
    for _ in 0..48 {
        b.add_edge(
            rng.random_range(0..VERTICES),
            rng.random_range(0..VERTICES),
            rng.random_range(0..LABELS),
        );
    }
    b.build()
}

fn probe_queries() -> Vec<QueryGraph> {
    vec![
        templates::path(2, &[0, 1]),
        templates::path(2, &[1, 2]),
        templates::star(2, &[0, 2]),
        templates::path(3, &[0, 1, 2]),
        templates::cycle(3, &[0, 1, 2]),
    ]
}

#[test]
fn concurrent_mixed_workload_keeps_every_invariant() {
    let registry = Arc::new(DatasetRegistry::new());
    // A small rebase threshold so the stress crosses the overlay→rebase
    // boundary many times while threads race.
    let entry = registry.insert(
        DatasetEntry::new(
            "default",
            base_graph(),
            cegraph::catalog::MarkovTable::empty(2),
        )
        .with_rebase_threshold(4),
    );
    let server = Server::start(
        registry.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            batch_max: 8,
            cache_capacity: 512,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = probe_queries();

    let snapshot_paths: Vec<std::path::PathBuf> = (0..THREADS)
        .map(|t| {
            std::env::temp_dir().join(format!("ceg-stress-{}-{t}.cegsnap", std::process::id()))
        })
        .collect();

    std::thread::scope(|scope| {
        for (t, path) in snapshot_paths.iter().enumerate() {
            let queries = &queries;
            let snap_path = path.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64);
                let mut client = Client::connect(addr).expect("connect");
                // Invariant 1: epochs this connection observes only grow.
                let mut last_epoch = 0u64;
                let observe = |epoch: u64, last: &mut u64| {
                    assert!(
                        epoch >= *last,
                        "thread {t}: epoch went backwards ({} -> {epoch})",
                        *last
                    );
                    *last = epoch;
                };
                for _ in 0..OPS_PER_THREAD {
                    let (src, dst, label) = (
                        rng.random_range(0..VERTICES),
                        rng.random_range(0..VERTICES),
                        rng.random_range(0..LABELS),
                    );
                    match rng.random_range(0..100u32) {
                        // Invariant 2 rides on every arm: the typed
                        // client methods fail loudly on any reply that
                        // is not the one their request expects.
                        0..=29 => {
                            let q = &queries[rng.random_range(0..queries.len())];
                            client.estimate("default", q).expect("estimate");
                        }
                        30..=49 => {
                            let k = rng.random_range(1..=4usize);
                            let batch: Vec<QueryGraph> = (0..k)
                                .map(|_| queries[rng.random_range(0..queries.len())].clone())
                                .collect();
                            let replies = client.estimate_batch("default", &batch).expect("batch");
                            assert_eq!(replies.len(), k, "thread {t}: batch reply count");
                        }
                        50..=69 => {
                            let ack = client
                                .add_edge("default", src, dst, label)
                                .expect("add_edge");
                            observe(ack.epoch, &mut last_epoch);
                        }
                        70..=84 => {
                            let ack = client
                                .del_edge("default", src, dst, label)
                                .expect("del_edge");
                            observe(ack.epoch, &mut last_epoch);
                        }
                        85..=94 => {
                            let outcome = client.commit("default").expect("commit");
                            observe(outcome.epoch, &mut last_epoch);
                        }
                        _ => {
                            let ack = client
                                .snapshot("default", snap_path.to_str().unwrap())
                                .expect("snapshot");
                            observe(ack.epoch, &mut last_epoch);
                        }
                    }
                }
                // The connection survived the whole script.
                client.ping().expect("ping at end");
                client.quit().expect("quit");
                last_epoch
            });
        }
    });

    // Settle: fold any leftover pending ops in, then compare against a
    // cold server loaded with the final committed graph.
    let mut client = Client::connect(addr).unwrap();
    client.commit("default").unwrap();
    let final_epoch = entry.epoch();
    let final_graph = entry.materialized_graph();

    let cold_registry = Arc::new(DatasetRegistry::new());
    cold_registry.insert_graph("default", final_graph, 2);
    let cold = Engine::new(cold_registry, 0);
    for q in &queries {
        let live = client.estimate("default", q).expect("live estimate");
        let coldv = cold.estimate("default", q).expect("cold estimate");
        assert_eq!(
            live.value, coldv.value,
            "live server diverged from cold rebuild on {q}"
        );
    }
    let stats = client.stats().unwrap();
    assert!(stats.requests > 0);
    client.quit().unwrap();
    server.shutdown();

    // Every snapshot the threads wrote restores to a valid dataset at a
    // plausible (≤ final) epoch.
    let mut restored_any = false;
    for path in &snapshot_paths {
        if !path.exists() {
            continue; // this thread's RNG never drew SNAPSHOT
        }
        let snap = DatasetEntry::read_snapshot("restored", path).expect("snapshot restores");
        assert!(
            snap.epoch() <= final_epoch,
            "snapshot epoch {} beyond final {final_epoch}",
            snap.epoch()
        );
        restored_any = true;
        std::fs::remove_file(path).unwrap();
    }
    assert!(restored_any, "at least one thread should have snapshotted");
}
