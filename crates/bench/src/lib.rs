//! # ceg-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Section 6). One binary per artifact:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — example Markov table |
//! | `table2` | Table 2 — dataset descriptions |
//! | `fig9`   | 9 optimistic estimators + P*, acyclic workloads |
//! | `fig10`  | 9 estimators, cyclic queries with only triangles |
//! | `fig11`  | CEG_O vs CEG_OCR on large-cycle queries |
//! | `fig12`  | bound-sketch budgets for max-hop-max and MOLP |
//! | `fig13`  | summary-based comparison (max-hop-max, MOLP, CS, SumRDF) |
//! | `fig14`  | WanderJoin ratios vs max-hop-max, with timings |
//! | `fig15`  | plan quality through the DP optimizer |
//!
//! Criterion benches (`cargo bench`) cover estimation latency, CEG
//! construction and the executor.

pub mod common;
