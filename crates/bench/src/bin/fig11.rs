//! Figure 11 — the nine estimators on CEG_O *and* CEG_OCR over cyclic
//! queries containing cycles longer than 3 edges (Section 6.2.2), h = 3.
//!
//! Expected shape (paper): on CEG_O every estimator overestimates
//! (cycles are broken into paths) and min-aggregation is the least bad;
//! on CEG_OCR the closing rates restore optimism and max-aggregation
//! wins again, with better accuracy than the best CEG_O heuristic.

use ceg_bench::common;
use ceg_query::cycles::has_large_cycle;
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Dblp, Workload::Cyclic, 6),
        (Dataset::Watdiv, Workload::Cyclic, 6),
        (Dataset::Hetionet, Workload::Cyclic, 6),
        (Dataset::Epinions, Workload::Cyclic, 6),
        (Dataset::Yago, Workload::GCareCyclic, 4),
    ];
    println!("Figure 11: CEG_O vs CEG_OCR on queries with cycles of size > 3 (h = 3)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        let large = common::filter_queries(&queries, |wq| has_large_cycle(&wq.query, 3));
        if large.is_empty() {
            println!("-- {}: no large-cycle instances --", ds.name());
            continue;
        }
        eprintln!("[fig11] {}: {} large-cycle queries", ds.name(), large.len());
        let table = common::markov_for(&graph, &large, 3);
        let ccr = common::ccr_for(&graph, &large, 3000);

        let mut ests_o = common::nine_estimators(&table);
        let mut reports_o = run_estimators(&large, &mut ests_o);
        reports_o.push(common::pstar_report(&large, &table, None));
        println!(
            "{}",
            render_table(
                &format!("{} / {} on CEG_O", ds.name(), wl.name()),
                &reports_o
            )
        );

        let mut ests_ocr = common::nine_estimators_ocr(&table, &ccr);
        let mut reports_ocr = run_estimators(&large, &mut ests_ocr);
        reports_ocr.push(common::pstar_report(&large, &table, Some(&ccr)));
        println!(
            "{}",
            render_table(
                &format!("{} / {} on CEG_OCR", ds.name(), wl.name()),
                &reports_ocr
            )
        );
    }
}
