//! Figure 15 — impact of estimators on plan quality (Section 6.6).
//!
//! For each query the DP optimizer (the RDF-3X stand-in, see
//! docs/ARCHITECTURE.md §D.2) is run once with the RDF-3X-style default
//! estimator and once with each of the nine optimistic estimators; every
//! chosen plan is executed
//! and its cost (actual intermediate tuples, the stable proxy for run
//! time on our scaled data; wall time is also reported) compared with the
//! default plan's. Queries where all estimators pick plans within 10% of
//! each other are filtered out, as in the paper.
//!
//! Expected shape (paper): all nine optimistic estimators beat the
//! default (median speedup > 1), and max-aggregation estimators beat
//! min/avg ones.

use ceg_bench::common;
use ceg_core::Heuristic;
use ceg_estimators::{OptimisticEstimator, Rdf3xDefaultEstimator};
use ceg_planner::{execute_plan, optimize};
use ceg_workload::qerror::QErrorSummary;
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Dblp, Workload::Acyclic, 3),
        (Dataset::Watdiv, Workload::Acyclic, 3),
    ];
    let row_budget = 4_000_000usize;
    println!("Figure 15: plan quality vs the RDF-3X default estimator");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 2);
        let heuristics = Heuristic::all();

        // per heuristic: log10 speedups in intermediate tuples vs default
        let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); heuristics.len()];
        let mut wall_speedups: Vec<Vec<f64>> = vec![Vec::new(); heuristics.len()];
        let mut kept = 0usize;
        for wq in &queries {
            let mut default_est = Rdf3xDefaultEstimator::new(&graph);
            let (default_plan, _) = optimize(&wq.query, &mut default_est);
            let Some(base) = execute_plan(&graph, &wq.query, &default_plan, row_budget) else {
                continue;
            };
            let mut costs = Vec::with_capacity(heuristics.len());
            let mut walls = Vec::with_capacity(heuristics.len());
            let mut ok = true;
            for h in heuristics {
                let mut est = OptimisticEstimator::new(&table, h);
                let (plan, _) = optimize(&wq.query, &mut est);
                match execute_plan(&graph, &wq.query, &plan, row_budget) {
                    Some(s) => {
                        costs.push(s.intermediate_tuples);
                        walls.push(s.wall.as_secs_f64());
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            // filter queries where every plan costs within 10% (paper §6.6)
            let all = costs
                .iter()
                .chain(std::iter::once(&base.intermediate_tuples));
            let min = *all.clone().min().unwrap() as f64;
            let max = *all.max().unwrap() as f64;
            if max <= 1.1 * min.max(1.0) {
                continue;
            }
            kept += 1;
            for (i, (&c, &w)) in costs.iter().zip(&walls).enumerate() {
                let s = (base.intermediate_tuples.max(1) as f64) / (c.max(1) as f64);
                speedups[i].push(s.log10());
                let ws = base.wall.as_secs_f64().max(1e-9) / w.max(1e-9);
                wall_speedups[i].push(ws.log10());
            }
        }
        println!(
            "== {} / {}: {} queries with diverging plans ==",
            ds.name(),
            wl.name(),
            kept
        );
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>10} {:>12}",
            "estimator", "p25", "median", "p75", "mean|s|", "wall-median"
        );
        for (i, h) in heuristics.iter().enumerate() {
            let s = QErrorSummary::from_signed(speedups[i].clone(), 0);
            let ws = QErrorSummary::from_signed(wall_speedups[i].clone(), 0);
            if s.count == 0 {
                println!("{:<14} (no data)", h.name());
                continue;
            }
            println!(
                "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>12.2}",
                h.name(),
                s.p25,
                s.median,
                s.p75,
                s.trimmed_mean,
                ws.median,
            );
        }
        println!("(values are log10 speedup over the RDF-3X default plan; > 0 = faster)\n");
    }
}
