//! Figure 14 — max-hop-max versus WanderJoin at sampling ratios
//! 0.01%, 0.1%, 0.25%, 0.5%, 0.75%, with mean estimation times
//! (Section 6.5), h = 2.
//!
//! Expected shape (paper): WJ's accuracy improves with the ratio and
//! eventually beats the summary estimate, but at one to two orders of
//! magnitude higher estimation time; max-hop-max stays sub-millisecond
//! independently of dataset size.

use ceg_bench::common;
use ceg_core::{Aggr, Heuristic, PathLen};
use ceg_estimators::{CardinalityEstimator, OptimisticEstimator, WanderJoinEstimator};
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Imdb, Workload::Job, 8),
        (Dataset::Dblp, Workload::Acyclic, 3),
        (Dataset::Hetionet, Workload::Acyclic, 3),
        (Dataset::Epinions, Workload::Acyclic, 3),
        (Dataset::Yago, Workload::GCareAcyclic, 3),
    ];
    // our graphs are ~1000x smaller than the paper's, so the same
    // *number of walks* corresponds to a larger ratio; we keep the
    // paper's ratio ladder and report the (ratio → accuracy, time) curve
    let ratios = [0.0001f64, 0.001, 0.0025, 0.005, 0.0075, 0.05, 0.25];
    println!("Figure 14: WanderJoin vs max-hop-max (h = 2)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 2);
        let mut ests: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(
            OptimisticEstimator::new(&table, Heuristic::new(PathLen::MaxHop, Aggr::Max)),
        )];
        for &r in &ratios {
            ests.push(Box::new(WanderJoinEstimator::new(&graph, r, common::SEED)));
        }
        let reports = run_estimators(&queries, &mut ests);
        println!(
            "{}",
            render_table(&format!("{} / {}", ds.name(), wl.name()), &reports)
        );
    }
}
