//! Table 1 — an example Markov table of size h = 2, on a small graph in
//! the spirit of the paper's running example (Figure 2), together with
//! the 3-path estimate walkthrough of Section 4.1.

use ceg_catalog::MarkovTable;
use ceg_exec::count;
use ceg_graph::{GraphBuilder, LabeledGraph};
use ceg_query::{templates, EdgeMask};

/// Small graph with labels A=0, B=1, C=2 reproducing the Section 4.1
/// walkthrough numbers: |B| = 2, |A→B| = 4, |B→C| = 3, |A→B→C| = 7.
fn running_example() -> LabeledGraph {
    let mut b = GraphBuilder::new(16);
    // A edges skewed into the two B-sources (3 + 1 → |A→B| = 4)
    b.add_edge(0, 4, 0);
    b.add_edge(1, 4, 0);
    b.add_edge(2, 4, 0);
    b.add_edge(3, 5, 0);
    // B edges (|B| = 2)
    b.add_edge(4, 6, 1);
    b.add_edge(5, 7, 1);
    // C edges (|B→C| = 3), correlated with the popular B-path, so the
    // true |A→B→C| = 3·2 + 1·1 = 7 while the formula says 6
    b.add_edge(6, 8, 2);
    b.add_edge(6, 9, 2);
    b.add_edge(7, 10, 2);
    b.build()
}

fn main() {
    let g = running_example();
    let q3 = templates::path(3, &[0, 1, 2]); // A → B → C
    let table = MarkovTable::build_for_query(&g, &q3, 2);

    println!("Table 1: example Markov table (h = 2)");
    println!("{:<14} {:>6}", "Path", "|Path|");
    let mut rows: Vec<(String, u64)> = table.iter().map(|(p, c)| (p.to_string(), c)).collect();
    rows.sort();
    for (p, c) in rows {
        println!("{p:<14} {c:>6}");
    }

    // Section 4.1 estimate: |A→B| * |B→C| / |B|
    let ab = table
        .card_of_subquery(&q3, EdgeMask::from_bits(0b011))
        .unwrap() as f64;
    let bc = table
        .card_of_subquery(&q3, EdgeMask::from_bits(0b110))
        .unwrap() as f64;
    let b = table.card_of_subquery(&q3, EdgeMask::single(1)).unwrap() as f64;
    let est = ab * bc / b;
    let truth = count(&g, &q3);
    println!();
    println!("Markov estimate for A→B→C: |A→B| × |B→C| / |B| = {ab} × {bc} / {b} = {est}");
    println!("true cardinality: {truth} (the estimator underestimates, as in §4.1)");
    assert!(est < truth as f64);
}
