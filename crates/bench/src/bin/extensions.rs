//! Extensions beyond the paper's evaluation (supplementary experiment):
//!
//! * **MaxEnt** — the maximum-entropy estimator the paper's Section 7
//!   sketches as future work, over the same Markov statistics;
//! * **JSUB** — index-based join sampling, the other G-CARE sampler
//!   family, next to WanderJoin;
//! * **sampled Markov tables** — approximate statistics construction
//!   (how catalogue systems build statistics at scale): accuracy of
//!   max-hop-max under exact vs sampled tables.

use ceg_bench::common;
use ceg_catalog::MarkovTable;
use ceg_core::{Aggr, Heuristic, PathLen};
use ceg_estimators::{
    CardinalityEstimator, JsubEstimator, MaxEntEstimator, OptimisticEstimator, WanderJoinEstimator,
};
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    println!("Extensions: MaxEnt, JSUB and sampled statistics");
    let combos = [
        (Dataset::Imdb, Workload::Job, 8),
        (Dataset::Hetionet, Workload::Acyclic, 3),
    ];
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 2);
        let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
        let sampled = MarkovTable::build_sampled(&graph, &qs, 2, 2000, common::SEED);

        let mhm = Heuristic::new(PathLen::MaxHop, Aggr::Max);
        let mut ests: Vec<Box<dyn CardinalityEstimator>> = vec![
            Box::new(OptimisticEstimator::new(&table, mhm)),
            Box::new(NamedOptimistic {
                inner: OptimisticEstimator::new(&sampled, mhm),
            }),
            Box::new(MaxEntEstimator::new(&graph, &table)),
            Box::new(WanderJoinEstimator::new(&graph, 0.05, common::SEED)),
            Box::new(JsubEstimator::new(&graph, 0.05, common::SEED)),
        ];
        let reports = run_estimators(&queries, &mut ests);
        println!(
            "{}",
            render_table(&format!("{} / {}", ds.name(), wl.name()), &reports)
        );
    }
}

/// Wrapper renaming the sampled-table estimator in reports.
struct NamedOptimistic<'a> {
    inner: OptimisticEstimator<'a>,
}

impl CardinalityEstimator for NamedOptimistic<'_> {
    fn name(&self) -> String {
        format!("{}(sampled)", self.inner.name())
    }
    fn estimate(&mut self, q: &ceg_query::QueryGraph) -> Option<f64> {
        self.inner.estimate(q)
    }
}
