//! Figure 10 — the nine optimistic estimators + P* on CEG_O over cyclic
//! queries whose only cycles are triangles (Section 6.2.1), h = 3.
//!
//! Expected shape (paper): same as the acyclic case — the max aggregator
//! wins and max-hop performs at least as well as min-hop.

use ceg_bench::common;
use ceg_query::cycles::only_triangles;
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Dblp, Workload::Cyclic, 6),
        (Dataset::Watdiv, Workload::Cyclic, 6),
        (Dataset::Hetionet, Workload::Cyclic, 6),
        (Dataset::Epinions, Workload::Cyclic, 6),
    ];
    println!("Figure 10: optimistic estimators on cyclic queries with only triangles (h = 3)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        let tri = common::filter_queries(&queries, |wq| only_triangles(&wq.query));
        if tri.is_empty() {
            println!("-- {}: no triangle-only instances --", ds.name());
            continue;
        }
        eprintln!("[fig10] {}: {} triangle-only queries", ds.name(), tri.len());
        let table = common::markov_for(&graph, &tri, 3);
        let mut ests = common::nine_estimators(&table);
        let mut reports = run_estimators(&tri, &mut ests);
        reports.push(common::pstar_report(&tri, &table, None));
        println!(
            "{}",
            render_table(
                &format!("{} / Cyclic (triangles only)", ds.name()),
                &reports
            )
        );
    }
}
