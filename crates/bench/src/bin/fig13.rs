//! Figure 13 — summary-based estimator comparison: max-hop-max (CEG_O),
//! MOLP (with 2-join degree statistics, a strict superset of the
//! optimistic statistics), Characteristic Sets, and SumRDF (Section 6.4),
//! h = 2.
//!
//! Expected shape (paper): max-hop-max wins by orders of magnitude in
//! mean q-error; MOLP never underestimates but is very loose; CS and
//! SumRDF underestimate virtually everywhere; SumRDF occasionally times
//! out (counted in the failures column).

use ceg_bench::common;
use ceg_catalog::{CharacteristicSets, DegreeStats, SummaryGraph};
use ceg_core::{Aggr, Heuristic, PathLen};
use ceg_estimators::{
    CardinalityEstimator, CsEstimator, MolpEstimator, OptimisticEstimator, SumRdfEstimator,
};
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Imdb, Workload::Job, 10),
        (Dataset::Hetionet, Workload::Acyclic, 3),
        (Dataset::Watdiv, Workload::Acyclic, 3),
        (Dataset::Epinions, Workload::Acyclic, 3),
        (Dataset::Yago, Workload::GCareAcyclic, 3),
    ];
    println!("Figure 13: summary-based estimator comparison (h = 2)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 2);
        let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
        let degs = DegreeStats::build_with_joins(&graph, &qs, 3_000_000);
        let cs = CharacteristicSets::build(&graph);
        let summary = SummaryGraph::build(&graph, 64);

        let mut ests: Vec<Box<dyn CardinalityEstimator>> = vec![
            Box::new(OptimisticEstimator::new(
                &table,
                Heuristic::new(PathLen::MaxHop, Aggr::Max),
            )),
            Box::new(MolpEstimator::new(&degs, true)),
            Box::new(CsEstimator::new(&cs)),
            Box::new(SumRdfEstimator::new(&summary, 3_000_000)),
        ];
        let reports = run_estimators(&queries, &mut ests);
        println!(
            "{}",
            render_table(&format!("{} / {}", ds.name(), wl.name()), &reports)
        );
    }
}
