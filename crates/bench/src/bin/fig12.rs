//! Figure 12 — effect of the bound-sketch optimization on the
//! max-hop-max optimistic estimator (left column) and MOLP (right
//! column), partitioning budgets K ∈ {1, 4, 16, 64, 128} (Section 6.3),
//! h = 2.
//!
//! Expected shape (paper): MOLP tightens steadily with K; the optimistic
//! estimator improves on Hetionet/Epinions and is roughly flat on IMDb;
//! MOLP stays orders of magnitude less accurate than max-hop-max.

use ceg_bench::common;
use ceg_estimators::{CardinalityEstimator, SketchedMolp, SketchedOptimistic};
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Imdb, Workload::Job, 8),
        (Dataset::Hetionet, Workload::Acyclic, 3),
        (Dataset::Epinions, Workload::Acyclic, 3),
    ];
    let budgets = [1u32, 4, 16, 64, 128];
    println!("Figure 12: bound-sketch budgets on max-hop-max and MOLP (h = 2)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 2);

        let mut opt_ests: Vec<Box<dyn CardinalityEstimator>> = budgets
            .iter()
            .map(|&k| {
                Box::new(SketchedOptimistic::max_hop_max(&graph, &table, k))
                    as Box<dyn CardinalityEstimator>
            })
            .collect();
        let reports = run_estimators(&queries, &mut opt_ests);
        println!(
            "{}",
            render_table(
                &format!("{} / {}: max-hop-max + sketch", ds.name(), wl.name()),
                &reports
            )
        );

        let mut molp_ests: Vec<Box<dyn CardinalityEstimator>> = budgets
            .iter()
            .map(|&k| Box::new(SketchedMolp::new(&graph, k)) as Box<dyn CardinalityEstimator>)
            .collect();
        let reports = run_estimators(&queries, &mut molp_ests);
        println!(
            "{}",
            render_table(
                &format!("{} / {}: MOLP + sketch", ds.name(), wl.name()),
                &reports
            )
        );
    }
}
