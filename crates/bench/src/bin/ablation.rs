//! Ablation study of the CEG_O construction rules (docs/ARCHITECTURE.md §D.5):
//!
//! * Rule 1 — *size-h numerators* (formulas condition on the largest
//!   stored joins);
//! * Rule 2 — *early cycle closing* (close cycles as soon as possible);
//! * MOLP with vs without 2-join degree statistics (Section 5.1.1).
//!
//! Not a paper figure, but the paper asserts both rules from prior work
//! without ablating them; this harness quantifies their contribution on
//! our datasets.

use ceg_bench::common;
use ceg_catalog::DegreeStats;
use ceg_core::ceg_o::{CegO, CegOOptions};
use ceg_core::{molp_bound, Aggr, Heuristic, MolpInstance, PathLen};
use ceg_workload::qerror::{signed_log_qerror, QErrorSummary};
use ceg_workload::{Dataset, Workload};

fn summarize(name: &str, errors: Vec<f64>, failures: usize) {
    let s = QErrorSummary::from_signed(errors, failures);
    if s.count == 0 {
        println!("{name:<26} (no data, {failures} failed)");
        return;
    }
    println!(
        "{:<26} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>6.0}%{}",
        name,
        s.p25,
        s.median,
        s.p75,
        s.trimmed_mean,
        s.under_fraction * 100.0,
        if s.failures > 0 {
            format!("  ({} failed)", s.failures)
        } else {
            String::new()
        }
    );
}

fn main() {
    println!("Ablation: CEG_O construction rules and MOLP join statistics");
    let h = Heuristic::new(PathLen::MaxHop, Aggr::Max);

    for (ds, wl, per_template, label) in [
        (Dataset::Hetionet, Workload::Acyclic, 3, "acyclic"),
        (Dataset::Hetionet, Workload::Cyclic, 5, "cyclic"),
    ] {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 3);
        println!(
            "\n== {} / {} ({label}), max-hop-max ==",
            ds.name(),
            wl.name()
        );
        println!(
            "{:<26} {:>7} {:>7} {:>7} {:>7} {:>6}",
            "variant", "p25", "median", "p75", "mean*", "under"
        );
        let variants = [
            ("both rules (paper)", true, true),
            ("no size-h rule", false, true),
            ("no early closing", true, false),
            ("no rules", false, false),
        ];
        for (name, size_h, early) in variants {
            let opts = CegOOptions {
                size_h_numerators: size_h,
                early_cycle_closing: early,
            };
            let mut errors = Vec::new();
            let mut failures = 0;
            for wq in &queries {
                let ceg = CegO::build_with_options(&wq.query, &table, opts);
                match ceg.ceg().estimate(h) {
                    Some(e) => errors.push(signed_log_qerror(e, wq.truth)),
                    None => failures += 1,
                }
            }
            summarize(name, errors, failures);
        }

        // MOLP join-statistics ablation on the same workload
        let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
        let degs = DegreeStats::build_with_joins(&graph, &qs, 3_000_000);
        println!("-- MOLP statistics ablation --");
        for (name, use_joins) in [("base degrees only", false), ("with 2-join degrees", true)] {
            let mut errors = Vec::new();
            for wq in &queries {
                let inst = MolpInstance::from_stats(&wq.query, &degs, use_joins);
                let b = molp_bound(&inst);
                if b.is_finite() {
                    errors.push(signed_log_qerror(b, wq.truth));
                }
            }
            summarize(name, errors, 0);
        }
    }
}
