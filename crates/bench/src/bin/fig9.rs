//! Figure 9 — the nine optimistic estimators + the P* oracle on CEG_O
//! over the acyclic workloads (JOB on IMDb; Acyclic on DBLP, WatDiv,
//! Hetionet, Epinions), Markov table size h = 3 (Section 6.2.1).
//!
//! Expected shape (paper): max-aggregation beats avg beats min on every
//! dataset; max-hop ≥ min-hop; max-hop-max is within sight of P*.

use ceg_bench::common;
use ceg_workload::runner::{render_table, run_estimators};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Imdb, Workload::Job, 12),
        (Dataset::Dblp, Workload::Acyclic, 4),
        (Dataset::Watdiv, Workload::Acyclic, 4),
        (Dataset::Hetionet, Workload::Acyclic, 4),
        (Dataset::Epinions, Workload::Acyclic, 4),
    ];
    println!("Figure 9: optimistic estimator space on CEG_O, acyclic workloads (h = 3)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            println!(
                "-- {} / {}: no instantiable queries --",
                ds.name(),
                wl.name()
            );
            continue;
        }
        let table = common::markov_for(&graph, &queries, 3);
        let mut ests = common::nine_estimators(&table);
        let mut reports = run_estimators(&queries, &mut ests);
        reports.push(common::pstar_report(&queries, &table, None));
        println!(
            "{}",
            render_table(&format!("{} / {}", ds.name(), wl.name()), &reports)
        );
    }
}
