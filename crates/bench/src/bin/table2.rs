//! Table 2 — dataset descriptions: domain, |V|, |E|, |edge labels|.
//!
//! Prints the paper's Table 2 columns for our scaled synthetic stand-ins
//! next to the paper's original sizes (see docs/ARCHITECTURE.md §D.1 for the
//! substitution rationale).

use ceg_workload::Dataset;

fn main() {
    println!("Table 2: dataset descriptions (scaled stand-ins; paper sizes in parentheses)");
    println!(
        "{:<10} {:<18} {:>10} {:>10} {:>10}   paper |V| / |E| / labels",
        "Dataset", "Domain", "|V|", "|E|", "|Labels|"
    );
    let paper = [
        ("27M", "65M", 127),
        ("13M", "16M", 91),
        ("23M", "56M", 27),
        ("1M", "11M", 86),
        ("45K", "2M", 24),
        ("76K", "509K", 50),
    ];
    for (ds, (pv, pe, pl)) in Dataset::ALL.iter().zip(paper) {
        let g = ds.generate(ceg_bench::common::SEED);
        println!(
            "{:<10} {:<18} {:>10} {:>10} {:>10}   ({pv} / {pe} / {pl})",
            ds.name(),
            ds.domain(),
            g.num_vertices(),
            g.num_edges(),
            g.num_labels(),
        );
    }
}
