//! Per-template breakdown of the nine optimistic estimators — the
//! paper's supplementary template-specific analysis (Section 6.2 notes
//! the per-template charts live in the authors' repository; this binary
//! regenerates the equivalent tables and verifies the conclusions hold
//! template by template).

use ceg_bench::common;
use ceg_workload::runner::{render_table, run_by_template};
use ceg_workload::{Dataset, Workload};

fn main() {
    let combos = [
        (Dataset::Imdb, Workload::Job, 8),
        (Dataset::Hetionet, Workload::Acyclic, 3),
    ];
    println!("Per-template estimator analysis (h = 3)");
    for (ds, wl, per_template) in combos {
        let (graph, queries) = common::setup(ds, wl, per_template);
        if queries.is_empty() {
            continue;
        }
        let table = common::markov_for(&graph, &queries, 3);
        let grouped = run_by_template(&queries, || common::nine_estimators(&table));
        for (template, reports) in grouped {
            println!(
                "{}",
                render_table(
                    &format!("{} / {} / template {template}", ds.name(), wl.name()),
                    &reports
                )
            );
        }
    }
}
