//! Shared harness code for the figure/table binaries.

use std::time::Instant;

use ceg_catalog::{CcrTable, MarkovTable};
use ceg_core::Heuristic;
use ceg_estimators::{pstar_estimate, CardinalityEstimator, OptimisticEstimator};
use ceg_graph::LabeledGraph;
use ceg_workload::qerror::{signed_log_qerror, QErrorSummary};
use ceg_workload::runner::EstimatorReport;
use ceg_workload::workloads::WorkloadQuery;
use ceg_workload::{Dataset, Workload};

/// Deterministic seed used by every harness (documented in EXPERIMENTS.md).
pub const SEED: u64 = 2022;

/// Generate a dataset and instantiate a workload on it, with progress
/// output (truth counting dominates setup time).
pub fn setup(ds: Dataset, wl: Workload, per_template: usize) -> (LabeledGraph, Vec<WorkloadQuery>) {
    let t0 = Instant::now();
    let graph = ds.generate(SEED);
    let queries = wl.build(&graph, per_template, SEED);
    eprintln!(
        "[setup] {} / {}: |V|={} |E|={} labels={} queries={} ({:.1?})",
        ds.name(),
        wl.name(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels(),
        queries.len(),
        t0.elapsed()
    );
    (graph, queries)
}

/// Build the workload-specific Markov table (Section 6: tables are built
/// per workload, like the paper's), counting patterns on the machine's
/// available cores (capped at 8 by `default_build_parallelism`) — the
/// table is identical to a serial build.
pub fn markov_for(graph: &LabeledGraph, queries: &[WorkloadQuery], h: usize) -> MarkovTable {
    let t0 = Instant::now();
    let jobs = ceg_catalog::default_build_parallelism();
    let table = ceg_workload::runner::build_markov_parallel(graph, queries, h, jobs);
    eprintln!(
        "[setup] Markov table h={h}: {} entries, ~{:.2} KB ({jobs} jobs, {:.1?})",
        table.len(),
        table.approx_bytes() as f64 / 1024.0,
        t0.elapsed()
    );
    table
}

/// Build the cycle-closing-rate table for a workload.
pub fn ccr_for(graph: &LabeledGraph, queries: &[WorkloadQuery], samples: u32) -> CcrTable {
    let t0 = Instant::now();
    let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
    let ccr = CcrTable::build(graph, &qs, samples, SEED);
    eprintln!(
        "[setup] CCR table: {} entries, {} samples each ({:.1?})",
        ccr.len(),
        samples,
        t0.elapsed()
    );
    ccr
}

/// The nine optimistic estimators on CEG_O, in the paper's plot order.
pub fn nine_estimators<'a>(table: &'a MarkovTable) -> Vec<Box<dyn CardinalityEstimator + 'a>> {
    Heuristic::all()
        .into_iter()
        .map(|h| {
            Box::new(OptimisticEstimator::ceg_o_only(table, h)) as Box<dyn CardinalityEstimator>
        })
        .collect()
}

/// The nine estimators on CEG_OCR (falls back to CEG_O on small-cycle or
/// acyclic queries, exactly as the estimator itself decides).
pub fn nine_estimators_ocr<'a>(
    table: &'a MarkovTable,
    ccr: &'a CcrTable,
) -> Vec<Box<dyn CardinalityEstimator + 'a>> {
    Heuristic::all()
        .into_iter()
        .map(|h| {
            Box::new(OptimisticEstimator::with_ccr(table, ccr, h)) as Box<dyn CardinalityEstimator>
        })
        .collect()
}

/// The P* oracle as a report row (Section 6.2.3).
pub fn pstar_report(
    queries: &[WorkloadQuery],
    table: &MarkovTable,
    ccr: Option<&CcrTable>,
) -> EstimatorReport {
    let t0 = Instant::now();
    let mut errors = Vec::with_capacity(queries.len());
    let mut failures = 0usize;
    for wq in queries {
        match pstar_estimate(&wq.query, table, ccr, wq.truth) {
            Some(e) => errors.push(signed_log_qerror(e, wq.truth)),
            None => failures += 1,
        }
    }
    let elapsed = t0.elapsed().as_secs_f64() * 1e6;
    EstimatorReport {
        name: "P*".into(),
        summary: QErrorSummary::from_signed(errors, failures),
        mean_time_us: if queries.is_empty() {
            0.0
        } else {
            elapsed / queries.len() as f64
        },
    }
}

/// Filter a workload by a query predicate.
pub fn filter_queries(
    queries: &[WorkloadQuery],
    pred: impl Fn(&WorkloadQuery) -> bool,
) -> Vec<WorkloadQuery> {
    queries.iter().filter(|q| pred(q)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_produces_nonempty_workload() {
        let (_g, w) = setup(Dataset::Hetionet, Workload::Job, 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn nine_estimators_have_distinct_names() {
        let (g, w) = setup(Dataset::Hetionet, Workload::Job, 1);
        let t = markov_for(&g, &w, 2);
        let ests = nine_estimators(&t);
        let mut names: Vec<String> = ests.iter().map(|e| e.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
