//! Service-layer throughput: batched vs one-at-a-time estimation.
//!
//! The service batches requests per dataset so one cache pass, one
//! catalog fill and one catalog read lock cover the whole batch. These
//! benches quantify that amortization on the engine directly (no socket
//! in the way), plus the ceiling set by the LRU cache:
//!
//! * `one-at-a-time/*` — one `Engine::estimate` call per query,
//! * `batched/*` — one `Engine::estimate_batch` call for the workload,
//! * `cached/*` — the same traffic against a warm LRU (all hits),
//! * `explain_overhead/*` — the warm traffic with (`traced`) and without
//!   (`untraced`) a live per-request `Trace`, isolating what an
//!   `EXPLAIN_ESTIMATE` costs over a plain `ESTIMATE`.
//!
//! The first two run with caching disabled (capacity 0) so they measure
//! the estimation path, not the cache.
//!
//! `overload/*` drives a **live server** configured with a deliberately
//! tiny admission queue (`queue_cap: 4`) through flooded and
//! tight-deadline batches, so the typed `BUSY`/`TIMEOUT` rejection paths
//! get a perf trace too. After the group runs, the server's overload
//! counters (`busy_total`, `timeout_total`, `queued_peak`) are printed
//! and appended to `CRITERION_JSON` as `{"name": …, "counter": …}`
//! lines next to the timing records — the smoke evidence that admission
//! control actually engaged (`BENCH_service.json`).
//!
//! Set `CEG_BENCH_SMOKE=1` for tiny sample counts (CI) and
//! `CRITERION_JSON=<path>` to capture means + counters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ceg_bench::common;
use ceg_query::QueryGraph;
use ceg_service::{Client, DatasetRegistry, Engine, Server, ServerConfig};
use ceg_workload::{Dataset, Workload};

fn engine_for(graph: &ceg_graph::LabeledGraph, cache_capacity: usize) -> Engine {
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("bench", graph.clone(), 2);
    Engine::new(registry, cache_capacity)
}

fn bench_service(c: &mut Criterion) {
    let smoke = std::env::var("CEG_BENCH_SMOKE").is_ok();
    let (graph, workload) = common::setup(Dataset::Hetionet, Workload::Job, 2);
    let queries: Vec<QueryGraph> = workload.iter().map(|q| q.query.clone()).collect();

    let mut group = c.benchmark_group("service");
    group.sample_size(if smoke { 2 } else { 20 });

    // Warm catalogs once so the benches measure steady-state request
    // handling, not the first-ever pattern counting.
    let single = engine_for(&graph, 0);
    let batched = engine_for(&graph, 0);
    let cached = engine_for(&graph, 4096);
    single.estimate_batch("bench", &queries).unwrap();
    batched.estimate_batch("bench", &queries).unwrap();
    cached.estimate_batch("bench", &queries).unwrap();

    group.bench_function("one-at-a-time/job", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(single.estimate("bench", black_box(q)).unwrap());
            }
        });
    });
    group.bench_function("batched/job", |b| {
        b.iter(|| {
            black_box(
                batched
                    .estimate_batch("bench", black_box(&queries))
                    .unwrap(),
            )
        });
    });
    group.bench_function("cached/job", |b| {
        b.iter(|| black_box(cached.estimate_batch("bench", black_box(&queries)).unwrap()));
    });
    // Tracing overhead, isolated: the same warm-cache traffic answered
    // through `Engine::explain` (a live `Trace` recording every span and
    // counter) vs the plain untraced path. The delta is what one
    // EXPLAIN_ESTIMATE costs over an ESTIMATE.
    group.bench_function("explain_overhead/untraced", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(cached.estimate("bench", black_box(q)).unwrap());
            }
        });
    });
    group.bench_function("explain_overhead/traced", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(cached.explain("bench", black_box(q), None).unwrap());
            }
        });
    });
    group.finish();

    bench_overload(c, &graph, &queries, smoke);
}

/// Wire-level overload: flooded and tight-deadline batches against a
/// server whose admission queue is deliberately tiny, so the typed
/// rejection paths are what gets measured.
fn bench_overload(
    c: &mut Criterion,
    graph: &ceg_graph::LabeledGraph,
    queries: &[QueryGraph],
    smoke: bool,
) {
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("bench", graph.clone(), 2);
    let server = Server::start(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            batch_max: 8,
            cache_capacity: 0, // every slot takes the admission-controlled path
            queue_cap: 4,
            default_deadline_ms: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind bench server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let flood: Vec<QueryGraph> = queries.iter().cycle().take(64).cloned().collect();

    let mut group = c.benchmark_group("overload");
    group.sample_size(if smoke { 2 } else { 10 });
    // 64 cold slots against queue_cap=4: a mix of answered and
    // BUSY-rejected slots, timed end-to-end over the wire.
    group.bench_function("flooded_batch_64/job", |b| {
        b.iter(|| {
            black_box(
                client
                    .estimate_batch_with_deadline("bench", black_box(&flood), None)
                    .expect("typed replies"),
            )
        });
    });
    // The same batch already expired on arrival (`DEADLINE_MS=0`): every
    // admitted slot resolves to a typed TIMEOUT at dequeue — the cost of
    // shedding a batch of dead work, and a guaranteed non-zero
    // `timeout_total` in the counter trace.
    group.bench_function("expired_deadline_batch_64/job", |b| {
        b.iter(|| {
            black_box(
                client
                    .estimate_batch_with_deadline("bench", black_box(&flood), Some(0))
                    .expect("typed replies"),
            )
        });
    });
    group.finish();

    // Emit the overload counters next to the timing records: proof in
    // the bench trace that admission control and deadlines engaged.
    let snapshot = server.engine().metrics_snapshot();
    for key in ["busy_total", "timeout_total", "queued", "queued_peak"] {
        let value = snapshot
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        println!("  overload/{key}: {value}");
        append_counter_record(&format!("overload/{key}"), value);
    }
}

/// Append one `{"name": …, "counter": …}` line to `CRITERION_JSON`, the
/// counter-valued sibling of the vendored criterion's timing records.
fn append_counter_record(name: &str, value: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let line = format!("{{\"name\":\"{name}\",\"counter\":{value}}}\n");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
