//! Service-layer throughput: batched vs one-at-a-time estimation.
//!
//! The service batches requests per dataset so one cache pass, one
//! catalog fill and one catalog read lock cover the whole batch. These
//! benches quantify that amortization on the engine directly (no socket
//! in the way), plus the ceiling set by the LRU cache:
//!
//! * `one-at-a-time/*` — one `Engine::estimate` call per query,
//! * `batched/*` — one `Engine::estimate_batch` call for the workload,
//! * `cached/*` — the same traffic against a warm LRU (all hits).
//!
//! The first two run with caching disabled (capacity 0) so they measure
//! the estimation path, not the cache.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ceg_bench::common;
use ceg_query::QueryGraph;
use ceg_service::{DatasetRegistry, Engine};
use ceg_workload::{Dataset, Workload};

fn engine_for(graph: &ceg_graph::LabeledGraph, cache_capacity: usize) -> Engine {
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert_graph("bench", graph.clone(), 2);
    Engine::new(registry, cache_capacity)
}

fn bench_service(c: &mut Criterion) {
    let (graph, workload) = common::setup(Dataset::Hetionet, Workload::Job, 2);
    let queries: Vec<QueryGraph> = workload.iter().map(|q| q.query.clone()).collect();

    let mut group = c.benchmark_group("service");
    group.sample_size(20);

    // Warm catalogs once so the benches measure steady-state request
    // handling, not the first-ever pattern counting.
    let single = engine_for(&graph, 0);
    let batched = engine_for(&graph, 0);
    let cached = engine_for(&graph, 4096);
    single.estimate_batch("bench", &queries).unwrap();
    batched.estimate_batch("bench", &queries).unwrap();
    cached.estimate_batch("bench", &queries).unwrap();

    group.bench_function("one-at-a-time/job", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(single.estimate("bench", black_box(q)).unwrap());
            }
        });
    });
    group.bench_function("batched/job", |b| {
        b.iter(|| {
            black_box(
                batched
                    .estimate_batch("bench", black_box(&queries))
                    .unwrap(),
            )
        });
    });
    group.bench_function("cached/job", |b| {
        b.iter(|| black_box(cached.estimate_batch("bench", black_box(&queries)).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
