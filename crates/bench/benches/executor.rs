//! Executor microbenchmarks: backtracking counting vs tree DP — the cost
//! of ground truth and of Markov-table construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ceg_exec::{count, count_tree_dp};
use ceg_query::templates;
use ceg_workload::Dataset;

fn bench_executor(c: &mut Criterion) {
    let graph = Dataset::Hetionet.generate(2022);
    let path3 = templates::path(3, &[0, 1, 2]);
    let star3 = templates::star(3, &[0, 1, 2]);

    let mut group = c.benchmark_group("executor");
    group.sample_size(20);

    group.bench_function("backtracking_path3", |b| {
        b.iter(|| black_box(count(black_box(&graph), &path3)));
    });
    group.bench_function("tree_dp_path3", |b| {
        b.iter(|| black_box(count_tree_dp(black_box(&graph), &path3)));
    });
    group.bench_function("tree_dp_star3", |b| {
        b.iter(|| black_box(count_tree_dp(black_box(&graph), &star3)));
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
