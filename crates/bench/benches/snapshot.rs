//! Durability & batching benchmarks: what a restart and a round-trip
//! actually cost.
//!
//! * `cold_start/hetionet` — the boot path a server pays today: parse
//!   the text edge list, then build the workload's Markov catalog from
//!   scratch by counting patterns in the graph.
//! * `restore/hetionet` — the same state back from a binary `.cegsnap`
//!   snapshot (raw CSR arrays + catalog + epoch, checksummed). The
//!   acceptance bar is ≥ 5× faster than `cold_start`.
//! * `write/hetionet` — producing the snapshot file, for completeness.
//! * `estimate_single_64/job` — 64 warmed estimates, one wire
//!   round-trip each, against a live server.
//! * `estimate_batch_64/job` — the same 64 queries as one
//!   `ESTIMATE_BATCH`: one round-trip, pool-level fan-out.
//!
//! Set `CEG_BENCH_SMOKE=1` for tiny sample counts (CI) and
//! `CRITERION_JSON=<path>` to capture the means (`BENCH_snapshot.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ceg_bench::common;
use ceg_catalog::MarkovTable;
use ceg_graph::io::{load_graph, save_graph};
use ceg_query::QueryGraph;
use ceg_service::{Client, DatasetEntry, DatasetRegistry, Server, ServerConfig};
use ceg_workload::{Dataset, Workload};

fn scratch(stem: &str, ext: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ceg-bench-{stem}-{}.{ext}", std::process::id()))
}

fn bench_snapshot(c: &mut Criterion) {
    let smoke = std::env::var("CEG_BENCH_SMOKE").is_ok();
    let (graph, workload) = common::setup(Dataset::Hetionet, Workload::Job, 2);
    let queries: Vec<QueryGraph> = workload.iter().map(|q| q.query.clone()).collect();

    // The state a server would have built at boot: graph + warm h=3
    // catalog (the depth the paper's better estimators want; its build
    // dominates a real cold start).
    let markov = MarkovTable::build(&graph, &queries, 3);
    let edges_path = scratch("coldstart", "edges");
    save_graph(&graph, &edges_path).unwrap();
    let snap_path = scratch("restore", "cegsnap");
    ceg_catalog::io::write_snapshot(&snap_path, &graph, &markov, 7).unwrap();
    eprintln!(
        "[setup] snapshot: {} bytes, text edge list: {} bytes, catalog {} entries",
        std::fs::metadata(&snap_path).unwrap().len(),
        std::fs::metadata(&edges_path).unwrap().len(),
        markov.len(),
    );

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(if smoke { 2 } else { 10 });

    // Cold start: text parse + from-scratch catalog build.
    group.bench_function("cold_start/hetionet", |b| {
        b.iter(|| {
            let g = load_graph(black_box(&edges_path)).unwrap();
            let t = MarkovTable::build(&g, black_box(&queries), 3);
            black_box((g.num_edges(), t.len()))
        });
    });

    // Restore: one binary read, no parsing, no counting.
    group.bench_function("restore/hetionet", |b| {
        b.iter(|| {
            let snap = ceg_catalog::io::read_snapshot(black_box(&snap_path)).unwrap();
            black_box((snap.graph.num_edges(), snap.markov.len(), snap.epoch))
        });
    });

    group.bench_function("write/hetionet", |b| {
        b.iter(|| {
            ceg_catalog::io::write_snapshot(black_box(&snap_path), &graph, &markov, 7).unwrap()
        });
    });

    // Wire-level: 64 single round-trips vs one batched round-trip, on a
    // warm cache — the contrast isolates per-request wire overhead.
    let registry = Arc::new(DatasetRegistry::new());
    registry.insert(DatasetEntry::new("bench", graph.clone(), markov.clone()));
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let batch64: Vec<QueryGraph> = queries.iter().cycle().take(64).cloned().collect();
    client.estimate_batch("bench", &batch64).unwrap(); // warm the cache

    group.bench_function("estimate_single_64/job", |b| {
        b.iter(|| {
            for q in &batch64 {
                black_box(client.estimate("bench", q).unwrap());
            }
        });
    });

    group.bench_function("estimate_batch_64/job", |b| {
        b.iter(|| black_box(client.estimate_batch("bench", black_box(&batch64)).unwrap()));
    });

    group.finish();
    drop(client);
    server.shutdown();
    std::fs::remove_file(&edges_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
