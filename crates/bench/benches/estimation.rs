//! Estimation-latency microbenchmarks (the timing dimension of Figure 14
//! and the sub-millisecond claim of Section 6.5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ceg_bench::common;
use ceg_catalog::DegreeStats;
use ceg_core::{Aggr, Heuristic, PathLen};
use ceg_estimators::{
    CardinalityEstimator, MolpEstimator, OptimisticEstimator, WanderJoinEstimator,
};
use ceg_workload::{Dataset, Workload};

fn bench_estimation(c: &mut Criterion) {
    let (graph, queries) = common::setup(Dataset::Hetionet, Workload::Job, 2);
    let table = common::markov_for(&graph, &queries, 2);
    let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();
    let degs = DegreeStats::build_base(&graph);
    let query = &qs[0];

    let mut group = c.benchmark_group("estimation");
    group.sample_size(30);

    group.bench_function("max-hop-max", |b| {
        let mut est = OptimisticEstimator::new(&table, Heuristic::new(PathLen::MaxHop, Aggr::Max));
        b.iter(|| black_box(est.estimate(black_box(query))));
    });
    group.bench_function("all-hops-avg", |b| {
        let mut est = OptimisticEstimator::new(&table, Heuristic::new(PathLen::AllHops, Aggr::Avg));
        b.iter(|| black_box(est.estimate(black_box(query))));
    });
    group.bench_function("molp", |b| {
        let mut est = MolpEstimator::new(&degs, false);
        b.iter(|| black_box(est.estimate(black_box(query))));
    });
    group.bench_function("wanderjoin-0.5pct", |b| {
        let mut est = WanderJoinEstimator::new(&graph, 0.005, 1);
        b.iter(|| black_box(est.estimate(black_box(query))));
    });
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
