//! CEG-construction microbenchmarks: building CEG_O and running the MOLP
//! Dijkstra are the estimator's per-query costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ceg_bench::common;
use ceg_core::{molp_bound, CegO, MolpInstance};
use ceg_query::templates;
use ceg_workload::{Dataset, Workload};

fn bench_construction(c: &mut Criterion) {
    let (graph, queries) = common::setup(Dataset::Hetionet, Workload::Acyclic, 1);
    let table = common::markov_for(&graph, &queries, 2);
    let query = queries
        .iter()
        .map(|q| &q.query)
        .max_by_key(|q| q.num_edges())
        .expect("non-empty workload")
        .clone();

    let mut group = c.benchmark_group("construction");
    group.sample_size(30);

    group.bench_function("ceg_o_build", |b| {
        b.iter(|| black_box(CegO::build(black_box(&query), &table)));
    });

    let ceg = CegO::build(&query, &table);
    group.bench_function("ceg_o_all_estimates", |b| {
        b.iter(|| {
            for h in ceg_core::Heuristic::all() {
                black_box(ceg.ceg().estimate(h));
            }
        });
    });

    group.bench_function("molp_dijkstra_12_attrs", |b| {
        // a 12-edge path has 13 attributes → 8192-node implicit CEG_M
        let labels: Vec<u16> = (0..12).map(|i| (i % graph.num_labels()) as u16).collect();
        let q12 = templates::path(12, &labels);
        let inst = MolpInstance::from_graph(&graph, &q12);
        b.iter(|| black_box(molp_bound(black_box(&inst))));
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
