//! Counting-kernel benchmarks: the exact homomorphism counter and the
//! Markov-catalog construction built on it. `markov_build_h3_serial` is
//! the before/after evidence for kernel changes (`BENCH_counting.json`).
//!
//! Set `CEG_BENCH_SMOKE=1` to run with tiny sample counts (the CI smoke
//! step does this); set `CRITERION_JSON=<path>` to capture the means.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ceg_bench::common;
use ceg_catalog::MarkovTable;
use ceg_exec::count;
use ceg_graph::VertexRemap;
use ceg_query::templates;
use ceg_workload::{Dataset, Workload};

fn bench_counting(c: &mut Criterion) {
    let smoke = std::env::var("CEG_BENCH_SMOKE").is_ok();
    let (graph, queries) = common::setup(Dataset::Hetionet, Workload::Acyclic, 1);
    // Degree-descending renumbering, exactly as the service applies at
    // load time (common::setup bypasses the registry): hub ids cluster
    // into few bitset words, which the cycle benchmark's closing
    // intersection depends on.
    let graph = VertexRemap::degree_descending(&graph).apply(&graph);
    let qs: Vec<_> = queries.iter().map(|q| q.query.clone()).collect();

    let mut group = c.benchmark_group("counting");
    group.sample_size(if smoke { 2 } else { 10 });

    // Per-query counting: a path (intersections of arity 1-2), a star
    // (repeated extension from one hub binding) and a cycle (the k-way
    // intersection closing the loop).
    let path4 = templates::path(4, &[0, 1, 2, 3]);
    let star4 = templates::star(4, &[0, 1, 2, 3]);
    let cycle6 = templates::cycle(6, &[0, 1, 2, 3, 4, 5]);
    group.bench_function("count_path4", |b| {
        b.iter(|| black_box(count(black_box(&graph), &path4)));
    });
    group.bench_function("count_star4", |b| {
        b.iter(|| black_box(count(black_box(&graph), &star4)));
    });
    group.bench_function("count_cycle6", |b| {
        b.iter(|| black_box(count(black_box(&graph), &cycle6)));
    });

    // Catalog construction: the acceptance workload (Hetionet acyclic,
    // h = 3), serial vs the two-phase parallel path (identical tables).
    group.bench_function("markov_build_h3_serial", |b| {
        b.iter(|| black_box(MarkovTable::build(black_box(&graph), &qs, 3)));
    });
    group.bench_function("markov_build_h3_jobs4", |b| {
        b.iter(|| black_box(MarkovTable::build_parallel(black_box(&graph), &qs, 3, 4)));
    });
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
