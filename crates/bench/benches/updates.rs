//! Live-update benchmarks: estimate latency under a mixed update/estimate
//! stream, and the cost of keeping the catalog consistent at commit time.
//!
//! * `estimate_steady/*` — batched estimation, cache off, frozen graph:
//!   the pure compute baseline,
//! * `estimate_cached_steady/*` — same traffic against a warm LRU on a
//!   frozen graph: the all-hits ceiling,
//! * `estimate_under_updates/*` — each iteration buffers one effective
//!   edge update, commits (epoch bump + incremental catalog recount +
//!   cache invalidation) and re-estimates the workload: what a client
//!   pays when updates interleave with estimates,
//! * `commit_incremental/*` — one effective update + commit alone: the
//!   incremental maintenance path (only touched-label entries recount),
//! * `commit_durable/*` — the same commit with a write-ahead log
//!   attached: one WAL append + `fdatasync` before the ack. The log
//!   lives under `CEG_WAL_BENCH_DIR` when set (CI pins it to tmpfs so
//!   the bench measures the commit path, not the device's fsync floor,
//!   which on ext4 exceeds the whole commit budget by itself),
//! * `catalog_rebuild/*` — the from-scratch `MarkovTable::build` a
//!   non-incremental design would pay per commit, for contrast.
//!
//! Set `CEG_BENCH_SMOKE=1` for tiny sample counts (CI) and
//! `CRITERION_JSON=<path>` to capture the means.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ceg_bench::common;
use ceg_catalog::MarkovTable;
use ceg_graph::{LabeledGraph, VertexId};
use ceg_query::QueryGraph;
use ceg_service::{DatasetEntry, DatasetRegistry, Engine};
use ceg_workload::{Dataset, Workload};

/// An edge absent from the graph, to toggle (add on even steps, delete on
/// odd ones) so every commit is effective and bumps the epoch.
fn absent_edge(graph: &LabeledGraph) -> (VertexId, VertexId) {
    for s in 0..graph.num_vertices() as VertexId {
        for d in 0..graph.num_vertices() as VertexId {
            if !graph.has_edge(s, d, 0) {
                return (s, d);
            }
        }
    }
    unreachable!("relation 0 cannot be complete");
}

fn engine_for(graph: &LabeledGraph, cache_capacity: usize) -> (Engine, Arc<DatasetEntry>) {
    let registry = Arc::new(DatasetRegistry::new());
    let entry = registry.insert_graph("bench", graph.clone(), 2);
    (Engine::new(registry, cache_capacity), entry)
}

fn bench_updates(c: &mut Criterion) {
    let smoke = std::env::var("CEG_BENCH_SMOKE").is_ok();
    let (graph, workload) = common::setup(Dataset::Hetionet, Workload::Job, 2);
    let queries: Vec<QueryGraph> = workload.iter().map(|q| q.query.clone()).collect();
    let (src, dst) = absent_edge(&graph);

    let mut group = c.benchmark_group("updates");
    group.sample_size(if smoke { 2 } else { 10 });

    // Warm every engine once so the benches measure steady state, not
    // first-ever catalog fills.
    let (steady, _) = engine_for(&graph, 0);
    let (cached, _) = engine_for(&graph, 4096);
    let (live, live_entry) = engine_for(&graph, 4096);
    let (churn, churn_entry) = engine_for(&graph, 0);
    for engine in [&steady, &cached, &live, &churn] {
        engine.estimate_batch("bench", &queries).unwrap();
    }

    group.bench_function("estimate_steady/job", |b| {
        b.iter(|| black_box(steady.estimate_batch("bench", black_box(&queries)).unwrap()));
    });
    group.bench_function("estimate_cached_steady/job", |b| {
        b.iter(|| black_box(cached.estimate_batch("bench", black_box(&queries)).unwrap()));
    });

    let mut flip = false;
    group.bench_function("estimate_under_updates/job", |b| {
        b.iter(|| {
            if flip {
                live_entry.del_edge(src, dst, 0).unwrap();
            } else {
                live_entry.add_edge(src, dst, 0).unwrap();
            }
            flip = !flip;
            let outcome = live_entry.commit();
            debug_assert!(outcome.added + outcome.deleted == 1);
            black_box(live.estimate_batch("bench", black_box(&queries)).unwrap())
        });
    });

    let mut flip = false;
    group.bench_function("commit_incremental/job", |b| {
        b.iter(|| {
            if flip {
                churn_entry.del_edge(src, dst, 0).unwrap();
            } else {
                churn_entry.add_edge(src, dst, 0).unwrap();
            }
            flip = !flip;
            black_box(churn_entry.commit())
        });
    });

    // Same commit, now crash-safe: WAL append + fdatasync per COMMIT.
    let wal_dir = std::env::var_os("CEG_WAL_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let scratch = wal_dir.join(format!("ceg-bench-durable-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let (durable, durable_entry) = engine_for(&graph, 0);
    durable.estimate_batch("bench", &queries).unwrap();
    durable_entry
        .attach_durability(
            Arc::new(ceg_graph::vfs::OsStorage),
            scratch.join("bench.cegsnap"),
            scratch.join("bench.cegwal"),
        )
        .unwrap();
    let mut flip = false;
    group.bench_function("commit_durable/job", |b| {
        b.iter(|| {
            if flip {
                durable_entry.del_edge(src, dst, 0).unwrap();
            } else {
                durable_entry.add_edge(src, dst, 0).unwrap();
            }
            flip = !flip;
            black_box(durable_entry.commit())
        });
    });

    group.bench_function("catalog_rebuild/job", |b| {
        b.iter(|| black_box(MarkovTable::build(black_box(&graph), &queries, 2)));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
