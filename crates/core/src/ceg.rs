//! The generic cardinality estimation graph (Section 3).
//!
//! A CEG is a DAG whose vertices are sub-queries, with a designated bottom
//! (`∅`) and top (`Q`); each edge carries an *extension rate*. Every
//! bottom-to-top path is one estimation formula: the estimate is the
//! product of extension rates along the path. Concrete CEGs (CEG_O,
//! CEG_OCR; CEG_M is handled implicitly for scalability) build this
//! structure and the aggregation machinery below turns it into estimates.
//!
//! All aggregators are computed with dynamic programming over the DAG —
//! never by materializing the (potentially exponential) path set:
//!
//! * `max`/`min`/`avg` over all paths,
//! * the same restricted to maximum-hop or minimum-hop paths
//!   ((node, depth)-indexed DP),
//! * best-path extraction with parent pointers (for bound sketches),
//! * a capped, per-node-deduplicated enumeration of distinct path
//!   estimates for the P* oracle (Section 6.2.3).

use ceg_graph::FxHashSet;

/// One CEG edge: an extension from a smaller to a larger sub-query.
#[derive(Debug, Clone, Copy)]
pub struct CegEdge {
    pub from: u32,
    pub to: u32,
    /// Extension rate (a multiplier, ≥ 0).
    pub rate: f64,
    /// Caller-defined payload index (e.g. which extension pattern built
    /// this edge); opaque to the aggregation machinery.
    pub tag: u32,
}

/// Which set of bottom-to-top paths an estimator considers (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathLen {
    /// Only paths with the maximum number of hops.
    MaxHop,
    /// Only paths with the minimum number of hops.
    MinHop,
    /// Every bottom-to-top path.
    AllHops,
}

/// How the considered paths' estimates are combined (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggr {
    /// Largest estimate (the "pessimistic optimist").
    Max,
    /// Smallest estimate.
    Min,
    /// Average of all considered paths' estimates.
    Avg,
}

/// A (path-length, aggregator) pair — one of the paper's nine optimistic
/// estimators, e.g. `max-hop-max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Heuristic {
    pub path_len: PathLen,
    pub aggr: Aggr,
}

impl Heuristic {
    pub const fn new(path_len: PathLen, aggr: Aggr) -> Self {
        Heuristic { path_len, aggr }
    }

    /// All nine estimators, in the order the paper's figures plot them.
    pub fn all() -> [Heuristic; 9] {
        use Aggr::*;
        use PathLen::*;
        [
            Heuristic::new(MaxHop, Min),
            Heuristic::new(MinHop, Min),
            Heuristic::new(AllHops, Min),
            Heuristic::new(MaxHop, Avg),
            Heuristic::new(MinHop, Avg),
            Heuristic::new(AllHops, Avg),
            Heuristic::new(MaxHop, Max),
            Heuristic::new(MinHop, Max),
            Heuristic::new(AllHops, Max),
        ]
    }

    /// Display name, e.g. `max-hop-max` (matches the paper's labels).
    pub fn name(&self) -> String {
        let p = match self.path_len {
            PathLen::MaxHop => "max-hop",
            PathLen::MinHop => "min-hop",
            PathLen::AllHops => "all-hops",
        };
        let a = match self.aggr {
            Aggr::Max => "max",
            Aggr::Min => "min",
            Aggr::Avg => "avg",
        };
        format!("{p}-{a}")
    }
}

/// A finalized CEG DAG.
#[derive(Debug, Clone)]
pub struct Ceg {
    num_nodes: usize,
    bottom: u32,
    top: u32,
    edges: Vec<CegEdge>,
    /// Incoming edge indices per node.
    incoming: Vec<Vec<u32>>,
    /// Outgoing edge indices per node.
    outgoing: Vec<Vec<u32>>,
    /// Topological order (bottom first).
    topo: Vec<u32>,
}

impl Ceg {
    /// Build a CEG from raw edges. Panics if the edge set is cyclic.
    pub fn new(num_nodes: usize, bottom: u32, top: u32, edges: Vec<CegEdge>) -> Self {
        let mut incoming = vec![Vec::new(); num_nodes];
        let mut outgoing = vec![Vec::new(); num_nodes];
        for (i, e) in edges.iter().enumerate() {
            assert!((e.from as usize) < num_nodes && (e.to as usize) < num_nodes);
            assert!(e.rate >= 0.0, "extension rates must be non-negative");
            incoming[e.to as usize].push(i as u32);
            outgoing[e.from as usize].push(i as u32);
        }
        // Kahn topological sort.
        let mut indeg: Vec<usize> = incoming.iter().map(Vec::len).collect();
        let mut queue: Vec<u32> = (0..num_nodes as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut topo = Vec::with_capacity(num_nodes);
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &ei in &outgoing[v as usize] {
                let to = edges[ei as usize].to as usize;
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to as u32);
                }
            }
        }
        assert_eq!(topo.len(), num_nodes, "CEG must be acyclic");
        Ceg {
            num_nodes,
            bottom,
            top,
            edges,
            incoming,
            outgoing,
            topo,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn bottom(&self) -> u32 {
        self.bottom
    }

    pub fn top(&self) -> u32 {
        self.top
    }

    pub fn edges(&self) -> &[CegEdge] {
        &self.edges
    }

    /// Indices of the edges entering `node` (diagnostics / rendering).
    pub fn incoming_edges(&self, node: u32) -> &[u32] {
        &self.incoming[node as usize]
    }

    /// Indices of the edges leaving `node`.
    pub fn outgoing_edges(&self, node: u32) -> &[u32] {
        &self.outgoing[node as usize]
    }

    /// Hop count (number of edges) of the longest bottom-to-top path;
    /// `None` when the top is unreachable.
    pub fn max_hops(&self) -> Option<usize> {
        self.hops(true)
    }

    /// Hop count of the shortest bottom-to-top path.
    pub fn min_hops(&self) -> Option<usize> {
        self.hops(false)
    }

    fn hops(&self, maximize: bool) -> Option<usize> {
        let mut d = vec![None::<usize>; self.num_nodes];
        d[self.bottom as usize] = Some(0);
        for &v in &self.topo {
            let Some(dv) = d[v as usize] else { continue };
            for &ei in &self.outgoing[v as usize] {
                let to = self.edges[ei as usize].to as usize;
                let cand = dv + 1;
                let better = match d[to] {
                    None => true,
                    Some(cur) => {
                        if maximize {
                            cand > cur
                        } else {
                            cand < cur
                        }
                    }
                };
                if better {
                    d[to] = Some(cand);
                }
            }
        }
        d[self.top as usize]
    }

    /// Estimate under one of the nine heuristics; `None` if the top node is
    /// unreachable from the bottom (no complete formula exists).
    pub fn estimate(&self, h: Heuristic) -> Option<f64> {
        match h.path_len {
            PathLen::AllHops => self.estimate_all_hops(h.aggr),
            PathLen::MaxHop => {
                let target = self.max_hops()?;
                self.estimate_fixed_hops(h.aggr, target)
            }
            PathLen::MinHop => {
                let target = self.min_hops()?;
                self.estimate_fixed_hops(h.aggr, target)
            }
        }
    }

    fn estimate_all_hops(&self, aggr: Aggr) -> Option<f64> {
        match aggr {
            Aggr::Max | Aggr::Min => {
                let maximize = aggr == Aggr::Max;
                let mut val = vec![None::<f64>; self.num_nodes];
                val[self.bottom as usize] = Some(1.0);
                for &v in &self.topo {
                    let Some(base) = val[v as usize] else {
                        continue;
                    };
                    for &ei in &self.outgoing[v as usize] {
                        let e = self.edges[ei as usize];
                        let cand = base * e.rate;
                        let slot = &mut val[e.to as usize];
                        let better = match *slot {
                            None => true,
                            Some(cur) => {
                                if maximize {
                                    cand > cur
                                } else {
                                    cand < cur
                                }
                            }
                        };
                        if better {
                            *slot = Some(cand);
                        }
                    }
                }
                val[self.top as usize]
            }
            Aggr::Avg => {
                // sum of path products and path counts
                let mut sum = vec![0.0f64; self.num_nodes];
                let mut cnt = vec![0.0f64; self.num_nodes];
                sum[self.bottom as usize] = 1.0;
                cnt[self.bottom as usize] = 1.0;
                for &v in &self.topo {
                    if cnt[v as usize] == 0.0 {
                        continue;
                    }
                    for &ei in &self.outgoing[v as usize] {
                        let e = self.edges[ei as usize];
                        sum[e.to as usize] += sum[v as usize] * e.rate;
                        cnt[e.to as usize] += cnt[v as usize];
                    }
                }
                let (s, c) = (sum[self.top as usize], cnt[self.top as usize]);
                (c > 0.0).then(|| s / c)
            }
        }
    }

    fn estimate_fixed_hops(&self, aggr: Aggr, target: usize) -> Option<f64> {
        let d = target + 1;
        match aggr {
            Aggr::Max | Aggr::Min => {
                let maximize = aggr == Aggr::Max;
                let mut val = vec![vec![None::<f64>; d]; self.num_nodes];
                val[self.bottom as usize][0] = Some(1.0);
                for &v in &self.topo {
                    for depth in 0..d {
                        let Some(base) = val[v as usize][depth] else {
                            continue;
                        };
                        if depth + 1 > target {
                            continue;
                        }
                        for &ei in &self.outgoing[v as usize] {
                            let e = self.edges[ei as usize];
                            let cand = base * e.rate;
                            let slot = &mut val[e.to as usize][depth + 1];
                            let better = match *slot {
                                None => true,
                                Some(cur) => {
                                    if maximize {
                                        cand > cur
                                    } else {
                                        cand < cur
                                    }
                                }
                            };
                            if better {
                                *slot = Some(cand);
                            }
                        }
                    }
                }
                val[self.top as usize][target]
            }
            Aggr::Avg => {
                let mut sum = vec![vec![0.0f64; d]; self.num_nodes];
                let mut cnt = vec![vec![0.0f64; d]; self.num_nodes];
                sum[self.bottom as usize][0] = 1.0;
                cnt[self.bottom as usize][0] = 1.0;
                for &v in &self.topo {
                    for depth in 0..d.saturating_sub(1) {
                        if cnt[v as usize][depth] == 0.0 {
                            continue;
                        }
                        for &ei in &self.outgoing[v as usize] {
                            let e = self.edges[ei as usize];
                            sum[e.to as usize][depth + 1] += sum[v as usize][depth] * e.rate;
                            cnt[e.to as usize][depth + 1] += cnt[v as usize][depth];
                        }
                    }
                }
                let (s, c) = (
                    sum[self.top as usize][target],
                    cnt[self.top as usize][target],
                );
                (c > 0.0).then(|| s / c)
            }
        }
    }

    /// The concrete best (max or min) path under a hop restriction,
    /// returned as edge indices bottom → top. Used by the bound-sketch
    /// optimization, which needs the path itself. `None` if unreachable.
    pub fn best_path(&self, path_len: PathLen, maximize: bool) -> Option<Vec<u32>> {
        // (node, depth) DP with parent pointers; AllHops uses depth 0 only
        // conceptually but we reuse the layered DP with every depth valid.
        let max_depth = self.max_hops()?;
        let target = match path_len {
            PathLen::MaxHop => Some(max_depth),
            PathLen::MinHop => Some(self.min_hops()?),
            PathLen::AllHops => None,
        };
        let d = max_depth + 1;
        let mut val = vec![vec![None::<f64>; d + 1]; self.num_nodes];
        let mut parent = vec![vec![None::<u32>; d + 1]; self.num_nodes];
        val[self.bottom as usize][0] = Some(1.0);
        for &v in &self.topo {
            for depth in 0..=max_depth {
                let Some(base) = val[v as usize][depth] else {
                    continue;
                };
                for &ei in &self.outgoing[v as usize] {
                    let e = self.edges[ei as usize];
                    let cand = base * e.rate;
                    let slot = &mut val[e.to as usize][depth + 1];
                    let better = match *slot {
                        None => true,
                        Some(cur) => {
                            if maximize {
                                cand > cur
                            } else {
                                cand < cur
                            }
                        }
                    };
                    if better {
                        *slot = Some(cand);
                        parent[e.to as usize][depth + 1] = Some(ei);
                    }
                }
            }
        }
        // pick the ending depth
        let top = self.top as usize;
        let end_depth = match target {
            Some(t) => {
                val[top][t]?;
                t
            }
            None => {
                let mut best: Option<(f64, usize)> = None;
                for (depth, v) in val[top].iter().enumerate() {
                    if let Some(x) = v {
                        let better = match best {
                            None => true,
                            Some((bx, _)) => {
                                if maximize {
                                    *x > bx
                                } else {
                                    *x < bx
                                }
                            }
                        };
                        if better {
                            best = Some((*x, depth));
                        }
                    }
                }
                best?.1
            }
        };
        // walk parents back
        let mut path = Vec::with_capacity(end_depth);
        let (mut node, mut depth) = (self.top, end_depth);
        while depth > 0 {
            let ei = parent[node as usize][depth].expect("parent chain broken");
            path.push(ei);
            node = self.edges[ei as usize].from;
            depth -= 1;
        }
        debug_assert_eq!(node, self.bottom);
        path.reverse();
        Some(path)
    }

    /// Distinct path estimates (deduplicated per node, capped at
    /// `cap` values per node) — the estimate set the P* oracle chooses
    /// from. Cheap in practice: most CEGs produce a handful of distinct
    /// estimates even when the path count is astronomical.
    pub fn path_estimates(&self, cap: usize) -> Vec<f64> {
        let mut sets: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); self.num_nodes];
        sets[self.bottom as usize].insert(1.0f64.to_bits());
        for &v in &self.topo {
            if sets[v as usize].is_empty() {
                continue;
            }
            let vals: Vec<f64> = sets[v as usize]
                .iter()
                .map(|&b| f64::from_bits(b))
                .collect();
            for &ei in &self.outgoing[v as usize] {
                let e = self.edges[ei as usize];
                let to = e.to as usize;
                for &x in &vals {
                    if sets[to].len() >= cap {
                        break;
                    }
                    // round to ~10 significant digits to merge float dust
                    let y = x * e.rate;
                    let key = round_sig(y).to_bits();
                    sets[to].insert(key);
                }
            }
        }
        let mut out: Vec<f64> = sets[self.top as usize]
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }
}

fn round_sig(x: f64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let mag = x.abs().log10().floor();
    let scale = 10f64.powf(9.0 - mag);
    (x * scale).round() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond CEG: 0 = bottom, 3 = top, two 2-hop routes and one direct
    /// 1-hop edge.
    ///      0 → 1 → 3   rates 2, 3   (product 6)
    ///      0 → 2 → 3   rates 5, 7   (product 35)
    ///      0 → 3       rate 10      (product 10)
    fn diamond() -> Ceg {
        let e = |from, to, rate| CegEdge {
            from,
            to,
            rate,
            tag: 0,
        };
        Ceg::new(
            4,
            0,
            3,
            vec![
                e(0, 1, 2.0),
                e(1, 3, 3.0),
                e(0, 2, 5.0),
                e(2, 3, 7.0),
                e(0, 3, 10.0),
            ],
        )
    }

    #[test]
    fn hop_counts() {
        let c = diamond();
        assert_eq!(c.max_hops(), Some(2));
        assert_eq!(c.min_hops(), Some(1));
    }

    #[test]
    fn all_hops_aggregators() {
        let c = diamond();
        let est = |a| c.estimate(Heuristic::new(PathLen::AllHops, a)).unwrap();
        assert_eq!(est(Aggr::Max), 35.0);
        assert_eq!(est(Aggr::Min), 6.0);
        assert!((est(Aggr::Avg) - (6.0 + 35.0 + 10.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hop_restricted_aggregators() {
        let c = diamond();
        let est = |p, a| c.estimate(Heuristic::new(p, a)).unwrap();
        assert_eq!(est(PathLen::MaxHop, Aggr::Max), 35.0);
        assert_eq!(est(PathLen::MaxHop, Aggr::Min), 6.0);
        assert_eq!(est(PathLen::MinHop, Aggr::Max), 10.0);
        assert_eq!(est(PathLen::MinHop, Aggr::Min), 10.0);
        assert!((est(PathLen::MaxHop, Aggr::Avg) - 20.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_top_gives_none() {
        let c = Ceg::new(
            3,
            0,
            2,
            vec![CegEdge {
                from: 0,
                to: 1,
                rate: 1.0,
                tag: 0,
            }],
        );
        assert_eq!(
            c.estimate(Heuristic::new(PathLen::AllHops, Aggr::Max)),
            None
        );
        assert_eq!(c.max_hops(), None);
    }

    #[test]
    fn best_path_returns_edges() {
        let c = diamond();
        let p = c.best_path(PathLen::MaxHop, true).unwrap();
        assert_eq!(p.len(), 2);
        // the max 2-hop path is 0→2→3 (edges 2 and 3)
        assert_eq!(p, vec![2, 3]);
        let pmin = c.best_path(PathLen::AllHops, false).unwrap();
        // all-hops min is 0→1→3 with estimate 6
        assert_eq!(pmin, vec![0, 1]);
    }

    #[test]
    fn path_estimates_enumerates_distinct_values() {
        let c = diamond();
        let vals = c.path_estimates(100);
        assert_eq!(vals, vec![6.0, 10.0, 35.0]);
    }

    #[test]
    fn heuristic_names() {
        assert_eq!(
            Heuristic::new(PathLen::MaxHop, Aggr::Max).name(),
            "max-hop-max"
        );
        assert_eq!(Heuristic::all().len(), 9);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_ceg_panics() {
        let e = |from, to| CegEdge {
            from,
            to,
            rate: 1.0,
            tag: 0,
        };
        Ceg::new(2, 0, 1, vec![e(0, 1), e(1, 0)]);
    }

    #[test]
    fn zero_rate_paths() {
        let e = |from, to, rate| CegEdge {
            from,
            to,
            rate,
            tag: 0,
        };
        let c = Ceg::new(3, 0, 2, vec![e(0, 1, 0.0), e(1, 2, 5.0)]);
        assert_eq!(
            c.estimate(Heuristic::new(PathLen::AllHops, Aggr::Max)),
            Some(0.0)
        );
    }
}
