//! CEG_O — the optimistic cardinality estimation graph (Section 4.2).
//!
//! Vertices are the connected edge-subsets of the query (plus `∅`); an
//! edge `S → S′` exists when some *extension pattern* `E` in the Markov
//! table satisfies `E ⊇ D = S′ \ S` with intersection `I = E ∩ S` also in
//! the table; its rate is `|E| / |I|` — the average-degree (uniformity +
//! conditional independence) assumption of the optimistic estimators.
//!
//! Two rules from prior work restrict the edge set:
//! 1. *size-h numerators*: `|E| = min(h, |S′|)` — formulas always condition
//!    on the largest joins the table stores;
//! 2. *early cycle closing*: if any extension of `S` closes a cycle, only
//!    cycle-closing extensions of `S` are kept.

use ceg_catalog::MarkovTable;
use ceg_graph::FxHashMap;
use ceg_query::cycles::cyclomatic_number;
use ceg_query::{EdgeMask, QueryGraph};

use crate::ceg::{Ceg, CegEdge};

/// Metadata of one CEG_O edge: which extension pattern produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtInfo {
    /// The extension pattern `E` (a connected ≤ h-edge subset).
    pub ext: EdgeMask,
    /// The intersection `I = E ∩ S` (the conditioning sub-query).
    pub inter: EdgeMask,
    /// True if this edge closes at least one cycle (`cyc(S′) > cyc(S)`).
    pub closes_cycle: bool,
}

/// Construction options — the two path-restriction rules from prior work
/// (Section 4.2). Both default to on; the ablation harness toggles them
/// to quantify their effect.
#[derive(Debug, Clone, Copy)]
pub struct CegOOptions {
    /// Rule 1: numerators must be the largest stored joins.
    pub size_h_numerators: bool,
    /// Rule 2: close cycles as early as possible.
    pub early_cycle_closing: bool,
}

impl Default for CegOOptions {
    fn default() -> Self {
        CegOOptions {
            size_h_numerators: true,
            early_cycle_closing: true,
        }
    }
}

/// CEG_O of one query over one Markov table.
#[derive(Debug, Clone)]
pub struct CegO {
    ceg: Ceg,
    /// Node id → edge subset (node 0 is `∅`, last node is the full query).
    nodes: Vec<EdgeMask>,
    /// Edge tag → extension metadata.
    ext_info: Vec<ExtInfo>,
}

impl CegO {
    /// Build the CEG_O of `query` given a Markov table of size `h =
    /// table.h()`.
    pub fn build(query: &QueryGraph, table: &MarkovTable) -> Self {
        Self::build_with_weights(query, table, |_, _| None)
    }

    /// Build with explicit rule toggles (ablation studies).
    pub fn build_with_options(
        query: &QueryGraph,
        table: &MarkovTable,
        options: CegOOptions,
    ) -> Self {
        Self::build_full(query, table, options, |_, _| None)
    }

    /// Build with an optional per-edge weight override: `override_fn(S,
    /// info)` may replace the default `|E| / |I|` rate. CEG_OCR is exactly
    /// this CEG with cycle-closing edges overridden by closing rates
    /// (Section 4.3).
    pub fn build_with_weights(
        query: &QueryGraph,
        table: &MarkovTable,
        override_fn: impl FnMut(EdgeMask, &ExtInfo) -> Option<f64>,
    ) -> Self {
        Self::build_full(query, table, CegOOptions::default(), override_fn)
    }

    fn build_full(
        query: &QueryGraph,
        table: &MarkovTable,
        options: CegOOptions,
        mut override_fn: impl FnMut(EdgeMask, &ExtInfo) -> Option<f64>,
    ) -> Self {
        let h = table.h();
        let m = query.num_edges();
        assert!(m >= 1, "queries must have at least one edge");

        // Node set: ∅ + all connected subsets, in cardinality order.
        let mut nodes: Vec<EdgeMask> = vec![EdgeMask::empty()];
        nodes.extend(query.connected_subsets());
        let index: FxHashMap<EdgeMask, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &mask)| (mask, i as u32))
            .collect();
        let top_mask = query.full_mask();
        let top = index[&top_mask];

        // Candidate extension patterns: connected subsets of ≤ h edges.
        let ext_candidates = query.connected_subsets_up_to(h);

        let mut edges: Vec<CegEdge> = Vec::new();
        let mut ext_info: Vec<ExtInfo> = Vec::new();

        for (si, &s) in nodes.iter().enumerate() {
            if s == top_mask {
                continue;
            }
            let cyc_s = cyclomatic_number(query, s);
            let mut candidate_edges: Vec<(CegEdge, ExtInfo)> = Vec::new();
            for &e_mask in &ext_candidates {
                let d = e_mask.difference(s);
                if d.is_empty() {
                    continue;
                }
                let i_mask = e_mask.intersect(s);
                if s.is_empty() != i_mask.is_empty() {
                    // non-empty S must condition on a non-empty intersection
                    continue;
                }
                let s_next = s.union(d);
                // Rule 1: numerators use the largest joins available — the
                // first hop goes straight to a min(h, |Q|)-size sub-query,
                // later hops use exactly-h extension patterns.
                let required = if s.is_empty() {
                    h.min(m)
                } else {
                    h.min(s_next.len())
                };
                if options.size_h_numerators && e_mask.len() != required {
                    continue;
                }
                // S′ must be a connected sub-query (a CEG node).
                let Some(&to) = index.get(&s_next) else {
                    continue;
                };
                // I must be connected and stored; E must be stored.
                if !query.is_connected_mask(i_mask) {
                    continue;
                }
                let Some(card_e) = table.card_of_subquery(query, e_mask) else {
                    continue;
                };
                let Some(card_i) = table.card_of_subquery(query, i_mask) else {
                    continue;
                };
                let info = ExtInfo {
                    ext: e_mask,
                    inter: i_mask,
                    closes_cycle: cyclomatic_number(query, s_next) > cyc_s,
                };
                let default_rate = if card_e == 0 {
                    0.0
                } else {
                    card_e as f64 / card_i as f64
                };
                let rate = override_fn(s, &info).unwrap_or(default_rate);
                candidate_edges.push((
                    CegEdge {
                        from: si as u32,
                        to,
                        rate,
                        tag: 0, // assigned below
                    },
                    info,
                ));
            }
            // Rule 2: early cycle closing.
            let any_closing =
                options.early_cycle_closing && candidate_edges.iter().any(|(_, i)| i.closes_cycle);
            for (mut ce, info) in candidate_edges {
                if any_closing && !info.closes_cycle {
                    continue;
                }
                ce.tag = ext_info.len() as u32;
                ext_info.push(info);
                edges.push(ce);
            }
        }

        let ceg = Ceg::new(nodes.len(), 0, top, edges);
        CegO {
            ceg,
            nodes,
            ext_info,
        }
    }

    /// The underlying CEG (aggregation entry point).
    pub fn ceg(&self) -> &Ceg {
        &self.ceg
    }

    /// Node id → edge-subset mask.
    pub fn node_mask(&self, node: u32) -> EdgeMask {
        self.nodes[node as usize]
    }

    /// Extension metadata of an edge tag.
    pub fn ext_info(&self, tag: u32) -> &ExtInfo {
        &self.ext_info[tag as usize]
    }

    /// All nodes (masks), bottom first.
    pub fn nodes(&self) -> &[EdgeMask] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg::{Aggr, Heuristic, PathLen};
    use ceg_exec::count;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    /// A small graph with labels A=0, B=1, C=2, D=3, E=4 arranged so the
    /// running-example queries are non-empty.
    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(20);
        // A: 0..3 -> hub 4, B: 4 -> 5,6
        b.add_edge(0, 4, 0);
        b.add_edge(1, 4, 0);
        b.add_edge(2, 4, 0);
        b.add_edge(3, 4, 0);
        b.add_edge(4, 5, 1);
        b.add_edge(4, 6, 1);
        // C edges from 5 and 6
        b.add_edge(5, 7, 2);
        b.add_edge(5, 8, 2);
        b.add_edge(6, 9, 2);
        // D edges
        b.add_edge(5, 10, 3);
        b.add_edge(6, 10, 3);
        b.add_edge(6, 11, 3);
        // E edges
        b.add_edge(5, 12, 4);
        b.add_edge(6, 12, 4);
        b.build()
    }

    #[test]
    fn exact_for_queries_that_fit_in_table() {
        // a query of exactly h edges is answered exactly
        let g = toy();
        let q = templates::path(2, &[0, 1]); // A -> B
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        for h in Heuristic::all() {
            let est = ceg.ceg().estimate(h).unwrap();
            assert!((est - count(&g, &q) as f64).abs() < 1e-9, "{}", h.name());
        }
    }

    #[test]
    fn three_path_estimate_is_markov_formula() {
        // h=2 on a 3-path: single formula |AB|·|BC|/|B|
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        let ab = count(&g, &templates::path(2, &[0, 1])) as f64;
        let bc = count(&g, &templates::path(2, &[1, 2])) as f64;
        let b_card = g.label_count(1) as f64;
        // paths: start at AB then extend C, or start at BC then extend A;
        // both give the same estimate by symmetry of the formula
        let expect = ab * bc / b_card;
        let est = ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::AllHops, Aggr::Max))
            .unwrap();
        assert!((est - expect).abs() < 1e-9, "est={est} expect={expect}");
    }

    #[test]
    fn q5f_has_multiple_distinct_estimates() {
        let g = toy();
        let q = templates::q5f(&[0, 1, 2, 3, 4]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        let vals = ceg.ceg().path_estimates(10_000);
        assert!(vals.len() >= 2, "expected multiple estimates, got {vals:?}");
        // max-aggr ≥ min-aggr
        let max = ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::AllHops, Aggr::Max))
            .unwrap();
        let min = ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::AllHops, Aggr::Min))
            .unwrap();
        assert!(max >= min);
        assert_eq!(vals.first().copied().unwrap(), min);
        assert_eq!(vals.last().copied().unwrap(), max);
    }

    #[test]
    fn h3_creates_hop_length_choices() {
        // with h=3 on Q5f, short-hop (2 hops) and long-hop (3 hops) paths
        // both exist (Figure 3)
        let g = toy();
        let q = templates::q5f(&[0, 1, 2, 3, 4]);
        let t = MarkovTable::build_for_query(&g, &q, 3);
        let ceg = CegO::build(&q, &t);
        let max_h = ceg.ceg().max_hops().unwrap();
        let min_h = ceg.ceg().min_hops().unwrap();
        assert!(max_h > min_h, "max={max_h} min={min_h}");
    }

    #[test]
    fn first_hop_uses_full_h_patterns() {
        let g = toy();
        let q = templates::q5f(&[0, 1, 2, 3, 4]);
        let t = MarkovTable::build_for_query(&g, &q, 3);
        let ceg = CegO::build(&q, &t);
        for e in ceg.ceg().edges() {
            if e.from == ceg.ceg().bottom() {
                let info = ceg.ext_info(e.tag);
                assert_eq!(info.ext.len(), 3, "first hops must be 3-patterns");
                assert!(info.inter.is_empty());
            }
        }
    }

    #[test]
    fn early_cycle_closing_prunes_non_closing_edges() {
        // triangle with h=2: once S = two edges of the triangle, the only
        // extension offered must close the cycle.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 2);
        b.add_edge(3, 4, 0);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let q = ceg_query::QueryGraph::new(
            3,
            vec![
                ceg_query::QueryEdge::new(0, 1, 0),
                ceg_query::QueryEdge::new(1, 2, 1),
                ceg_query::QueryEdge::new(0, 2, 2),
            ],
        );
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        // every edge into the top node must be cycle-closing
        for e in ceg.ceg().edges() {
            if e.to == ceg.ceg().top() {
                assert!(ceg.ext_info(e.tag).closes_cycle);
            }
        }
        // and estimates exist
        assert!(ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::AllHops, Aggr::Max))
            .is_some());
    }

    #[test]
    fn weight_override_changes_rates() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build_with_weights(&q, &t, |_, _| Some(1.0));
        let est = ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::AllHops, Aggr::Max))
            .unwrap();
        assert_eq!(est, 1.0);
    }

    #[test]
    fn zero_count_subquery_estimates_zero() {
        let g = toy();
        // B -> A path never matches (no A edge leaves B targets)
        let q = templates::path(3, &[1, 0, 1]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        let est = ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::AllHops, Aggr::Max))
            .unwrap();
        assert_eq!(est, 0.0);
    }
}
