//! The CBS pessimistic estimator (Cai, Balazinska, Suciu), Section 5.2.
//!
//! CBS enumerates *coverages* — assignments of each query attribute to a
//! relation that "covers" it, where every relation covers 0, `|A_i| - 1`,
//! or `|A_i|` of its attributes — and evaluates each coverage's *bounding
//! formula* `Σ_i log deg(Y_i, R_i)` (`Y_i` = the uncovered attributes of
//! `R_i`). The CBS bound is the minimum over coverages.
//!
//! The paper proves (Appendix B) that on acyclic queries over binary
//! relations CBS is *identical* to MOLP, so BFG/FCG are a brute-force
//! combinatorial MOLP solver; on cyclic queries CBS can be **unsafe**
//! (Appendix C gives a counterexample, reproduced in our tests). Both
//! facts are verified in this module's test suite.

use ceg_catalog::DegreeStats;
use ceg_query::{QueryGraph, VarId};

/// One coverage: for each query edge, which of its attributes it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCover {
    /// The relation is unused by the formula.
    None,
    /// Covers only its source attribute (uncovered = dst ⇒ cost is the
    /// max number of sources per destination, `deg(dst, R)`).
    Src,
    /// Covers only its destination attribute.
    Dst,
    /// Covers both attributes (cost `|R|`).
    Both,
}

/// A complete coverage assignment with its bounding-formula cost.
#[derive(Debug, Clone)]
pub struct BoundingFormula {
    pub covers: Vec<EdgeCover>,
    /// `Σ log₂ deg(Y_i, R_i)` in natural log.
    pub cost_ln: f64,
}

impl BoundingFormula {
    /// The bound in linear space.
    pub fn bound(&self) -> f64 {
        self.cost_ln.exp()
    }
}

/// Enumerate every feasible coverage of `query` (each attribute covered at
/// least once) and return the corresponding bounding formulas.
///
/// This is the brute-force BFG/FCG of reference \[5\]: exponential in the
/// number of attributes, fine for the paper's query sizes.
pub fn bounding_formulas(query: &QueryGraph, stats: &DegreeStats) -> Vec<BoundingFormula> {
    let m = query.num_edges();
    assert!(m <= 16, "CBS cover enumeration limited to 16 relations");
    let mut out = Vec::new();
    let mut covers = vec![EdgeCover::None; m];
    enumerate_covers(query, stats, 0, &mut covers, &mut out);
    out
}

fn enumerate_covers(
    query: &QueryGraph,
    stats: &DegreeStats,
    i: usize,
    covers: &mut Vec<EdgeCover>,
    out: &mut Vec<BoundingFormula>,
) {
    if i == query.num_edges() {
        // feasibility: every attribute covered
        let mut covered = 0u32;
        for (c, e) in covers.iter().zip(query.edges()) {
            match c {
                EdgeCover::None => {}
                EdgeCover::Src => covered |= 1 << e.src,
                EdgeCover::Dst => covered |= 1 << e.dst,
                EdgeCover::Both => covered |= (1 << e.src) | (1 << e.dst),
            }
        }
        if covered != query.all_vars() {
            return;
        }
        let mut cost = 0.0f64;
        for (c, e) in covers.iter().zip(query.edges()) {
            let s = stats.label(e.label);
            let ln = |v: usize| (v.max(1) as f64).ln();
            cost += match c {
                EdgeCover::None => 0.0,
                // covered {src} ⇒ uncovered Y = {dst}: deg(dst, R) = max
                // occurrences of a dst value = max in-degree
                EdgeCover::Src => ln(s.max_in_degree),
                EdgeCover::Dst => ln(s.max_out_degree),
                EdgeCover::Both => ln(s.cardinality),
            };
            if s.cardinality == 0 {
                cost = f64::NEG_INFINITY; // empty relation ⇒ bound 0
            }
        }
        out.push(BoundingFormula {
            covers: covers.clone(),
            cost_ln: cost,
        });
        return;
    }
    for c in [
        EdgeCover::None,
        EdgeCover::Src,
        EdgeCover::Dst,
        EdgeCover::Both,
    ] {
        covers[i] = c;
        enumerate_covers(query, stats, i + 1, covers, out);
    }
    covers[i] = EdgeCover::None;
}

/// The CBS bound: the minimum bounding formula over all coverages.
/// `f64::INFINITY` if no feasible coverage exists (cannot happen for
/// connected queries).
pub fn cbs_bound(query: &QueryGraph, stats: &DegreeStats) -> f64 {
    bounding_formulas(query, stats)
        .into_iter()
        .map(|f| f.bound())
        .fold(f64::INFINITY, f64::min)
}

/// True if `var` is covered by the formula through edge `i`.
pub fn covers_var(query: &QueryGraph, covers: &[EdgeCover], i: usize, var: VarId) -> bool {
    let e = query.edge(i);
    match covers[i] {
        EdgeCover::None => false,
        EdgeCover::Src => e.src == var,
        EdgeCover::Dst => e.dst == var,
        EdgeCover::Both => e.src == var || e.dst == var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg_m::{molp_bound, MolpInstance};
    use ceg_exec::count;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(12);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(3, 2, 0);
        b.add_edge(1, 4, 1);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 5, 1);
        b.add_edge(4, 6, 2);
        b.add_edge(4, 7, 2);
        b.add_edge(5, 7, 2);
        b.build()
    }

    #[test]
    fn cbs_upper_bounds_acyclic_queries() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(2, &[1, 2]),
        ] {
            let bound = cbs_bound(&q, &stats);
            let truth = count(&g, &q) as f64;
            assert!(
                bound >= truth - 1e-9,
                "bound {bound} < truth {truth} for {q}"
            );
        }
    }

    #[test]
    fn appendix_b_cbs_equals_molp_on_acyclic_binary() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::path(4, &[0, 1, 2, 1]),
            templates::star(3, &[0, 1, 2]),
            templates::q5f(&[0, 1, 2, 2, 1]),
            templates::tree_depth(4, 3, &[0, 1, 2, 0]),
        ] {
            let cbs = cbs_bound(&q, &stats);
            let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
            assert!(
                (cbs.ln() - molp.ln()).abs() < 1e-6,
                "CBS {cbs} != MOLP {molp} on acyclic {q}"
            );
        }
    }

    #[test]
    fn molp_never_exceeds_cbs_on_acyclic() {
        // Appendix B: MOLP is at least as tight as CBS on acyclic queries.
        // (On cyclic queries CBS may be *below* MOLP because its covers
        // can be unsafe — see `appendix_c_counterexample` below.)
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [templates::path(3, &[0, 1, 0]), templates::star(2, &[0, 2])] {
            let cbs = cbs_bound(&q, &stats);
            let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
            assert!(molp <= cbs + 1e-9, "MOLP {molp} > CBS {cbs} for {q}");
        }
    }

    #[test]
    fn appendix_c_counterexample_cbs_unsafe_on_cycles() {
        // identity relations: R = S = T = {(i, i)}; the triangle has n
        // matches but the (a→R, b→S, c→T) coverage costs
        // deg_in(R)·deg_in(S)·deg_in(T) = 1 — an *underestimate*.
        let n = 8u32;
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge(i, i, 0);
            b.add_edge(i, i, 1);
            b.add_edge(i, i, 2);
        }
        let g = b.build();
        let q = templates::cycle(3, &[0, 1, 2]);
        let stats = DegreeStats::build_base(&g);
        let cbs = cbs_bound(&q, &stats);
        let truth = count(&g, &q) as f64;
        assert!(truth >= n as f64);
        assert!(
            cbs < truth,
            "expected the CBS bound ({cbs}) to underestimate the truth ({truth})"
        );
        // MOLP stays safe on the same instance
        let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
        assert!(molp >= truth - 1e-9, "MOLP {molp} must cover truth {truth}");
    }

    #[test]
    fn formulas_cover_every_attribute() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        for f in bounding_formulas(&q, &stats) {
            let mut covered = 0u32;
            for i in 0..q.num_edges() {
                for v in 0..q.num_vars() {
                    if covers_var(&q, &f.covers, i, v) {
                        covered |= 1 << v;
                    }
                }
            }
            assert_eq!(covered, q.all_vars());
        }
    }

    #[test]
    fn every_formula_upper_bounds_on_acyclic() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        let truth = count(&g, &q) as f64;
        for f in bounding_formulas(&q, &stats) {
            assert!(f.bound() >= truth - 1e-9, "formula {:?}", f.covers);
        }
    }
}
