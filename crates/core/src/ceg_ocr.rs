//! CEG_OCR — the optimistic CEG with cycle-closing rates (Section 4.3).
//!
//! CEG_O breaks cycles longer than the Markov-table size `h` into paths,
//! which makes its estimates badly pessimistic on real graphs (paths vastly
//! outnumber cycles). CEG_OCR keeps CEG_O's vertices and edges but, when an
//! extension closes a cycle longer than `h`, replaces the average-degree
//! rate with the sampled closing probability `P(E_{i-1} * E_{i+1} | E_i)`
//! from a [`CcrTable`].

use ceg_catalog::{CcrTable, MarkovTable};
use ceg_query::cycles::simple_cycles;
use ceg_query::{EdgeMask, QueryGraph};

use crate::ceg_o::CegO;

/// Build the CEG_OCR of `query`. Cycle-closing single-edge extensions that
/// close a cycle longer than `table.h()` take their rate from `ccr`;
/// everything else keeps the CEG_O rate.
pub fn build_ceg_ocr(query: &QueryGraph, table: &MarkovTable, ccr: &CcrTable) -> CegO {
    let h = table.h();
    let cycles = simple_cycles(query);
    CegO::build_with_weights(query, table, |s, info| {
        if !info.closes_cycle {
            return None;
        }
        let d = info.ext.difference(s);
        if d.len() != 1 {
            // multi-edge extensions that close cycles keep the CEG_O rate;
            // the paper's construction replaces only the final closing hop
            return None;
        }
        let close_idx = d.iter().next().unwrap();
        let s_next = s.union(d);
        // the cycles closed by this hop, fully contained in S ∪ {d}
        let mut rate: Option<f64> = None;
        for cyc in &cycles {
            if cyc.len() <= h || !cyc.contains(close_idx) {
                continue;
            }
            if !cyc.is_subset_of(s_next) {
                continue;
            }
            if !cyc.remove(close_idx).is_subset_of(s) {
                continue;
            }
            if let Some(key) = CcrTable::key_for_closing(query, *cyc, close_idx) {
                if let Some(r) = ccr.rate(&key) {
                    // if several long cycles close simultaneously, assume
                    // independence and multiply their closing probabilities
                    rate = Some(rate.unwrap_or(1.0) * r);
                }
            }
        }
        rate
    })
}

/// Convenience: which single query edges would use a CCR rate somewhere in
/// the CEG (useful for diagnostics and tests).
pub fn closing_edges(query: &QueryGraph, h: usize) -> EdgeMask {
    let mut mask = EdgeMask::empty();
    for cyc in simple_cycles(query) {
        if cyc.len() > h {
            mask = mask.union(cyc);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg::{Aggr, Heuristic, PathLen};
    use crate::ceg_o::CegO;
    use ceg_exec::count;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    /// Sparse 4-cycle structure: many 4-paths, few 4-cycles.
    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(64);
        // a grid of 4-paths 0→1→2→3 with labels 0..=3, only some closing
        for i in 0..12u32 {
            let base = 4 * i;
            b.add_edge(base, base + 1, 0);
            b.add_edge(base + 1, base + 2, 1);
            b.add_edge(base + 2, base + 3, 2);
            if i % 3 == 0 {
                b.add_edge(base + 3, base, 3); // closes the cycle sometimes
            } else {
                b.add_edge(base + 3, 48 + i, 3); // dangling, breaks the cycle
            }
        }
        b.build()
    }

    fn four_cycle() -> ceg_query::QueryGraph {
        templates::cycle(4, &[0, 1, 2, 3])
    }

    #[test]
    fn ocr_reduces_overestimation_on_large_cycles() {
        let g = toy();
        let q = four_cycle();
        let qs = [q.clone()];
        let table = MarkovTable::build(&g, &qs, 2);
        let ccr = CcrTable::build(&g, &qs, 2000, 11);

        let ceg_o = CegO::build(&q, &table);
        let ceg_ocr = build_ceg_ocr(&q, &table, &ccr);
        let h = Heuristic::new(PathLen::MaxHop, Aggr::Max);
        let est_o = ceg_o.ceg().estimate(h).unwrap();
        let est_ocr = ceg_ocr.ceg().estimate(h).unwrap();
        let truth = count(&g, &q) as f64;
        assert!(truth > 0.0);
        // CEG_O estimates the broken 4-path and overestimates; the CCR
        // correction must bring the estimate closer to the truth.
        assert!(
            est_o > truth,
            "CEG_O should overestimate: {est_o} vs {truth}"
        );
        assert!(
            (est_ocr.max(1e-12).ln() - truth.ln()).abs() < (est_o.ln() - truth.ln()).abs(),
            "OCR {est_ocr} not closer to {truth} than O {est_o}"
        );
    }

    #[test]
    fn ocr_equals_o_on_acyclic_queries() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let qs = [q.clone()];
        let table = MarkovTable::build(&g, &qs, 2);
        let ccr = CcrTable::build(&g, &qs, 100, 3);
        let o = CegO::build(&q, &table);
        let ocr = build_ceg_ocr(&q, &table, &ccr);
        for h in Heuristic::all() {
            assert_eq!(o.ceg().estimate(h), ocr.ceg().estimate(h), "{}", h.name());
        }
    }

    #[test]
    fn closing_edges_of_four_cycle() {
        let q = four_cycle();
        assert_eq!(closing_edges(&q, 3), q.full_mask());
        assert_eq!(closing_edges(&q, 4), EdgeMask::empty());
    }

    #[test]
    fn ocr_rates_are_at_most_one_on_closing_hops() {
        let g = toy();
        let q = four_cycle();
        let qs = [q.clone()];
        let table = MarkovTable::build(&g, &qs, 2);
        let ccr = CcrTable::build(&g, &qs, 500, 5);
        let ocr = build_ceg_ocr(&q, &table, &ccr);
        for e in ocr.ceg().edges() {
            let info = ocr.ext_info(e.tag);
            if info.closes_cycle && e.to == ocr.ceg().top() {
                assert!(e.rate <= 1.0 + 1e-9, "closing rate {} > 1", e.rate);
            }
        }
    }
}
