//! The P* oracle estimator (Section 6.2.3).
//!
//! A thought experiment measuring the headroom of the CEG framework: for
//! each query, an oracle picks the bottom-to-top path whose estimate is
//! closest (in q-error) to the true cardinality. Real estimators cannot do
//! this — P* is the lower envelope any path-picking heuristic could reach.

use crate::ceg::Ceg;

/// Default cap on distinct per-node estimates during enumeration.
pub const DEFAULT_CAP: usize = 100_000;

/// The estimate of the best path for a query with true cardinality
/// `truth`; `None` if the CEG has no complete path.
pub fn oracle_estimate(ceg: &Ceg, truth: f64, cap: usize) -> Option<f64> {
    let estimates = ceg.path_estimates(cap);
    if estimates.is_empty() {
        return None;
    }
    estimates
        .into_iter()
        .min_by(|&a, &b| qerror(a, truth).total_cmp(&qerror(b, truth)))
}

/// The q-error `max(c/e, e/c)` with the usual conventions for zeros:
/// exact zeros match zero truth perfectly; otherwise zero on either side
/// is infinitely wrong.
pub fn qerror(estimate: f64, truth: f64) -> f64 {
    if truth <= 0.0 && estimate <= 0.0 {
        return 1.0;
    }
    if truth <= 0.0 || estimate <= 0.0 {
        return f64::INFINITY;
    }
    (estimate / truth).max(truth / estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg::CegEdge;

    fn diamond() -> Ceg {
        let e = |from, to, rate| CegEdge {
            from,
            to,
            rate,
            tag: 0,
        };
        Ceg::new(
            4,
            0,
            3,
            vec![
                e(0, 1, 2.0),
                e(1, 3, 3.0), // path estimate 6
                e(0, 2, 5.0),
                e(2, 3, 7.0),  // path estimate 35
                e(0, 3, 10.0), // path estimate 10
            ],
        )
    }

    #[test]
    fn oracle_picks_closest_path() {
        let c = diamond();
        assert_eq!(oracle_estimate(&c, 9.0, 100), Some(10.0));
        assert_eq!(oracle_estimate(&c, 5.0, 100), Some(6.0));
        assert_eq!(oracle_estimate(&c, 100.0, 100), Some(35.0));
    }

    #[test]
    fn oracle_dominates_every_heuristic() {
        use crate::ceg::Heuristic;
        let c = diamond();
        for truth in [1.0, 6.0, 12.0, 50.0] {
            let star = qerror(oracle_estimate(&c, truth, 100).unwrap(), truth);
            for h in Heuristic::all() {
                if let Some(est) = c.estimate(h) {
                    // avg-aggr may produce a value not on any single path,
                    // so compare only against the path-valued aggregators
                    if h.aggr != crate::ceg::Aggr::Avg {
                        assert!(
                            star <= qerror(est, truth) + 1e-12,
                            "oracle beaten by {} at truth {truth}",
                            h.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn qerror_conventions() {
        assert_eq!(qerror(10.0, 10.0), 1.0);
        assert_eq!(qerror(20.0, 10.0), 2.0);
        assert_eq!(qerror(5.0, 10.0), 2.0);
        assert_eq!(qerror(0.0, 0.0), 1.0);
        assert_eq!(qerror(0.0, 5.0), f64::INFINITY);
        assert_eq!(qerror(5.0, 0.0), f64::INFINITY);
    }
}
