//! A small dense simplex solver.
//!
//! The pessimistic bounds are defined by linear programs (MOLP, DBPLP, the
//! AGM fractional edge cover). The paper's central theoretical result
//! (Theorem 5.1) is that MOLP needs *no* LP solver — it is a shortest path
//! in CEG_M. We still implement the LPs literally so that tests can verify
//! the theorem, and to compute DBPLP and AGM, which are not path problems.
//!
//! The solver handles the standard primal form
//!
//! ```text
//!   maximize c·x   subject to  A x ≤ b,  x ≥ 0,  b ≥ 0
//! ```
//!
//! (origin-feasible, so a single phase suffices) with Bland's rule for
//! anti-cycling. Minimization problems with `A x ≥ b` constraints (DBPLP,
//! AGM) are solved through their LP duals, which are origin-feasible in
//! this form. Problem sizes here are tiny (tens of variables, hundreds of
//! constraints), so a dense tableau is the simplest correct choice.

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal objective value and primal solution.
    Optimal { objective: f64, x: Vec<f64> },
    /// The objective is unbounded above.
    Unbounded,
}

impl LpResult {
    /// The optimal objective; panics if unbounded.
    pub fn objective(&self) -> f64 {
        match self {
            LpResult::Optimal { objective, .. } => *objective,
            LpResult::Unbounded => panic!("LP is unbounded"),
        }
    }
}

/// Maximize `c·x` subject to `A x ≤ b`, `x ≥ 0`, with `b ≥ 0`.
///
/// `a` is row-major: `a[i]` is the coefficient row of constraint `i`.
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpResult {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m, "one bound per constraint");
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "constraint {i} has wrong arity");
        assert!(
            b[i] >= -1e-12,
            "standard-form solver requires b >= 0 (b[{i}] = {})",
            b[i]
        );
    }

    // Tableau: m rows × (n + m + 1) columns (variables, slacks, rhs).
    let cols = n + m + 1;
    let mut t = vec![vec![0.0f64; cols]; m + 1];
    for i in 0..m {
        t[i][..n].copy_from_slice(&a[i]);
        t[i][n + i] = 1.0;
        t[i][cols - 1] = b[i].max(0.0);
    }
    // Objective row: maximize c·x → row holds -c.
    for j in 0..n {
        t[m][j] = -c[j];
    }

    // basis[i] = variable index basic in row i (initially the slacks).
    let mut basis: Vec<usize> = (n..n + m).collect();

    const EPS: f64 = 1e-9;
    let max_iters = 50_000usize;
    for _ in 0..max_iters {
        // Bland's rule: entering variable = smallest index with negative
        // reduced cost.
        let Some(pivot_col) = (0..n + m).find(|&j| t[m][j] < -EPS) else {
            // Optimal.
            let mut x = vec![0.0f64; n];
            for i in 0..m {
                if basis[i] < n {
                    x[basis[i]] = t[i][cols - 1];
                }
            }
            return LpResult::Optimal {
                objective: t[m][cols - 1],
                x,
            };
        };

        // Ratio test; Bland tie-break on smallest basis variable index.
        let mut pivot_row: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][pivot_col] > EPS {
                let ratio = t[i][cols - 1] / t[i][pivot_col];
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && pivot_row.is_some_and(|r| basis[i] < basis[r]));
                if better {
                    best_ratio = ratio;
                    pivot_row = Some(i);
                }
            }
        }
        let Some(r) = pivot_row else {
            return LpResult::Unbounded;
        };

        // Pivot.
        let pv = t[r][pivot_col];
        for v in &mut t[r] {
            *v /= pv;
        }
        let pivot_row_vals = t[r].clone();
        for (i, row) in t.iter_mut().enumerate() {
            if i != r {
                let f = row[pivot_col];
                if f.abs() > 0.0 {
                    for (v, pvv) in row.iter_mut().zip(&pivot_row_vals) {
                        *v -= f * pvv;
                    }
                }
            }
        }
        basis[r] = pivot_col;
    }
    panic!("simplex failed to converge within {max_iters} iterations");
}

/// Minimize `c·x` subject to `A x ≥ b`, `x ≥ 0`, with `b ≥ 0`, `c ≥ 0`,
/// solved through the dual `max b·y  s.t.  Aᵀ y ≤ c, y ≥ 0`.
///
/// Returns the optimal objective (`f64::INFINITY` would indicate an
/// infeasible primal, which cannot happen here because `x` large enough is
/// always feasible when every attribute is covered; an unbounded dual is
/// reported as `None`).
pub fn minimize_covering(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Option<f64> {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m);
    // Build the transpose.
    let mut at = vec![vec![0.0f64; m]; n];
    for i in 0..m {
        for j in 0..n {
            at[j][i] = a[i][j];
        }
    }
    match maximize(b, &at, c) {
        LpResult::Optimal { objective, .. } => Some(objective),
        LpResult::Unbounded => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6)
        let r = maximize(
            &[3.0, 5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        );
        match r {
            LpResult::Optimal { objective, x } => {
                assert_close(objective, 36.0);
                assert_close(x[0], 2.0);
                assert_close(x[1], 6.0);
            }
            _ => panic!("expected optimal"),
        }
    }

    #[test]
    fn unbounded_detected() {
        // max x with no constraints binding x
        let r = maximize(&[1.0], &[vec![-1.0]], &[1.0]);
        assert_eq!(r, LpResult::Unbounded);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // classic degenerate instance
        let r = maximize(
            &[10.0, -57.0, -9.0, -24.0],
            &[
                vec![0.5, -5.5, -2.5, 9.0],
                vec![0.5, -1.5, -0.5, 1.0],
                vec![1.0, 0.0, 0.0, 0.0],
            ],
            &[0.0, 0.0, 1.0],
        );
        assert_close(r.objective(), 1.0);
    }

    #[test]
    fn zero_objective_at_origin() {
        let r = maximize(&[-1.0, -1.0], &[vec![1.0, 1.0]], &[5.0]);
        assert_close(r.objective(), 0.0);
    }

    #[test]
    fn covering_min() {
        // min x + y s.t. x + y ≥ 2, x ≥ 1 → 2
        let v =
            minimize_covering(&[1.0, 1.0], &[vec![1.0, 1.0], vec![1.0, 0.0]], &[2.0, 1.0]).unwrap();
        assert_close(v, 2.0);
    }

    #[test]
    fn covering_min_fractional() {
        // AGM-style: triangle fractional edge cover: min w1+w2+w3,
        // each attribute covered by two relations: w_i + w_j ≥ 1 → 3/2.
        let v = minimize_covering(
            &[1.0, 1.0, 1.0],
            &[
                vec![1.0, 0.0, 1.0],
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
            ],
            &[1.0, 1.0, 1.0],
        )
        .unwrap();
        assert_close(v, 1.5);
    }

    #[test]
    fn equality_via_pair_of_inequalities() {
        // max x s.t. x ≤ 3 (and x ≥ 0 implicit) → 3
        let r = maximize(&[1.0], &[vec![1.0]], &[3.0]);
        assert_close(r.objective(), 3.0);
    }
}
