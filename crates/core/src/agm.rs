//! The AGM bound (Atserias–Grohe–Marx): the fractional-edge-cover upper
//! bound using only relation cardinalities.
//!
//! ```text
//!   minimize Σ_i w_i · log|R_i|
//!   s.t.     Σ_{i : a ∈ A_i} w_i ≥ 1      ∀ attributes a
//!            w ≥ 0
//! ```
//!
//! MOLP refines AGM with degree information, so `MOLP ≤ AGM` always
//! (verified by tests). Solved through the covering dual in [`crate::lp`].

use ceg_catalog::DegreeStats;
use ceg_query::QueryGraph;

use crate::lp;

/// The AGM bound in linear space.
pub fn agm_bound(query: &QueryGraph, stats: &DegreeStats) -> f64 {
    let m = query.num_edges();
    let nv = query.num_vars() as usize;
    let mut c = Vec::with_capacity(m);
    for e in query.edges() {
        let card = stats.label(e.label).cardinality;
        if card == 0 {
            return 0.0;
        }
        c.push((card as f64).ln());
    }
    // coverage constraints: one per attribute
    let mut rows = Vec::with_capacity(nv);
    let mut b = Vec::with_capacity(nv);
    for v in 0..query.num_vars() {
        let mut row = vec![0.0; m];
        for (i, e) in query.edges().iter().enumerate() {
            if e.touches(v) {
                row[i] = 1.0;
            }
        }
        rows.push(row);
        b.push(1.0);
    }
    match lp::minimize_covering(&c, &rows, &b) {
        Some(obj) => obj.exp(),
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg_m::{molp_bound, MolpInstance};
    use ceg_exec::count;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(12);
        for (s, d, l) in [
            (0, 1, 0),
            (0, 2, 0),
            (3, 2, 0),
            (1, 4, 1),
            (2, 4, 1),
            (2, 5, 1),
            (4, 6, 2),
            (4, 7, 2),
            (5, 7, 2),
        ] {
            b.add_edge(s, d, l);
        }
        b.build()
    }

    #[test]
    fn agm_of_path_is_product_of_cards() {
        // acyclic 2-path: the minimum fractional edge cover takes both
        // relations fully → |R_0| · |R_1|
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        let agm = agm_bound(&q, &stats);
        let expect = (g.label_count(0) * g.label_count(1)) as f64;
        assert!((agm - expect).abs() / expect < 1e-6, "agm {agm}");
    }

    #[test]
    fn agm_of_triangle_is_sqrt_product() {
        // triangle: optimal fractional cover weight 1/2 each →
        // sqrt(|R||S||T|)
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::cycle(3, &[0, 1, 2]);
        let agm = agm_bound(&q, &stats);
        let expect = ((g.label_count(0) * g.label_count(1) * g.label_count(2)) as f64).sqrt();
        assert!(
            (agm - expect).abs() / expect < 1e-6,
            "agm {agm} expect {expect}"
        );
    }

    #[test]
    fn agm_upper_bounds_truth() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [
            templates::path(3, &[0, 1, 2]),
            templates::star(2, &[0, 1]),
            templates::cycle(3, &[0, 1, 2]),
        ] {
            let agm = agm_bound(&q, &stats);
            let truth = count(&g, &q) as f64;
            assert!(agm >= truth - 1e-9, "AGM {agm} < truth {truth} for {q}");
        }
    }

    #[test]
    fn molp_at_most_agm_on_acyclic() {
        // On acyclic queries the edge-cover LP has an integral optimum,
        // which corresponds to a CBS coverage, which MOLP dominates
        // (Appendix B). On cyclic queries AGM can be *tighter* than the
        // degree-chain MOLP (e.g. the triangle's sqrt bound), so the
        // comparison only holds for acyclic inputs.
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 1, 2]),
            templates::q5f(&[0, 1, 2, 2, 1]),
        ] {
            let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
            let agm = agm_bound(&q, &stats);
            assert!(
                molp <= agm * (1.0 + 1e-9),
                "MOLP {molp} > AGM {agm} for {q}"
            );
        }
    }

    #[test]
    fn empty_relation_gives_zero() {
        let g = GraphBuilder::with_labels(3, 1).build();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(1, &[0]);
        assert_eq!(agm_bound(&q, &stats), 0.0);
    }
}
