//! Per-request tracing: a span recorder threaded from the wire down
//! through the estimation pipeline and back out.
//!
//! A [`Trace`] is a plain struct — no globals, no thread-locals, no
//! channels — carried by the request that owns it. Spans are measured on
//! the monotonic clock ([`std::time::Instant`]) and recorded in
//! microseconds; counters are plain `u64` values. Both carry `&'static
//! str` names so recording never formats or allocates strings.
//!
//! **Zero-alloc when disabled.** The common path (every plain `ESTIMATE`)
//! runs with [`Trace::disabled`]: `begin()` skips the clock read,
//! `end()`/`counter()` return before touching the vectors, and the
//! vectors themselves start with zero capacity — a disabled trace never
//! allocates and costs one branch per instrumentation point. Only
//! `EXPLAIN_ESTIMATE` constructs an enabled trace.
//!
//! ```
//! use ceg_core::trace::Trace;
//!
//! let mut t = Trace::enabled();
//! let s = t.begin();
//! // ... the work being measured ...
//! t.end("catalog_fill", s);
//! t.counter("kernel_candidates", 42);
//! assert_eq!(t.spans().len(), 1);
//! assert_eq!(t.counters(), &[("kernel_candidates", 42)]);
//!
//! let mut off = Trace::disabled();
//! let s = off.begin();
//! off.end("catalog_fill", s);
//! assert!(off.spans().is_empty()); // and nothing was allocated
//! ```

use std::time::Instant;

/// The start of a span: an [`Instant`] captured only when the owning
/// trace is enabled. Obtained from [`Trace::begin`], consumed by
/// [`Trace::end`].
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Option<Instant>);

/// A per-request span/counter recorder. See the module docs.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    spans: Vec<(&'static str, u64)>,
    counters: Vec<(&'static str, u64)>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// A no-op trace: every recording call returns immediately and the
    /// struct never allocates.
    pub const fn disabled() -> Self {
        Trace {
            enabled: false,
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Is this trace recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start a span. On a disabled trace this skips the clock read.
    #[inline]
    pub fn begin(&self) -> SpanStart {
        SpanStart(self.enabled.then(Instant::now))
    }

    /// Finish a span started with [`Trace::begin`], recording its
    /// duration in microseconds under `name`. No-op on a disabled trace.
    #[inline]
    pub fn end(&mut self, name: &'static str, start: SpanStart) {
        if let Some(at) = start.0 {
            self.record_span_micros(name, at.elapsed().as_micros() as u64);
        }
    }

    /// Record a span with an explicit duration (for durations measured
    /// elsewhere, e.g. queue wait). No-op on a disabled trace.
    #[inline]
    pub fn record_span_micros(&mut self, name: &'static str, micros: u64) {
        if self.enabled {
            self.spans.push((name, micros));
        }
    }

    /// Add `value` to the counter `name` (created at 0 on first use).
    /// No-op on a disabled trace.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name, value)),
        }
    }

    /// Recorded spans as `(name, micros)`, in recording order.
    pub fn spans(&self) -> &[(&'static str, u64)] {
        &self.spans
    }

    /// Recorded counters as `(name, value)`, in first-use order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_trace_records_spans_and_counters() {
        let mut t = Trace::enabled();
        assert!(t.is_enabled());
        let s = t.begin();
        t.end("phase_a", s);
        t.record_span_micros("phase_b", 17);
        t.counter("widgets", 2);
        t.counter("widgets", 3);
        t.counter("gadgets", 1);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[1], ("phase_b", 17));
        assert_eq!(t.counters(), &[("widgets", 5), ("gadgets", 1)]);
    }

    #[test]
    fn disabled_trace_records_nothing_and_never_allocates() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        let s = t.begin();
        t.end("phase", s);
        t.record_span_micros("phase", 9);
        t.counter("c", 1);
        assert!(t.spans().is_empty());
        assert!(t.counters().is_empty());
        // Zero capacity == zero allocation: the vectors were never grown.
        assert_eq!(t.spans.capacity(), 0);
        assert_eq!(t.counters.capacity(), 0);
    }

    #[test]
    fn span_start_is_inert_when_disabled() {
        let off = Trace::disabled();
        let s = off.begin();
        // Moving a disabled SpanStart into an *enabled* trace's `end`
        // still records nothing: the clock was never read.
        let mut on = Trace::enabled();
        on.end("cross", s);
        assert!(on.spans().is_empty());
    }
}
