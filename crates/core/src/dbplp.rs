//! The DBPLP bound (Appendix D).
//!
//! DBPLP is defined per *cover* `C` (a set of `(R_j, A_j)` pairs whose
//! attribute sets union to `A`) as the LP
//!
//! ```text
//!   minimize Σ_a v_a
//!   s.t.  Σ_{a ∈ A_j \ A'_j} v_a ≥ log deg(A'_j, Π_{A_j} R_j)
//!                         ∀ (R_j, A_j) ∈ C, A'_j ⊆ A_j
//! ```
//!
//! Theorem D.1/Corollary D.1: the DBPLP CEG (CEG_D) has the same vertices
//! and a *subset* of CEG_M's edges, hence `MOLP ≤ DBPLP` for every cover.
//! We solve the LP through its covering dual (see [`crate::lp`]) and test
//! the corollary.

use ceg_catalog::DegreeStats;
use ceg_query::{QueryGraph, VarId};

use crate::lp;

/// A DBPLP cover: per query edge, which of its attributes participate.
/// (`None` = the relation is outside the cover.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverAttrs {
    None,
    SrcOnly,
    DstOnly,
    Both,
}

/// The default cover: every relation with all of its attributes.
pub fn full_cover(query: &QueryGraph) -> Vec<CoverAttrs> {
    vec![CoverAttrs::Both; query.num_edges()]
}

/// Solve DBPLP for `query` under `cover`. Returns the bound in linear
/// space; panics if the cover does not cover every attribute.
pub fn dbplp_bound(query: &QueryGraph, stats: &DegreeStats, cover: &[CoverAttrs]) -> f64 {
    assert_eq!(cover.len(), query.num_edges());
    let nv = query.num_vars() as usize;
    // check coverage
    let mut covered = 0u32;
    for (c, e) in cover.iter().zip(query.edges()) {
        match c {
            CoverAttrs::None => {}
            CoverAttrs::SrcOnly => covered |= 1 << e.src,
            CoverAttrs::DstOnly => covered |= 1 << e.dst,
            CoverAttrs::Both => covered |= (1 << e.src) | (1 << e.dst),
        }
    }
    assert_eq!(covered, query.all_vars(), "cover must span all attributes");

    // Build min Σ v_a, A x ≥ b over the constraints of each pair.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut b: Vec<f64> = Vec::new();
    let mut zero = false;
    for (c, e) in cover.iter().zip(query.edges()) {
        let s = stats.label(e.label);
        if s.cardinality == 0 {
            zero = true;
        }
        let ln = |v: usize| (v.max(1) as f64).ln();
        let mut push = |vars: &[VarId], bound: f64| {
            let mut row = vec![0.0; nv];
            for &v in vars {
                row[v as usize] += 1.0;
            }
            rows.push(row);
            b.push(bound);
        };
        match c {
            CoverAttrs::None => {}
            CoverAttrs::Both => {
                // A_j = {src, dst}: three non-trivial constraints
                // A' = ∅: v_src + v_dst ≥ log |R|
                push(&[e.src, e.dst], ln(s.cardinality));
                // A' = {src}: v_dst ≥ log deg(src→dst) = max out-degree
                push(&[e.dst], ln(s.max_out_degree));
                // A' = {dst}: v_src ≥ log max in-degree
                push(&[e.src], ln(s.max_in_degree));
            }
            CoverAttrs::SrcOnly => {
                // A_j = {src}: projection Π_src R; A' = ∅: v_src ≥ log |π_src R|
                push(&[e.src], ln(s.distinct_sources));
            }
            CoverAttrs::DstOnly => {
                push(&[e.dst], ln(s.distinct_targets));
            }
        }
    }
    if zero {
        return 0.0;
    }
    let c_obj = vec![1.0; nv];
    match lp::minimize_covering(&c_obj, &rows, &b) {
        Some(obj) => obj.exp(),
        None => f64::INFINITY,
    }
}

/// DBPLP under the default full cover.
pub fn dbplp_bound_default(query: &QueryGraph, stats: &DegreeStats) -> f64 {
    dbplp_bound(query, stats, &full_cover(query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg_m::{molp_bound, MolpInstance};
    use ceg_exec::count;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(12);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(3, 2, 0);
        b.add_edge(1, 4, 1);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 5, 1);
        b.add_edge(4, 6, 2);
        b.add_edge(4, 7, 2);
        b.add_edge(5, 7, 2);
        b.build()
    }

    #[test]
    fn dbplp_is_an_upper_bound() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(2, &[0, 1]),
            templates::cycle(3, &[0, 1, 2]),
        ] {
            let bound = dbplp_bound_default(&q, &stats);
            let truth = count(&g, &q) as f64;
            assert!(
                bound >= truth - 1e-9,
                "DBPLP {bound} < truth {truth} for {q}"
            );
        }
    }

    #[test]
    fn corollary_d1_molp_at_most_dbplp() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 1, 2]),
            templates::cycle(3, &[0, 1, 2]),
            templates::q5f(&[0, 1, 2, 2, 1]),
        ] {
            let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
            let dbplp = dbplp_bound_default(&q, &stats);
            assert!(
                molp <= dbplp * (1.0 + 1e-9) + 1e-9,
                "MOLP {molp} > DBPLP {dbplp} for {q}"
            );
        }
    }

    #[test]
    fn single_edge_dbplp_value() {
        // DBPLP on one relation R(a0, a1): min v0 + v1 subject to
        // v0 + v1 ≥ log|R|, v1 ≥ log maxout, v0 ≥ log maxin — i.e.
        // max(|R|, maxin · maxout). Here |R| = 3, maxout = maxin = 2, so
        // the bound is 4 — strictly looser than MOLP's 3, illustrating
        // Corollary D.1.
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(1, &[0]);
        let b = dbplp_bound_default(&q, &stats);
        assert!((b - 4.0).abs() < 1e-6, "bound {b}");
        let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false));
        assert!((molp - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cover must span")]
    fn incomplete_cover_panics() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        dbplp_bound(&q, &stats, &[CoverAttrs::SrcOnly, CoverAttrs::None]);
    }

    #[test]
    fn empty_relation_gives_zero() {
        let g = GraphBuilder::with_labels(3, 1).build();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(1, &[0]);
        assert_eq!(dbplp_bound_default(&q, &stats), 0.0);
    }
}
