//! Rendering CEGs for inspection: Graphviz DOT output and text dumps.
//!
//! The paper communicates its framework through CEG drawings (Figures 3,
//! 4, 6, 7); this module produces the same pictures from live objects.

use ceg_query::QueryGraph;

use crate::ceg_m::{MolpStep, RelRef};
use crate::ceg_o::CegO;

/// Graphviz DOT of a CEG_O (or CEG_OCR — same structure). Nodes are
/// labeled with their sub-query edge sets, edges with their rates.
pub fn ceg_o_to_dot(ceg: &CegO, query: &QueryGraph) -> String {
    let mut out = String::from("digraph ceg {\n  rankdir=BT;\n  node [shape=box];\n");
    for (i, mask) in ceg.nodes().iter().enumerate() {
        let label = if mask.is_empty() {
            "∅".to_string()
        } else if *mask == query.full_mask() {
            format!("Q {mask}")
        } else {
            mask.to_string()
        };
        out.push_str(&format!("  n{i} [label=\"{label}\"];\n"));
    }
    for e in ceg.ceg().edges() {
        let info = ceg.ext_info(e.tag);
        let style = if info.closes_cycle {
            ",style=dashed"
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{:.3}\"{style}];\n",
            e.from, e.to, e.rate
        ));
    }
    out.push_str("}\n");
    out
}

/// Text rendering of a MOLP minimum path: each step as
/// `X -> Y (deg, relation)` — the annotated path of Figure 7.
pub fn molp_path_to_string(query: &QueryGraph, steps: &[MolpStep]) -> String {
    let var_set = |mask: u32| -> String {
        let vars: Vec<String> = (0..query.num_vars())
            .filter(|&v| mask & (1 << v) != 0)
            .map(|v| format!("a{v}"))
            .collect();
        if vars.is_empty() {
            "∅".into()
        } else {
            vars.join("")
        }
    };
    let mut out = String::new();
    let mut w = 0u32;
    for s in steps {
        let rel = match s.rel {
            RelRef::Base(i) => format!("e{i}"),
            RelRef::Join(j) => format!("join{j}"),
        };
        let next = w | s.y;
        out.push_str(&format!(
            "({}) --deg({}, {})={:.2}/{}--> ({})\n",
            var_set(w),
            var_set(s.x),
            var_set(s.y),
            s.weight_ln.exp(),
            rel,
            var_set(next),
        ));
        w = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg_m::{molp_min_path, MolpInstance};
    use ceg_catalog::MarkovTable;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> ceg_graph::LabeledGraph {
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        b.build()
    }

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &t);
        let dot = ceg_o_to_dot(&ceg, &q);
        assert!(dot.starts_with("digraph"));
        assert!(dot.matches("->").count() >= ceg.ceg().num_edges());
        assert!(dot.contains('∅'));
    }

    #[test]
    fn molp_path_renders_steps() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let inst = MolpInstance::from_graph(&g, &q);
        let (_, steps) = molp_min_path(&inst).unwrap();
        let txt = molp_path_to_string(&q, &steps);
        assert!(txt.contains("(∅)"));
        assert!(txt.lines().count() == steps.len());
    }
}
