//! CEG_M — the pessimistic cardinality estimation graph and the MOLP
//! bound (Section 5.1).
//!
//! Vertices are attribute subsets `X ⊆ A`; extension edges `W → W ∪ Y`
//! with weight `log deg(X, Y, R_i)` exist for every relation statistic
//! with `X ⊆ W`; projection edges (weight 0) are optional — Observation 3
//! proves they never change the bound, and a test verifies it. By Theorem
//! 5.1 the MOLP optimum equals the minimum-weight `(∅, A)` path, so the
//! bound is computed with Dijkstra over an *implicit* CEG_M (successors
//! are generated on demand; the full graph has `2^|A|` vertices and is
//! never materialized). The literal LP is also implemented (through
//! [`crate::lp`]) so tests can confirm the theorem.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ceg_catalog::DegreeStats;
use ceg_exec::VarConstraints;
use ceg_graph::{FxHashMap, LabeledGraph};
use ceg_query::{Pattern, QueryGraph, VarId};

use crate::lp;

/// Subset of query attributes (variables), bit `v` = variable `v`.
pub type AttrMask = u32;

/// Degree statistics of one binary relation occurrence (one query edge).
#[derive(Debug, Clone, Copy, Default)]
pub struct BaseDeg {
    pub card: u64,
    pub max_out: u64,
    pub max_in: u64,
    pub proj_src: u64,
    pub proj_dst: u64,
}

/// Which relation a MOLP relaxation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelRef {
    /// Query edge index (a base relation occurrence).
    Base(usize),
    /// Index into the instance's join-statistics list.
    Join(usize),
}

/// A translated small-join statistic: `deg(x, y, J)` in *query-attribute*
/// space (Section 5.1.1 — the join output is just another relation).
#[derive(Debug, Clone)]
pub struct JoinRelax {
    /// The join's attributes as a query-attribute mask.
    pub attrs: AttrMask,
    /// `(x, y, deg)` triples with `x ⊆ y ⊆ attrs`.
    pub degs: Vec<(AttrMask, AttrMask, u64)>,
}

/// A self-contained MOLP problem instance.
#[derive(Debug, Clone)]
pub struct MolpInstance {
    num_vars: VarId,
    /// Per query edge: `(src, dst)` variables.
    endpoints: Vec<(VarId, VarId)>,
    base: Vec<BaseDeg>,
    joins: Vec<JoinRelax>,
    /// True when some relation or join is empty — the bound is 0.
    zero: bool,
}

/// One edge of the chosen minimum path (for bound sketches and display).
#[derive(Debug, Clone, Copy)]
pub struct MolpStep {
    /// Conditioning attributes `X` (empty for *unbound* edges).
    pub x: AttrMask,
    /// Extension attributes `Y`.
    pub y: AttrMask,
    /// `ln deg(X, Y, R)`.
    pub weight_ln: f64,
    /// Source relation.
    pub rel: RelRef,
}

impl MolpInstance {
    /// Build from precomputed [`DegreeStats`]. When `use_joins` is set and
    /// the stats contain 2-edge join statistics for sub-joins of `query`,
    /// those are included (making MOLP use a strict superset of what the
    /// optimistic estimators use, as in Section 5.1.1).
    pub fn from_stats(query: &QueryGraph, stats: &DegreeStats, use_joins: bool) -> Self {
        let endpoints: Vec<(VarId, VarId)> = query.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut zero = false;
        let base: Vec<BaseDeg> = query
            .edges()
            .iter()
            .map(|e| {
                let s = stats.label(e.label);
                if s.cardinality == 0 {
                    zero = true;
                }
                BaseDeg {
                    card: s.cardinality as u64,
                    max_out: s.max_out_degree as u64,
                    max_in: s.max_in_degree as u64,
                    proj_src: s.distinct_sources as u64,
                    proj_dst: s.distinct_targets as u64,
                }
            })
            .collect();

        let mut joins = Vec::new();
        if use_joins {
            for mask in query.connected_subsets_up_to(2) {
                if mask.len() != 2 {
                    continue;
                }
                let edges: Vec<_> = mask.iter().map(|i| query.edge(i)).collect();
                let (pat, map) = Pattern::canonical_with_map(&edges);
                let Some(js) = stats.join(&pat) else { continue };
                if js.cardinality() == 0 {
                    zero = true;
                }
                // translate canonical-var masks into query-attr masks
                let to_query_mask = |canon_mask: u8| -> AttrMask {
                    let mut qm = 0u32;
                    for &(orig, canon) in &map {
                        if canon_mask & (1 << canon) != 0 {
                            qm |= 1 << orig;
                        }
                    }
                    qm
                };
                let attrs = query.vars_of(mask);
                let degs = js
                    .iter()
                    .map(|(x, y, d)| (to_query_mask(x), to_query_mask(y), d))
                    .collect();
                joins.push(JoinRelax { attrs, degs });
            }
        }
        MolpInstance {
            num_vars: query.num_vars(),
            endpoints,
            base,
            joins,
            zero,
        }
    }

    /// Build directly from a graph (base statistics only).
    pub fn from_graph(graph: &LabeledGraph, query: &QueryGraph) -> Self {
        Self::from_stats(query, &DegreeStats::build_base(graph), false)
    }

    /// Build with per-variable constraints: each query edge's statistics
    /// are computed over only the tuples whose endpoints satisfy the
    /// constraints of the variables they bind. This is the bound-sketch
    /// partition view of the database (Section 5.2.1).
    pub fn from_graph_constrained(
        graph: &LabeledGraph,
        query: &QueryGraph,
        cons: &VarConstraints,
    ) -> Self {
        let mut zero = false;
        let mut base = Vec::with_capacity(query.num_edges());
        for e in query.edges() {
            let (cs, cd) = (cons.get(e.src), cons.get(e.dst));
            let mut card = 0u64;
            let mut out_cnt: FxHashMap<u32, u64> = FxHashMap::default();
            let mut in_cnt: FxHashMap<u32, u64> = FxHashMap::default();
            for (s, d) in graph.edges(e.label) {
                if cs.admits(s) && cd.admits(d) {
                    card += 1;
                    *out_cnt.entry(s).or_insert(0) += 1;
                    *in_cnt.entry(d).or_insert(0) += 1;
                }
            }
            if card == 0 {
                zero = true;
            }
            base.push(BaseDeg {
                card,
                max_out: out_cnt.values().copied().max().unwrap_or(0),
                max_in: in_cnt.values().copied().max().unwrap_or(0),
                proj_src: out_cnt.len() as u64,
                proj_dst: in_cnt.len() as u64,
            });
        }
        MolpInstance {
            num_vars: query.num_vars(),
            endpoints: query.edges().iter().map(|e| (e.src, e.dst)).collect(),
            base,
            joins: Vec::new(),
            zero,
        }
    }

    /// Replace the base statistics (used by partitioned sketches that
    /// compute them in bulk).
    pub fn with_base(mut self, base: Vec<BaseDeg>) -> Self {
        assert_eq!(base.len(), self.endpoints.len());
        self.zero = base.iter().any(|b| b.card == 0);
        self.base = base;
        self
    }

    pub fn num_vars(&self) -> VarId {
        self.num_vars
    }

    /// Enumerate the relaxations applicable from attribute set `w`:
    /// `(x, y, ln weight, rel)` with `x ⊆ w`.
    fn relaxations(&self, w: AttrMask, mut f: impl FnMut(AttrMask, AttrMask, f64, RelRef)) {
        for (i, (&(s, d), b)) in self.endpoints.iter().zip(&self.base).enumerate() {
            let (sm, dm) = (1u32 << s, 1u32 << d);
            let both = sm | dm;
            let rel = RelRef::Base(i);
            let ln = |v: u64| (v.max(1) as f64).ln();
            // X = ∅, Y = {s,d}: |R|
            if both & !w != 0 {
                f(0, both, ln(b.card), rel);
            }
            // X = {s}, Y = {s,d}: max out-degree
            if w & sm != 0 && dm & !w != 0 {
                f(sm, both, ln(b.max_out), rel);
            }
            // X = {d}, Y = {s,d}: max in-degree
            if w & dm != 0 && sm & !w != 0 {
                f(dm, both, ln(b.max_in), rel);
            }
            // projections of single attributes
            if sm & !w != 0 {
                f(0, sm, ln(b.proj_src), rel);
            }
            if dm & !w != 0 {
                f(0, dm, ln(b.proj_dst), rel);
            }
        }
        for (j, join) in self.joins.iter().enumerate() {
            for &(x, y, deg) in &join.degs {
                if x & !w == 0 && y & !w != 0 {
                    f(x, y, (deg.max(1) as f64).ln(), RelRef::Join(j));
                }
            }
        }
    }

    /// All `(x, y, ln weight)` relaxation templates, independent of `w`
    /// (used by the LP formulation).
    fn all_relaxations(&self) -> Vec<(AttrMask, AttrMask, f64)> {
        let mut out = Vec::new();
        let full = self.full_mask();
        // trick: enumerate with w = full so every template is emitted, then
        // re-add the unconditioned (x = 0) ones that target covered attrs.
        for (i, (&(s, d), b)) in self.endpoints.iter().zip(&self.base).enumerate() {
            let _ = i;
            let (sm, dm) = (1u32 << s, 1u32 << d);
            let ln = |v: u64| (v.max(1) as f64).ln();
            out.push((0, sm | dm, ln(b.card)));
            out.push((sm, sm | dm, ln(b.max_out)));
            out.push((dm, sm | dm, ln(b.max_in)));
            out.push((0, sm, ln(b.proj_src)));
            out.push((0, dm, ln(b.proj_dst)));
        }
        for join in &self.joins {
            for &(x, y, deg) in &join.degs {
                out.push((x, y, (deg.max(1) as f64).ln()));
            }
        }
        out.retain(|&(x, y, _)| x & !full == 0 && y & !full == 0 && y != 0);
        out
    }

    fn full_mask(&self) -> AttrMask {
        if self.num_vars == 32 {
            u32::MAX
        } else {
            (1u32 << self.num_vars) - 1
        }
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: AttrMask,
}

impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by distance
        other.dist.total_cmp(&self.dist)
    }
}

/// The MOLP bound `2^{m_A}` — equivalently the minimum-weight `(∅, A)`
/// path in CEG_M (Theorem 5.1). Returns the bound in linear (multiplier)
/// space.
pub fn molp_bound(inst: &MolpInstance) -> f64 {
    molp_min_path(inst).map_or(f64::INFINITY, |(b, _)| b)
}

/// The MOLP bound together with the minimizing path. `None` when the full
/// attribute set is unreachable (cannot happen for connected queries with
/// complete base statistics).
pub fn molp_min_path(inst: &MolpInstance) -> Option<(f64, Vec<MolpStep>)> {
    if inst.zero {
        return Some((0.0, Vec::new()));
    }
    let full = inst.full_mask();
    if full == 0 {
        return Some((1.0, Vec::new()));
    }
    let n = 1usize << inst.num_vars;
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(AttrMask, MolpStep)>> = vec![None; n];
    let mut done = vec![false; n];
    dist[0] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem { dist: 0.0, node: 0 });
    while let Some(HeapItem { dist: dw, node: w }) = heap.pop() {
        if done[w as usize] {
            continue;
        }
        done[w as usize] = true;
        if w == full {
            break;
        }
        inst.relaxations(w, |x, y, wln, rel| {
            let to = (w | y) as usize;
            let cand = dw + wln;
            if cand < dist[to] {
                dist[to] = cand;
                pred[to] = Some((
                    w,
                    MolpStep {
                        x,
                        y,
                        weight_ln: wln,
                        rel,
                    },
                ));
                heap.push(HeapItem {
                    dist: cand,
                    node: to as AttrMask,
                });
            }
        });
    }
    if !dist[full as usize].is_finite() {
        return None;
    }
    // reconstruct by walking the stored predecessor nodes
    let mut steps = Vec::new();
    let mut cur = full;
    while cur != 0 {
        let (prev, step) = pred[cur as usize].expect("predecessor chain broken");
        steps.push(step);
        debug_assert_ne!(prev, cur, "step added no attributes");
        cur = prev;
    }
    steps.reverse();
    Some((dist[full as usize].exp(), steps))
}

/// Solve the literal MOLP linear program (Section 5.1) with the simplex
/// solver; `with_projections` includes the `s_X ≤ s_Y` inequalities
/// (Observation 3 shows they are redundant). Intended for verification on
/// small queries (`|A| ≤ 12`).
pub fn molp_lp_bound(inst: &MolpInstance, with_projections: bool) -> f64 {
    if inst.zero {
        return 0.0;
    }
    let nv = inst.num_vars as usize;
    assert!(nv <= 12, "LP cross-check limited to small queries");
    let n = 1usize << nv;
    let full = inst.full_mask() as usize;
    // variables s_X, X ⊆ A (non-negativity is WLOG: the CEG solution is
    // non-negative and restricting the feasible set cannot raise the max)
    let mut a: Vec<Vec<f64>> = Vec::new();
    let mut b: Vec<f64> = Vec::new();
    // s_∅ ≤ 0
    let mut row = vec![0.0; n];
    row[0] = 1.0;
    a.push(row);
    b.push(0.0);
    // extension inequalities: for each template (x, y, w), for each W ⊇ x:
    // s_{W∪y} - s_W ≤ w
    for (x, y, w) in inst.all_relaxations() {
        for wmask in 0..n {
            let wm = wmask as AttrMask;
            if x & !wm != 0 {
                continue;
            }
            let to = (wm | y) as usize;
            if to == wmask {
                continue;
            }
            let mut row = vec![0.0; n];
            row[to] += 1.0;
            row[wmask] -= 1.0;
            a.push(row);
            b.push(w);
        }
    }
    if with_projections {
        // s_X ≤ s_Y for X ⊆ Y: covers (Y minus one attribute) suffice
        for y in 1..n {
            for v in 0..nv {
                if y & (1 << v) != 0 {
                    let x = y & !(1 << v);
                    let mut row = vec![0.0; n];
                    row[x] += 1.0;
                    row[y] -= 1.0;
                    a.push(row);
                    b.push(0.0);
                }
            }
        }
    }
    let mut c = vec![0.0; n];
    c[full] = 1.0;
    match lp::maximize(&c, &a, &b) {
        lp::LpResult::Optimal { objective, .. } => objective.exp(),
        lp::LpResult::Unbounded => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_exec::VarConstraint;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(12);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(3, 2, 0);
        b.add_edge(1, 4, 1);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 5, 1);
        b.add_edge(4, 6, 2);
        b.add_edge(4, 7, 2);
        b.add_edge(5, 7, 2);
        b.build()
    }

    #[test]
    fn single_edge_bound_is_cardinality() {
        let g = toy();
        let q = templates::path(1, &[0]);
        let inst = MolpInstance::from_graph(&g, &q);
        assert!((molp_bound(&inst) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bound_is_pessimistic() {
        let g = toy();
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(2, &[1, 1]),
            templates::q5f(&[0, 1, 2, 2, 1]),
        ] {
            let inst = MolpInstance::from_graph(&g, &q);
            let bound = molp_bound(&inst);
            let truth = count(&g, &q) as f64;
            assert!(
                bound >= truth - 1e-9,
                "bound {bound} < truth {truth} for {q}"
            );
        }
    }

    #[test]
    fn theorem_5_1_dijkstra_equals_lp() {
        let g = toy();
        for q in [
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 1, 2]),
            templates::cycle(3, &[0, 1, 2]),
        ] {
            let inst = MolpInstance::from_graph(&g, &q);
            let dij = molp_bound(&inst);
            let lp = molp_lp_bound(&inst, false);
            assert!(
                (dij.ln() - lp.ln()).abs() < 1e-6,
                "dijkstra {dij} != lp {lp} for {q}"
            );
        }
    }

    #[test]
    fn observation_3_projections_are_redundant() {
        let g = toy();
        for q in [
            templates::path(3, &[0, 1, 2]),
            templates::star(2, &[0, 1]),
            templates::cycle(3, &[0, 1, 2]),
        ] {
            let inst = MolpInstance::from_graph(&g, &q);
            let without = molp_lp_bound(&inst, false);
            let with = molp_lp_bound(&inst, true);
            assert!(
                (without.ln() - with.ln()).abs() < 1e-6,
                "projection inequalities changed the bound for {q}"
            );
        }
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let g = GraphBuilder::with_labels(4, 2).build();
        let q = templates::path(2, &[0, 1]);
        let inst = MolpInstance::from_graph(&g, &q);
        assert_eq!(molp_bound(&inst), 0.0);
    }

    #[test]
    fn min_path_steps_reach_full() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let inst = MolpInstance::from_graph(&g, &q);
        let (bound, steps) = molp_min_path(&inst).unwrap();
        assert!(bound.is_finite());
        // replaying the steps from ∅ must reach the full attribute set
        let mut w: AttrMask = 0;
        let mut total = 0.0;
        for s in &steps {
            assert_eq!(s.x & !w, 0, "conditioning attrs must be bound");
            w |= s.y;
            total += s.weight_ln;
        }
        assert_eq!(w, (1u32 << q.num_vars()) - 1);
        assert!((total.exp() - bound).abs() / bound < 1e-9);
    }

    #[test]
    fn join_stats_tighten_the_bound() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let queries = [q.clone()];
        let stats = ceg_catalog::DegreeStats::build_with_joins(&g, &queries, 1 << 20);
        let base_inst = MolpInstance::from_stats(&q, &stats, false);
        let join_inst = MolpInstance::from_stats(&q, &stats, true);
        let base_bound = molp_bound(&base_inst);
        let join_bound = molp_bound(&join_inst);
        let truth = count(&g, &q) as f64;
        assert!(join_bound <= base_bound + 1e-9);
        assert!(join_bound >= truth - 1e-9);
    }

    #[test]
    fn constrained_instance_partitions_relations() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let mut cons = VarConstraints::none(3);
        cons.set(
            1,
            VarConstraint::HashBucket {
                buckets: 2,
                bucket: 0,
            },
        );
        let inst = MolpInstance::from_graph_constrained(&g, &q, &cons);
        let unconstrained = MolpInstance::from_graph(&g, &q);
        assert!(molp_bound(&inst) <= molp_bound(&unconstrained) + 1e-9);
    }

    #[test]
    fn lp_with_joins_matches_dijkstra() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let queries = [q.clone()];
        let stats = ceg_catalog::DegreeStats::build_with_joins(&g, &queries, 1 << 20);
        let inst = MolpInstance::from_stats(&q, &stats, true);
        let dij = molp_bound(&inst);
        let lp = molp_lp_bound(&inst, false);
        assert!((dij.ln() - lp.ln()).abs() < 1e-6, "dij {dij} lp {lp}");
    }
}
