//! The bound-sketch optimization (Sections 5.2.1–5.2.2).
//!
//! Given a partitioning budget `K` and a chosen CEG path, the join
//! attributes `S` that were *not* introduced through bound (conditioned)
//! edges get hash-partitioned into `K^{1/|S|}` buckets each; the query
//! splits into `K` sub-queries, one per bucket combination, and the final
//! estimate is the sum of the per-partition estimates. Partitioning
//! shrinks maximum degrees (pessimistic case) and makes uniformity
//! assumptions more local (optimistic case), so the summed estimate is
//! never looser than the direct one.
//!
//! Applied here to **both** families, as the paper proposes:
//! * [`molp_sketch_bound`] — MOLP with per-partition degree statistics,
//! * [`optimistic_sketch_estimate`] — any CEG_O path heuristic with
//!   per-partition Markov statistics (computed on demand; the paper
//!   pre-stores them in the Markov table, Section 5.2.2 — same values).

use ceg_catalog::MarkovTable;
use ceg_exec::{count_constrained, VarConstraint, VarConstraints};
use ceg_graph::hash::bucket_of;
use ceg_graph::{FxHashMap, LabeledGraph};
use ceg_query::{EdgeMask, QueryGraph, VarId};

use crate::ceg::PathLen;
use crate::ceg_m::{molp_bound, molp_min_path, AttrMask, BaseDeg, MolpInstance};
use crate::ceg_o::CegO;

/// Mask of join variables (variables incident to ≥ 2 query edges).
fn join_vars_mask(query: &QueryGraph) -> AttrMask {
    query
        .join_vars()
        .into_iter()
        .fold(0, |m, v| m | (1u32 << v))
}

/// Per-attribute bucket count for a budget `K` over `|S|` partition
/// attributes: `⌊K^{1/|S|}⌋` (Step 1 of Section 5.2.1).
fn buckets_per_attr(k: u32, num_attrs: u32) -> u32 {
    if num_attrs == 0 {
        return 1;
    }
    let b = (k as f64).powf(1.0 / num_attrs as f64).floor() as u32;
    b.max(1)
}

/// Partition attributes of a MOLP minimum path: join attributes whose
/// first introduction was through an *unbound* edge (`X = ∅`).
pub fn molp_partition_attrs(query: &QueryGraph, steps: &[crate::ceg_m::MolpStep]) -> AttrMask {
    let mut w: AttrMask = 0;
    let mut bound_new: AttrMask = 0;
    for s in steps {
        let new = s.y & !w;
        if s.x != 0 {
            bound_new |= new;
        }
        w |= s.y;
    }
    join_vars_mask(query) & !bound_new
}

/// MOLP with a bound sketch of budget `k` (`k = 1` is the plain bound).
pub fn molp_sketch_bound(graph: &LabeledGraph, query: &QueryGraph, k: u32) -> f64 {
    let inst = MolpInstance::from_graph(graph, query);
    let Some((direct, steps)) = molp_min_path(&inst) else {
        return f64::INFINITY;
    };
    if k <= 1 || steps.is_empty() {
        return direct;
    }
    let s_mask = molp_partition_attrs(query, &steps);
    let s_vars: Vec<VarId> = (0..query.num_vars())
        .filter(|&v| s_mask & (1 << v) != 0)
        .collect();
    if s_vars.is_empty() {
        return direct;
    }
    let b = buckets_per_attr(k, s_vars.len() as u32);
    if b <= 1 {
        return direct;
    }

    // Pre-partition each relation occurrence once (Step 2): per query
    // edge, statistics grouped by the bucket pair of its endpoints
    // (collapsed to one bucket for non-partition attributes).
    let partitions: Vec<EdgePartition> = query
        .edges()
        .iter()
        .map(|e| {
            EdgePartition::build(
                graph,
                e.label,
                s_mask & (1 << e.src) != 0,
                s_mask & (1 << e.dst) != 0,
                b,
            )
        })
        .collect();

    // Step 3: sum the per-combination bounds.
    let mut combo = vec![0u32; s_vars.len()];
    let mut total = 0.0f64;
    loop {
        let bucket_of_var = |v: VarId| -> u32 {
            s_vars
                .iter()
                .position(|&sv| sv == v)
                .map_or(0, |i| combo[i])
        };
        let base: Vec<BaseDeg> = query
            .edges()
            .iter()
            .zip(&partitions)
            .map(|(e, p)| p.get(bucket_of_var(e.src), bucket_of_var(e.dst)))
            .collect();
        let part_inst = inst.clone().with_base(base);
        let bound = molp_bound(&part_inst);
        if bound.is_finite() {
            total += bound;
        }
        // next combination
        let mut i = 0;
        loop {
            if i == combo.len() {
                return total.min(direct);
            }
            combo[i] += 1;
            if combo[i] < b {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
    }
}

/// Partition attributes of a CEG_O path: join attributes of the first
/// (unbound) hop's pattern; later hops are conditioned (bound), so the
/// attributes they introduce are excluded (Section 5.2.2).
pub fn optimistic_partition_attrs(query: &QueryGraph, ceg: &CegO, path: &[u32]) -> AttrMask {
    let Some(&first) = path.first() else { return 0 };
    let info = ceg.ext_info(ceg.ceg().edges()[first as usize].tag);
    join_vars_mask(query) & query.vars_of(info.ext)
}

/// Optimistic estimate with a bound sketch: pick the best path of the
/// given hop class (`maximize` selects max- vs min-aggregation), then sum
/// the per-partition evaluations of that path's formula. `k = 1` falls
/// back to the plain path estimate.
pub fn optimistic_sketch_estimate(
    graph: &LabeledGraph,
    query: &QueryGraph,
    table: &MarkovTable,
    path_len: PathLen,
    maximize: bool,
    k: u32,
) -> Option<f64> {
    let ceg = CegO::build(query, table);
    let path = ceg.ceg().best_path(path_len, maximize)?;
    let direct = path_estimate(&ceg, &path);
    if k <= 1 {
        return Some(direct);
    }
    let s_mask = optimistic_partition_attrs(query, &ceg, &path);
    let s_vars: Vec<VarId> = (0..query.num_vars())
        .filter(|&v| s_mask & (1 << v) != 0)
        .collect();
    if s_vars.is_empty() {
        return Some(direct);
    }
    let b = buckets_per_attr(k, s_vars.len() as u32);
    if b <= 1 {
        return Some(direct);
    }

    // cache of constrained pattern counts keyed by (mask, bucket signature)
    let mut cache: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut counted = |mask: EdgeMask, combo: &[u32]| -> u64 {
        if mask.is_empty() {
            return 1;
        }
        // signature: buckets of the S-vars used by this pattern
        let vars = query.vars_of(mask);
        let mut sig = 0u64;
        for (i, &v) in s_vars.iter().enumerate() {
            if vars & (1 << v) != 0 {
                sig = (sig << 8) | (combo[i] as u64 + 1);
            } else {
                sig <<= 8;
            }
        }
        *cache.entry((mask.bits(), sig)).or_insert_with(|| {
            let (sub, varmap) = query.subquery(mask);
            let mut cons = VarConstraints::none(sub.num_vars());
            for (new_v, &orig_v) in varmap.iter().enumerate() {
                if let Some(i) = s_vars.iter().position(|&sv| sv == orig_v) {
                    cons.set(
                        new_v as VarId,
                        VarConstraint::HashBucket {
                            buckets: b,
                            bucket: combo[i],
                        },
                    );
                }
            }
            count_constrained(graph, &sub, &cons)
        })
    };

    let mut combo = vec![0u32; s_vars.len()];
    let mut total = 0.0f64;
    loop {
        let mut term = 1.0f64;
        for &ei in &path {
            let e = ceg.ceg().edges()[ei as usize];
            let info = *ceg.ext_info(e.tag);
            let ce = counted(info.ext, &combo);
            if ce == 0 {
                term = 0.0;
                break;
            }
            let ci = counted(info.inter, &combo);
            if ci == 0 {
                term = 0.0;
                break;
            }
            term *= ce as f64 / ci as f64;
        }
        total += term;
        let mut i = 0;
        loop {
            if i == combo.len() {
                return Some(total);
            }
            combo[i] += 1;
            if combo[i] < b {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
    }
}

fn path_estimate(ceg: &CegO, path: &[u32]) -> f64 {
    path.iter()
        .map(|&ei| ceg.ceg().edges()[ei as usize].rate)
        .product()
}

/// Per-edge statistics grouped by endpoint bucket pair. Unpartitioned
/// dimensions collapse to a single bucket (`sb`/`db` = 1).
struct EdgePartition {
    sb: u32,
    db: u32,
    stats: FxHashMap<(u32, u32), BaseDeg>,
}

impl EdgePartition {
    fn build(graph: &LabeledGraph, label: u16, part_src: bool, part_dst: bool, b: u32) -> Self {
        let sb = if part_src { b } else { 1 };
        let db = if part_dst { b } else { 1 };
        let bs_of = |v: u32| if part_src { bucket_of(v, b) } else { 0 };
        let bd_of = |v: u32| if part_dst { bucket_of(v, b) } else { 0 };
        let mut card: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut out_cnt: FxHashMap<(u32, u32), u64> = FxHashMap::default(); // (src, bd)
        let mut in_cnt: FxHashMap<(u32, u32), u64> = FxHashMap::default(); // (dst, bs)
        for (s, d) in graph.edges(label) {
            let (bs, bd) = (bs_of(s), bd_of(d));
            *card.entry((bs, bd)).or_insert(0) += 1;
            *out_cnt.entry((s, bd)).or_insert(0) += 1;
            *in_cnt.entry((d, bs)).or_insert(0) += 1;
        }
        let mut stats: FxHashMap<(u32, u32), BaseDeg> = FxHashMap::default();
        for (&(bs, bd), &c) in &card {
            stats.insert(
                (bs, bd),
                BaseDeg {
                    card: c,
                    ..Default::default()
                },
            );
        }
        for (&(s, bd), &c) in &out_cnt {
            let key = (bs_of(s), bd);
            if let Some(st) = stats.get_mut(&key) {
                st.max_out = st.max_out.max(c);
                st.proj_src += 1;
            }
        }
        for (&(d, bs), &c) in &in_cnt {
            let key = (bs, bd_of(d));
            if let Some(st) = stats.get_mut(&key) {
                st.max_in = st.max_in.max(c);
                st.proj_dst += 1;
            }
        }
        EdgePartition { sb, db, stats }
    }

    fn get(&self, bs: u32, bd: u32) -> BaseDeg {
        // collapse unpartitioned dimensions to bucket 0
        let key = (bs % self.sb, bd % self.db);
        self.stats.get(&key).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg::{Aggr, Heuristic};
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_graph() -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = GraphBuilder::new(200);
        // skewed out-degrees: label 0 then label 1 chains
        for _ in 0..400 {
            let s = rng.random_range(0..50u32);
            let d = rng.random_range(50..150u32);
            b.add_edge(s, d, 0);
        }
        for _ in 0..400 {
            let s = rng.random_range(50..150u32);
            let d = rng.random_range(150..200u32);
            b.add_edge(s, d, 1);
        }
        b.build()
    }

    fn two_path() -> QueryGraph {
        ceg_query::templates::path(2, &[0, 1])
    }

    #[test]
    fn molp_sketch_is_still_an_upper_bound() {
        let g = skewed_graph();
        let q = two_path();
        let truth = count(&g, &q) as f64;
        for k in [1, 4, 16, 64] {
            let bound = molp_sketch_bound(&g, &q, k);
            assert!(
                bound >= truth - 1e-6,
                "k={k}: bound {bound} < truth {truth}"
            );
        }
    }

    #[test]
    fn molp_sketch_tightens_with_budget() {
        let g = skewed_graph();
        let q = two_path();
        let b1 = molp_sketch_bound(&g, &q, 1);
        let b64 = molp_sketch_bound(&g, &q, 64);
        assert!(b64 <= b1 + 1e-9, "k=64 bound {b64} looser than k=1 {b1}");
    }

    #[test]
    fn optimistic_sketch_partitions_sum_to_consistent_estimate() {
        let g = skewed_graph();
        let q = two_path();
        let table = MarkovTable::build_for_query(&g, &q, 2);
        let e1 = optimistic_sketch_estimate(&g, &q, &table, PathLen::MaxHop, true, 1).unwrap();
        let e16 = optimistic_sketch_estimate(&g, &q, &table, PathLen::MaxHop, true, 16).unwrap();
        assert!(e1 > 0.0 && e16 > 0.0);
        // both should be in the same ballpark as the truth (within 10x)
        let truth = count(&g, &q) as f64;
        for (name, e) in [("k1", e1), ("k16", e16)] {
            let q_err = (e / truth).max(truth / e);
            assert!(q_err < 10.0, "{name} estimate {e} too far from {truth}");
        }
    }

    #[test]
    fn sketch_with_k1_matches_plain_heuristic() {
        let g = skewed_graph();
        let q = two_path();
        let table = MarkovTable::build_for_query(&g, &q, 2);
        let ceg = CegO::build(&q, &table);
        let plain = ceg
            .ceg()
            .estimate(Heuristic::new(PathLen::MaxHop, Aggr::Max))
            .unwrap();
        let sketch = optimistic_sketch_estimate(&g, &q, &table, PathLen::MaxHop, true, 1).unwrap();
        assert!((plain - sketch).abs() < 1e-9);
    }

    #[test]
    fn edge_partition_totals_match_relation() {
        let g = skewed_graph();
        let p = EdgePartition::build(&g, 0, true, true, 4);
        let total: u64 = p.stats.values().map(|s| s.card).sum();
        assert_eq!(total, g.label_count(0) as u64);
    }

    #[test]
    fn buckets_per_attr_math() {
        assert_eq!(buckets_per_attr(128, 1), 128);
        assert_eq!(buckets_per_attr(128, 2), 11);
        assert_eq!(buckets_per_attr(4, 2), 2);
        assert_eq!(buckets_per_attr(1, 2), 1);
        assert_eq!(buckets_per_attr(16, 0), 1);
    }
}
