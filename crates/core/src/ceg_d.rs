//! CEG_D — the DBPLP cardinality estimation graph (Appendix D).
//!
//! CEG_D has the same vertices as CEG_M (attribute subsets) but only the
//! extension edges expressible in a given *cover* `C`; in particular it
//! has no projection edges. DBPLP is **not** the weight of any single
//! path: Theorem D.1 shows every `(∅, A)` path's weight is a *lower
//! bound* on the DBPLP optimum, which yields the combinatorial proof of
//! Corollary D.1 (`MOLP ≤ DBPLP`) — CEG_D's edges are a subset of
//! CEG_M's, so CEG_M's minimum path is at most any CEG_D path, which is
//! at most DBPLP.
//!
//! This module materializes CEG_D explicitly (query attribute counts are
//! tiny) and verifies both theorems.

use ceg_catalog::DegreeStats;
use ceg_query::QueryGraph;

use crate::ceg_m::AttrMask;
use crate::dbplp::CoverAttrs;

/// One CEG_D edge: `from → from ∪ ext` with weight `ln deg`.
#[derive(Debug, Clone, Copy)]
pub struct CegDEdge {
    pub from: AttrMask,
    pub to: AttrMask,
    pub weight_ln: f64,
}

/// Explicit CEG_D for a query under a cover.
#[derive(Debug, Clone)]
pub struct CegD {
    num_vars: u8,
    edges: Vec<CegDEdge>,
}

impl CegD {
    /// Materialize the CEG_D of `query` under `cover`.
    ///
    /// For each `(R_j, A_j) ∈ C` and `A'_j ⊆ A_j`, DBPLP has the
    /// constraint `Σ_{a ∈ A_j \ A'_j} v_a ≥ log deg(A'_j, Π_{A_j} R_j)`,
    /// which becomes an edge `W → W ∪ (A_j \ A'_j)` for every `W ⊇ A'_j`.
    pub fn build(query: &QueryGraph, stats: &DegreeStats, cover: &[CoverAttrs]) -> Self {
        assert_eq!(cover.len(), query.num_edges());
        let nv = query.num_vars();
        assert!(nv <= 16, "explicit CEG_D limited to small queries");
        let n = 1usize << nv;
        let mut templates: Vec<(AttrMask, AttrMask, f64)> = Vec::new(); // (A', new attrs, w)
        for (c, e) in cover.iter().zip(query.edges()) {
            let s = stats.label(e.label);
            let ln = |v: usize| (v.max(1) as f64).ln();
            let (sm, dm) = (1u32 << e.src, 1u32 << e.dst);
            match c {
                CoverAttrs::None => {}
                CoverAttrs::Both => {
                    // A_j = {src, dst}: A' ∈ {∅, {src}, {dst}}
                    templates.push((0, sm | dm, ln(s.cardinality)));
                    templates.push((sm, dm, ln(s.max_out_degree)));
                    templates.push((dm, sm, ln(s.max_in_degree)));
                }
                CoverAttrs::SrcOnly => templates.push((0, sm, ln(s.distinct_sources))),
                CoverAttrs::DstOnly => templates.push((0, dm, ln(s.distinct_targets))),
            }
        }
        let mut edges = Vec::new();
        for w in 0..n as AttrMask {
            for &(aprime, newattrs, weight_ln) in &templates {
                // A' must be bound and the constraint's variables
                // `A_j \ A'_j` must all be new — Theorem D.1's proof sums
                // the constraints of a path, which requires their
                // variable sets to be pairwise disjoint.
                if aprime & !w == 0 && newattrs & w == 0 {
                    edges.push(CegDEdge {
                        from: w,
                        to: w | newattrs,
                        weight_ln,
                    });
                }
            }
        }
        CegD {
            num_vars: nv,
            edges,
        }
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of the longest `(∅, A)` path (ln space); `None` if the full
    /// attribute set is unreachable under the cover.
    pub fn longest_path_ln(&self) -> Option<f64> {
        self.path_ln(true)
    }

    /// Weight of the shortest `(∅, A)` path (ln space).
    pub fn shortest_path_ln(&self) -> Option<f64> {
        self.path_ln(false)
    }

    fn path_ln(&self, maximize: bool) -> Option<f64> {
        let n = 1usize << self.num_vars;
        let full = n - 1;
        // DP over masks in increasing popcount order (edges only add bits)
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|m| m.count_ones());
        let mut val = vec![None::<f64>; n];
        val[0] = Some(0.0);
        for &w in &order {
            let Some(base) = val[w] else { continue };
            for e in &self.edges {
                if e.from as usize != w {
                    continue;
                }
                let cand = base + e.weight_ln;
                let slot = &mut val[e.to as usize];
                let better = match *slot {
                    None => true,
                    Some(cur) => {
                        if maximize {
                            cand > cur
                        } else {
                            cand < cur
                        }
                    }
                };
                if better {
                    *slot = Some(cand);
                }
            }
        }
        val[full]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceg_m::{molp_bound, MolpInstance};
    use crate::dbplp::{dbplp_bound, full_cover};
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(12);
        for (s, d, l) in [
            (0, 1, 0),
            (0, 2, 0),
            (3, 2, 0),
            (1, 4, 1),
            (2, 4, 1),
            (2, 5, 1),
            (4, 6, 2),
            (4, 7, 2),
            (5, 7, 2),
        ] {
            b.add_edge(s, d, l);
        }
        b.build()
    }

    fn queries() -> Vec<QueryGraph> {
        vec![
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 1, 2]),
            templates::cycle(3, &[0, 1, 2]),
        ]
    }

    #[test]
    fn theorem_d1_paths_lower_bound_dbplp() {
        // every (∅, A) path weight ≤ DBPLP optimum; in particular the
        // longest path does not exceed it
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in queries() {
            let cover = full_cover(&q);
            let ceg_d = CegD::build(&q, &stats, &cover);
            let dbplp = dbplp_bound(&q, &stats, &cover).max(1e-12).ln();
            let longest = ceg_d.longest_path_ln().expect("full cover reaches A");
            assert!(
                longest <= dbplp + 1e-6,
                "longest CEG_D path {longest} > DBPLP {dbplp} for {q}"
            );
        }
    }

    #[test]
    fn corollary_d1_combinatorial() {
        // the combinatorial route: MOLP (min CEG_M path) ≤ shortest CEG_D
        // path ≤ DBPLP, because CEG_D edges ⊆ CEG_M edges
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        for q in queries() {
            let cover = full_cover(&q);
            let ceg_d = CegD::build(&q, &stats, &cover);
            let molp = molp_bound(&MolpInstance::from_stats(&q, &stats, false))
                .max(1e-12)
                .ln();
            let shortest = ceg_d.shortest_path_ln().unwrap();
            let dbplp = dbplp_bound(&q, &stats, &cover).max(1e-12).ln();
            assert!(
                molp <= shortest + 1e-6,
                "MOLP {molp} > CEG_D min {shortest}"
            );
            assert!(
                shortest <= dbplp + 1e-6,
                "CEG_D min {shortest} > DBPLP {dbplp}"
            );
        }
    }

    #[test]
    fn ceg_d_has_edges_and_reaches_top() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        let ceg_d = CegD::build(&q, &stats, &full_cover(&q));
        assert!(ceg_d.num_edges() > 0);
        assert!(ceg_d.longest_path_ln().is_some());
        assert!(ceg_d.shortest_path_ln().unwrap() <= ceg_d.longest_path_ln().unwrap());
    }

    #[test]
    fn partial_cover_restricts_edges() {
        let g = toy();
        let stats = DegreeStats::build_base(&g);
        let q = templates::path(2, &[0, 1]);
        // cover only through projections: fewer edges than the full cover
        let proj_cover = vec![CoverAttrs::SrcOnly, CoverAttrs::Both];
        let full = CegD::build(&q, &stats, &full_cover(&q));
        let partial = CegD::build(&q, &stats, &proj_cover);
        assert!(partial.num_edges() < full.num_edges());
    }
}
