//! # ceg-core
//!
//! The paper's primary contribution: the **Cardinality Estimation Graph**
//! framework unifying optimistic and pessimistic cardinality estimators.
//!
//! * [`ceg`] — the generic CEG DAG, hop heuristics and aggregators
//!   (Section 3, 4.2),
//! * [`ceg_o`] — CEG_O, the optimistic CEG over Markov-table statistics
//!   (Section 4.2),
//! * [`ceg_ocr`] — CEG_OCR, the cycle-closing-rate variant for queries
//!   with large cycles (Section 4.3),
//! * [`ceg_m`] — CEG_M and the MOLP bound as a shortest path (Theorem
//!   5.1), plus the literal LP for verification,
//! * [`cbs`] — the CBS pessimistic estimator (bounding formulas over
//!   coverages; Section 5.2 and Appendices B–C),
//! * [`dbplp`] — the DBPLP bound (Appendix D),
//! * [`agm`] — the AGM fractional-edge-cover bound,
//! * [`bound_sketch`] — the bound-sketch partitioning optimization applied
//!   to both pessimistic and optimistic estimators (Sections 5.2.1–5.2.2),
//! * [`oracle`] — the P* oracle that picks the best path per query
//!   (Section 6.2.3),
//! * [`lp`] — a small simplex solver backing the literal LPs,
//! * [`trace`] — the per-request span/counter recorder the estimation
//!   service threads through the pipeline (zero-alloc when disabled).
//!
//! # Example
//!
//! Build a graph, a Markov table, the query's CEG_O, and compare the
//! paper's recommended `max-hop-max` estimate with the MOLP bound:
//!
//! ```
//! use ceg_graph::GraphBuilder;
//! use ceg_query::templates;
//! use ceg_catalog::MarkovTable;
//! use ceg_core::{CegO, Heuristic, PathLen, Aggr, MolpInstance, molp_bound};
//!
//! let mut b = GraphBuilder::new(6);
//! b.add_edge(0, 1, 0);
//! b.add_edge(0, 2, 0);
//! b.add_edge(1, 3, 1);
//! b.add_edge(2, 3, 1);
//! b.add_edge(3, 4, 2);
//! let graph = b.build();
//!
//! let query = templates::path(3, &[0, 1, 2]); // a0 -0-> a1 -1-> a2 -2-> a3
//! let table = MarkovTable::build_for_query(&graph, &query, 2);
//! let ceg = CegO::build(&query, &table);
//! let estimate = ceg
//!     .ceg()
//!     .estimate(Heuristic::new(PathLen::MaxHop, Aggr::Max))
//!     .unwrap();
//!
//! let bound = molp_bound(&MolpInstance::from_graph(&graph, &query));
//! let truth = ceg_exec::count(&graph, &query) as f64;
//! assert!(estimate > 0.0);
//! assert!(bound >= truth); // MOLP is pessimistic (Prop. 5.1)
//! ```

pub mod agm;
pub mod bound_sketch;
pub mod cbs;
pub mod ceg;
pub mod ceg_d;
pub mod ceg_m;
pub mod ceg_o;
pub mod ceg_ocr;
pub mod dbplp;
pub mod lp;
pub mod oracle;
pub mod render;
pub mod trace;

/// The storage seam (`trait Storage` + `OsStorage`/`FaultStorage`) the
/// snapshot and WAL paths are written against. The module physically
/// lives in `ceg-graph` — next to the codecs that consume it, below
/// this crate in the dependency order — and is re-exported here as the
/// framework-level name.
pub use ceg_graph::vfs;

/// Ranked lock wrappers (`OrderedMutex`/`OrderedRwLock` + `LockRank`)
/// enforcing the workspace-wide lock acquisition order; the only lock
/// primitives the `ceg-lint` lock-discipline pass permits outside this
/// crate. Physically lives in `ceg-graph` for the same dependency-order
/// reason as [`vfs`], re-exported here as the framework-level name.
pub use ceg_graph::sync;

pub use ceg::{Aggr, Ceg, CegEdge, Heuristic, PathLen};
pub use ceg_m::{molp_bound, molp_lp_bound, molp_min_path, MolpInstance};
pub use ceg_o::CegO;
pub use ceg_ocr::build_ceg_ocr;
pub use trace::{SpanStart, Trace};
