//! Multi-way intersection of sorted neighbour slices.
//!
//! The counting kernel generates the candidate set of a query variable as
//! the intersection of the CSR neighbour lists induced by its already-bound
//! neighbours. This module supplies the k-way step on top of the two-slice
//! adaptive primitives in [`ceg_graph::intersect`] (linear merge for
//! comparable lengths, galloping for skewed ones): the two smallest lists
//! are merged into a reusable buffer, then each remaining list refines the
//! buffer in place. Total cost is bounded by the smallest list — the
//! worst-case-optimal-join access pattern — and the buffer is the only
//! storage touched, so a warm kernel performs no allocation here.

use ceg_graph::VertexId;

pub use ceg_graph::intersect::{
    gallop, intersect_into, intersect_into_gallop, intersect_into_merge, refine_in_place,
    refine_in_place_gallop, refine_in_place_merge, VertexBitset, GALLOP_RATIO,
};

/// Which intersection strategy the counting kernel uses.
///
/// [`Adaptive`](IntersectStrategy::Adaptive) is the production setting:
/// merge vs gallop by the [`GALLOP_RATIO`] length crossover, plus the
/// per-depth bitset path where the plan enabled it from degree stats. The
/// forced settings pin every pairwise step (and the bitset path on or
/// off) so tests exercise each strategy even where the crossover would
/// never pick it. Read once per plan from `CEG_FORCE_INTERSECT`
/// (`merge` / `gallop` / `bitset`) by [`IntersectStrategy::from_env`], or
/// injected directly via `CountPlan::with_strategy` for race-free tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntersectStrategy {
    #[default]
    Adaptive,
    /// Every pairwise step is a linear two-pointer merge; no bitsets.
    Merge,
    /// Every pairwise step gallops; no bitsets.
    Gallop,
    /// The bitset path is enabled wherever structurally possible
    /// (ignoring the degree-stat crossover); other steps stay adaptive.
    Bitset,
}

impl IntersectStrategy {
    /// The strategy named by `CEG_FORCE_INTERSECT`, default
    /// [`Adaptive`](IntersectStrategy::Adaptive). Unrecognized values
    /// fall back to adaptive rather than erroring: the knob is a test
    /// override, not configuration.
    pub fn from_env() -> Self {
        match std::env::var("CEG_FORCE_INTERSECT").as_deref() {
            Ok("merge") => IntersectStrategy::Merge,
            Ok("gallop") => IntersectStrategy::Gallop,
            Ok("bitset") => IntersectStrategy::Bitset,
            _ => IntersectStrategy::Adaptive,
        }
    }
}

/// Intersect `lists` (each sorted and duplicate-free) into `out`.
///
/// `out` is cleared first; `lists` is reordered (sorted by length so the
/// smallest pair seeds the buffer). With zero lists the result is empty —
/// the caller owns the "no constraint" case; with one list the slice is
/// copied verbatim (callers on the hot path iterate a single slice
/// directly instead).
pub fn intersect_k_into(lists: &mut [&[VertexId]], out: &mut Vec<VertexId>) {
    let (mut merges, mut gallops) = (0u64, 0u64);
    intersect_k_into_profiled(lists, out, &mut merges, &mut gallops);
}

/// [`intersect_k_into`] that also counts each pairwise step by the
/// strategy the two-slice primitives will pick for it: `merges` for
/// linear two-pointer merges, `gallops` for galloping (length ratio at
/// least [`GALLOP_RATIO`]). The classification mirrors the dispatch in
/// [`intersect_into`] / [`refine_in_place`] exactly, so profiling adds
/// one length compare per pairwise step and nothing to the element loop.
pub fn intersect_k_into_profiled(
    lists: &mut [&[VertexId]],
    out: &mut Vec<VertexId>,
    merges: &mut u64,
    gallops: &mut u64,
) {
    intersect_k_into_strategy(lists, out, IntersectStrategy::Adaptive, merges, gallops);
}

/// [`intersect_k_into_profiled`] under a pinned [`IntersectStrategy`]:
/// `Merge` / `Gallop` force every pairwise step onto that primitive
/// (counted under the matching counter); `Adaptive` and `Bitset` use the
/// ratio crossover — the bitset path itself lives a level up, in the
/// kernel's per-depth caches, so at the pairwise level `Bitset` behaves
/// adaptively.
pub fn intersect_k_into_strategy(
    lists: &mut [&[VertexId]],
    out: &mut Vec<VertexId>,
    strategy: IntersectStrategy,
    merges: &mut u64,
    gallops: &mut u64,
) {
    out.clear();
    match lists.len() {
        0 => {}
        1 => out.extend_from_slice(lists[0]),
        _ => {
            lists.sort_unstable_by_key(|l| l.len());
            if lists[0].is_empty() {
                return;
            }
            match pairwise(strategy, lists[0].len(), lists[1].len()) {
                Pairwise::Merge => {
                    *merges += 1;
                    intersect_into_merge(lists[0], lists[1], out);
                }
                Pairwise::Gallop => {
                    *gallops += 1;
                    intersect_into_gallop(lists[0], lists[1], out);
                }
            }
            for l in &lists[2..] {
                if out.is_empty() {
                    return;
                }
                match pairwise(strategy, out.len(), l.len()) {
                    Pairwise::Merge => {
                        *merges += 1;
                        refine_in_place_merge(out, l);
                    }
                    Pairwise::Gallop => {
                        *gallops += 1;
                        refine_in_place_gallop(out, l);
                    }
                }
            }
        }
    }
}

enum Pairwise {
    Merge,
    Gallop,
}

/// One pairwise dispatch decision: the forced strategies pin it, the
/// others apply the [`GALLOP_RATIO`] crossover on `large / small`.
fn pairwise(strategy: IntersectStrategy, small: usize, large: usize) -> Pairwise {
    match strategy {
        IntersectStrategy::Merge => Pairwise::Merge,
        IntersectStrategy::Gallop => Pairwise::Gallop,
        IntersectStrategy::Adaptive | IntersectStrategy::Bitset => {
            if large / small >= GALLOP_RATIO {
                Pairwise::Gallop
            } else {
                Pairwise::Merge
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kway(lists: &[&[VertexId]]) -> Vec<VertexId> {
        let mut ls: Vec<&[VertexId]> = lists.to_vec();
        let mut out = vec![99]; // pre-seeded: must be cleared
        intersect_k_into(&mut ls, &mut out);
        out
    }

    #[test]
    fn zero_and_one_list() {
        assert_eq!(kway(&[]), Vec::<VertexId>::new());
        assert_eq!(kway(&[&[3, 5, 8]]), vec![3, 5, 8]);
    }

    #[test]
    fn empty_list_short_circuits() {
        assert_eq!(kway(&[&[1, 2, 3], &[]]), Vec::<VertexId>::new());
        assert_eq!(kway(&[&[], &[1, 2], &[2, 3]]), Vec::<VertexId>::new());
    }

    #[test]
    fn three_way_intersection() {
        assert_eq!(
            kway(&[&[1, 2, 3, 4, 5, 9], &[2, 4, 5, 9], &[0, 4, 9, 11]]),
            vec![4, 9]
        );
    }

    #[test]
    fn one_element_gallop() {
        // single-element small side against a long list: pure gallop
        let large: Vec<VertexId> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(kway(&[&[500], &large]), vec![500]);
        assert_eq!(kway(&[&[501], &large]), Vec::<VertexId>::new());
        assert_eq!(kway(&[&large, &[1998]]), vec![1998]);
    }

    #[test]
    fn duplicate_free_invariant() {
        // duplicate-free sorted inputs → duplicate-free sorted output,
        // even with identical lists repeated
        let a: &[VertexId] = &[1, 4, 7, 9];
        let got = kway(&[a, a, a]);
        assert_eq!(got, vec![1, 4, 7, 9]);
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(got, dedup);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn profiled_counts_match_strategy_dispatch() {
        let large: Vec<VertexId> = (0..1000).map(|i| i * 2).collect();
        let mut out = Vec::new();
        // Comparable lengths: one merge, no gallop.
        let (mut m, mut g) = (0, 0);
        let mut ls: Vec<&[VertexId]> = vec![&[1, 2, 3], &[2, 3, 4]];
        intersect_k_into_profiled(&mut ls, &mut out, &mut m, &mut g);
        assert_eq!((m, g), (1, 0));
        assert_eq!(out, vec![2, 3]);
        // Skewed pair: classified as a gallop.
        let (mut m, mut g) = (0, 0);
        let mut ls: Vec<&[VertexId]> = vec![&[500], &large];
        intersect_k_into_profiled(&mut ls, &mut out, &mut m, &mut g);
        assert_eq!((m, g), (0, 1));
        // Three-way with a skewed refine: one merge seed + one gallop.
        let (mut m, mut g) = (0, 0);
        let mut ls: Vec<&[VertexId]> = vec![&[2, 500], &[2, 500, 501], &large];
        intersect_k_into_profiled(&mut ls, &mut out, &mut m, &mut g);
        assert_eq!((m, g), (1, 1));
        assert_eq!(out, vec![2, 500]);
    }

    #[test]
    fn reuses_buffer_without_reallocating() {
        let mut out = Vec::with_capacity(8);
        let cap = out.capacity();
        for _ in 0..10 {
            let mut ls: Vec<&[VertexId]> = vec![&[1, 2, 3, 5], &[2, 3, 5, 8], &[3, 5]];
            intersect_k_into(&mut ls, &mut out);
            assert_eq!(out, vec![3, 5]);
        }
        assert_eq!(out.capacity(), cap);
    }
}
