//! Exact homomorphism counting for acyclic queries by tree dynamic
//! programming.
//!
//! The backtracking matcher enumerates matches one by one, which is
//! hopeless for, e.g., a 12-edge star on a skewed graph (counts reach
//! 10²⁰). For acyclic (tree-shaped) queries the homomorphism count
//! factorizes: rooting the query tree anywhere,
//!
//! ```text
//!   down[v][u] = Π_{child c of v} Σ_{u' ∈ nbrs_e(u)} down[c][u']
//! ```
//!
//! and the total is `Σ_u down[root][u]` — one pass per query edge, `O(|E|)`
//! each. Counts are returned as `f64` (they routinely exceed `u64`).
//!
//! The same factorization powers the crate-private `factorize` pass: for a
//! *cyclic* query with acyclic sub-structures hanging off its cyclic core,
//! the pendant trees
//! are peeled into exact per-vertex weight vectors and only the core is
//! enumerated, each core binding contributing the product of its weights
//! in closed form. `CountPlan::new_counting` wires this into the kernel,
//! extending the independent-suffix shortcut from "count the suffix sets"
//! to "sum their subtree weights".

use ceg_graph::{GraphView, LabeledGraph, VertexId};
use ceg_query::cycles::is_acyclic;
use ceg_query::{QueryEdge, QueryGraph, VarId};

use crate::constraints::{VarConstraint, VarConstraints};

/// Exact homomorphism count of an acyclic connected query, or `None` if
/// the query is cyclic or disconnected (use the backtracking counter).
pub fn count_tree_dp(graph: &LabeledGraph, query: &QueryGraph) -> Option<f64> {
    if query.num_edges() == 0 || !query.is_connected() || !is_acyclic(query) {
        return None;
    }
    let n = graph.num_vertices();
    let root: VarId = 0;

    // DFS order from the root over the query tree.
    let nv = query.num_vars() as usize;
    let mut order: Vec<(VarId, Option<usize>)> = Vec::with_capacity(nv); // (var, edge to parent)
    let mut visited = vec![false; nv];
    let mut stack = vec![(root, None)];
    while let Some((v, pe)) = stack.pop() {
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        order.push((v, pe));
        for i in query.edges_at(v) {
            let e = query.edge(i);
            let o = e.other(v);
            if !visited[o as usize] {
                stack.push((o, Some(i)));
            }
        }
    }
    if order.len() != nv {
        return None; // disconnected (defensive; checked above)
    }

    // Bottom-up accumulation: down[v] starts as all-ones and children
    // multiply their propagated sums in.
    let mut down: Vec<Vec<f64>> = vec![vec![1.0; n]; nv];
    for &(v, parent_edge) in order.iter().rev() {
        let Some(pei) = parent_edge else { continue };
        let e = query.edge(pei);
        let parent = e.other(v);
        // propagate down[v] to the parent through edge e:
        // parent_val[u] *= Σ_{u' adj} down[v][u']
        let child_vals = std::mem::take(&mut down[v as usize]);
        let parent_vals = &mut down[parent as usize];
        if e.src == parent {
            // parent -e-> v: sum over out-neighbours
            for (u, pv) in parent_vals.iter_mut().enumerate() {
                if *pv == 0.0 {
                    continue;
                }
                let mut s = 0.0;
                for &u2 in graph.out_neighbors(u as VertexId, e.label) {
                    s += child_vals[u2 as usize];
                }
                *pv *= s;
            }
        } else {
            // v -e-> parent: sum over in-neighbours
            for (u, pv) in parent_vals.iter_mut().enumerate() {
                if *pv == 0.0 {
                    continue;
                }
                let mut s = 0.0;
                for &u2 in graph.in_neighbors(u as VertexId, e.label) {
                    s += child_vals[u2 as usize];
                }
                *pv *= s;
            }
        }
    }
    Some(down[root as usize].iter().sum())
}

/// The factorized form of a cyclic query: its cyclic core plus the exact
/// weight vectors of the pendant trees peeled off it. Produced by
/// [`factorize`], consumed by `CountPlan::new_counting`.
pub(crate) struct Factorization {
    /// The core query over compacted variable ids (every simple cycle of
    /// the original query, plus any self-loops and constrained stubs).
    pub core: QueryGraph,
    /// The original constraints remapped onto the core ids.
    pub cons: VarConstraints,
    /// Per core variable: `weights[v][u]` = homomorphism count of the
    /// pendant tree hanging off `v` when `v ↦ u`; `None` means no
    /// pendant (weight 1 everywhere).
    pub weights: Vec<Option<Box<[u64]>>>,
}

/// Peel the acyclic sub-structures off a cyclic query, folding each into
/// a per-vertex weight vector by the tree DP above (in exact `u64`).
///
/// A variable is peelable when exactly one non-loop edge still touches
/// it, it carries no constraint and no self-loop. Peeling to a fixpoint
/// strips every pendant tree; what remains is the 2-core. Returns `None`
/// — meaning "count the query unfactorized" — when nothing peels, when
/// the remainder has no edges (the query was acyclic: the classic kernel
/// with its suffix shortcut already handles trees well and `enumerate`
/// semantics must not change), or when a weight overflows `u64`.
pub(crate) fn factorize<G: GraphView>(
    graph: &G,
    query: &QueryGraph,
    cons: &VarConstraints,
) -> Option<Factorization> {
    let nv = query.num_vars() as usize;
    let n = graph.num_vertices();
    let mut removed_edge = vec![false; query.num_edges()];
    let mut removed_var = vec![false; nv];
    let mut degree = vec![0usize; nv]; // non-loop incident edges remaining
    let mut has_self_loop = vec![false; nv];
    for e in query.edges() {
        if e.src == e.dst {
            has_self_loop[e.src as usize] = true;
        } else {
            degree[e.src as usize] += 1;
            degree[e.dst as usize] += 1;
        }
    }

    let peelable = |v: usize, degree: &[usize]| {
        degree[v] == 1 && !has_self_loop[v] && matches!(cons.get(v as VarId), VarConstraint::Any)
    };
    // Phase 1: peel with degree bookkeeping only — O(query) — and record
    // the order. The expensive O(|V|) weight folding below runs only once
    // we know a non-empty core actually survives; acyclic queries (whose
    // core is empty, and which every `count()` call probes) abandon here
    // for free.
    let mut peel_order: Vec<(usize, usize)> = Vec::new(); // (var, edge)
    let mut queue: Vec<usize> = (0..nv).filter(|&v| peelable(v, &degree)).collect();
    while let Some(v) = queue.pop() {
        if removed_var[v] || degree[v] != 1 {
            continue;
        }
        let ei = query
            .edges_at(v as VarId)
            .find(|&i| {
                !removed_edge[i] && {
                    let e = query.edge(i);
                    e.src != e.dst
                }
            })
            .expect("degree-1 variable has a live non-loop edge");
        let parent = query.edge(ei).other(v as VarId) as usize;
        removed_edge[ei] = true;
        removed_var[v] = true;
        degree[v] = 0;
        degree[parent] -= 1;
        peel_order.push((v, ei));
        if !removed_var[parent] && peelable(parent, &degree) {
            queue.push(parent);
        }
    }
    if peel_order.is_empty() {
        return None;
    }
    let live_edges = removed_edge.iter().filter(|&&r| !r).count()
        - query.edges().iter().filter(|e| e.src == e.dst).count();
    if live_edges == 0 {
        return None;
    }

    // Phase 2: replay the peel order, folding each variable's subtree
    // weight into its parent:
    //   w_parent[u] *= Σ_{u' ∈ nbrs_e(u)} w_v[u']
    // (w_v = None is the all-ones leaf weight, so the sum is the
    // degree). Exact u64 with overflow ⇒ abandon factorization.
    let mut weights: Vec<Option<Box<[u64]>>> = (0..nv).map(|_| None).collect();
    for &(v, ei) in &peel_order {
        let e = query.edge(ei);
        let parent = e.other(v as VarId) as usize;
        let child = weights[v].take();
        let pw = weights[parent].get_or_insert_with(|| vec![1u64; n].into_boxed_slice());
        for u in 0..n {
            if pw[u] == 0 {
                continue;
            }
            let nbrs = if e.src == parent as VarId {
                graph.out_neighbors(u as VertexId, e.label)
            } else {
                graph.in_neighbors(u as VertexId, e.label)
            };
            let s = match &child {
                None => nbrs.len() as u64,
                Some(cw) => {
                    let mut s = 0u64;
                    for &u2 in nbrs {
                        s = s.checked_add(cw[u2 as usize])?;
                    }
                    s
                }
            };
            pw[u] = pw[u].checked_mul(s)?;
        }
    }

    // Compact the surviving variables and remap edges + constraints.
    let mut to_core = vec![VarId::MAX; nv];
    let mut ncore: VarId = 0;
    for v in 0..nv {
        if !removed_var[v] {
            to_core[v] = ncore;
            ncore += 1;
        }
    }
    let core_edges: Vec<QueryEdge> = query
        .edges()
        .iter()
        .enumerate()
        .filter(|&(i, _)| !removed_edge[i])
        .map(|(_, e)| QueryEdge::new(to_core[e.src as usize], to_core[e.dst as usize], e.label))
        .collect();
    let mut core_cons = VarConstraints::none(ncore);
    let mut core_weights: Vec<Option<Box<[u64]>>> = (0..ncore).map(|_| None).collect();
    for v in 0..nv {
        if removed_var[v] {
            continue;
        }
        let cv = to_core[v];
        core_cons.set(cv, cons.get(v as VarId));
        core_weights[cv as usize] = weights[v].take();
    }
    Some(Factorization {
        core: QueryGraph::new(ncore, core_edges),
        cons: core_cons,
        weights: core_weights,
    })
}

/// Exact truth for any connected query: tree DP when acyclic, otherwise
/// backtracking with the given budget. `None` when the budget runs out.
pub fn exact_count(
    graph: &LabeledGraph,
    query: &QueryGraph,
    budget: crate::count::CountBudget,
) -> Option<f64> {
    if let Some(c) = count_tree_dp(graph, query) {
        return Some(c);
    }
    crate::count::count_with_limit(
        graph,
        query,
        &crate::constraints::VarConstraints::none(query.num_vars()),
        budget,
    )
    .map(|c| c as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::{count, CountBudget};
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(20);
        for i in 0..6 {
            b.add_edge(i, 6 + i, 0);
            b.add_edge(6 + i, 12 + (i % 4), 1);
            b.add_edge(12 + (i % 4), 16 + (i % 3), 2);
        }
        b.build()
    }

    #[test]
    fn tree_dp_matches_backtracking() {
        let g = toy();
        for q in [
            templates::path(1, &[0]),
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 0, 0]),
            templates::q5f(&[0, 1, 2, 2, 2]),
            templates::tree_depth(4, 3, &[0, 1, 2, 1]),
        ] {
            let dp = count_tree_dp(&g, &q).unwrap();
            let bt = count(&g, &q) as f64;
            assert_eq!(dp, bt, "mismatch on {q}");
        }
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let g = toy();
        let q = templates::cycle(3, &[0, 1, 2]);
        assert_eq!(count_tree_dp(&g, &q), None);
    }

    #[test]
    fn huge_star_counts_do_not_explode() {
        // hub with 200 out-edges; a 8-star has 200^8 ≈ 2.6e18 homs —
        // enumeration would never finish, the DP is instant.
        let mut b = GraphBuilder::new(202);
        for i in 1..=200u32 {
            b.add_edge(0, i, 0);
        }
        let g = b.build();
        let q = templates::star(8, &[0; 8]);
        let c = count_tree_dp(&g, &q).unwrap();
        assert_eq!(c, 200f64.powi(8));
    }

    #[test]
    fn exact_count_dispatches() {
        let g = toy();
        let acyclic = templates::path(2, &[0, 1]);
        let cyclic = templates::cycle(3, &[0, 1, 2]);
        assert_eq!(
            exact_count(&g, &acyclic, CountBudget::UNLIMITED),
            Some(count(&g, &acyclic) as f64)
        );
        assert_eq!(
            exact_count(&g, &cyclic, CountBudget::UNLIMITED),
            Some(count(&g, &cyclic) as f64)
        );
        assert_eq!(exact_count(&g, &cyclic, CountBudget::new(1)), None);
    }

    #[test]
    fn zero_matches() {
        let g = toy();
        let q = templates::path(2, &[2, 0]); // label 2 targets have no 0-out
        assert_eq!(count_tree_dp(&g, &q), Some(0.0));
    }
}
