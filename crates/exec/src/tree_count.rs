//! Exact homomorphism counting for acyclic queries by tree dynamic
//! programming.
//!
//! The backtracking matcher enumerates matches one by one, which is
//! hopeless for, e.g., a 12-edge star on a skewed graph (counts reach
//! 10²⁰). For acyclic (tree-shaped) queries the homomorphism count
//! factorizes: rooting the query tree anywhere,
//!
//! ```text
//!   down[v][u] = Π_{child c of v} Σ_{u' ∈ nbrs_e(u)} down[c][u']
//! ```
//!
//! and the total is `Σ_u down[root][u]` — one pass per query edge, `O(|E|)`
//! each. Counts are returned as `f64` (they routinely exceed `u64`).

use ceg_graph::{LabeledGraph, VertexId};
use ceg_query::cycles::is_acyclic;
use ceg_query::{QueryGraph, VarId};

/// Exact homomorphism count of an acyclic connected query, or `None` if
/// the query is cyclic or disconnected (use the backtracking counter).
pub fn count_tree_dp(graph: &LabeledGraph, query: &QueryGraph) -> Option<f64> {
    if query.num_edges() == 0 || !query.is_connected() || !is_acyclic(query) {
        return None;
    }
    let n = graph.num_vertices();
    let root: VarId = 0;

    // DFS order from the root over the query tree.
    let nv = query.num_vars() as usize;
    let mut order: Vec<(VarId, Option<usize>)> = Vec::with_capacity(nv); // (var, edge to parent)
    let mut visited = vec![false; nv];
    let mut stack = vec![(root, None)];
    while let Some((v, pe)) = stack.pop() {
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        order.push((v, pe));
        for i in query.edges_at(v) {
            let e = query.edge(i);
            let o = e.other(v);
            if !visited[o as usize] {
                stack.push((o, Some(i)));
            }
        }
    }
    if order.len() != nv {
        return None; // disconnected (defensive; checked above)
    }

    // Bottom-up accumulation: down[v] starts as all-ones and children
    // multiply their propagated sums in.
    let mut down: Vec<Vec<f64>> = vec![vec![1.0; n]; nv];
    for &(v, parent_edge) in order.iter().rev() {
        let Some(pei) = parent_edge else { continue };
        let e = query.edge(pei);
        let parent = e.other(v);
        // propagate down[v] to the parent through edge e:
        // parent_val[u] *= Σ_{u' adj} down[v][u']
        let child_vals = std::mem::take(&mut down[v as usize]);
        let parent_vals = &mut down[parent as usize];
        if e.src == parent {
            // parent -e-> v: sum over out-neighbours
            for (u, pv) in parent_vals.iter_mut().enumerate() {
                if *pv == 0.0 {
                    continue;
                }
                let mut s = 0.0;
                for &u2 in graph.out_neighbors(u as VertexId, e.label) {
                    s += child_vals[u2 as usize];
                }
                *pv *= s;
            }
        } else {
            // v -e-> parent: sum over in-neighbours
            for (u, pv) in parent_vals.iter_mut().enumerate() {
                if *pv == 0.0 {
                    continue;
                }
                let mut s = 0.0;
                for &u2 in graph.in_neighbors(u as VertexId, e.label) {
                    s += child_vals[u2 as usize];
                }
                *pv *= s;
            }
        }
    }
    Some(down[root as usize].iter().sum())
}

/// Exact truth for any connected query: tree DP when acyclic, otherwise
/// backtracking with the given budget. `None` when the budget runs out.
pub fn exact_count(
    graph: &LabeledGraph,
    query: &QueryGraph,
    budget: crate::count::CountBudget,
) -> Option<f64> {
    if let Some(c) = count_tree_dp(graph, query) {
        return Some(c);
    }
    crate::count::count_with_limit(
        graph,
        query,
        &crate::constraints::VarConstraints::none(query.num_vars()),
        budget,
    )
    .map(|c| c as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::{count, CountBudget};
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(20);
        for i in 0..6 {
            b.add_edge(i, 6 + i, 0);
            b.add_edge(6 + i, 12 + (i % 4), 1);
            b.add_edge(12 + (i % 4), 16 + (i % 3), 2);
        }
        b.build()
    }

    #[test]
    fn tree_dp_matches_backtracking() {
        let g = toy();
        for q in [
            templates::path(1, &[0]),
            templates::path(2, &[0, 1]),
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 0, 0]),
            templates::q5f(&[0, 1, 2, 2, 2]),
            templates::tree_depth(4, 3, &[0, 1, 2, 1]),
        ] {
            let dp = count_tree_dp(&g, &q).unwrap();
            let bt = count(&g, &q) as f64;
            assert_eq!(dp, bt, "mismatch on {q}");
        }
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let g = toy();
        let q = templates::cycle(3, &[0, 1, 2]);
        assert_eq!(count_tree_dp(&g, &q), None);
    }

    #[test]
    fn huge_star_counts_do_not_explode() {
        // hub with 200 out-edges; a 8-star has 200^8 ≈ 2.6e18 homs —
        // enumeration would never finish, the DP is instant.
        let mut b = GraphBuilder::new(202);
        for i in 1..=200u32 {
            b.add_edge(0, i, 0);
        }
        let g = b.build();
        let q = templates::star(8, &[0; 8]);
        let c = count_tree_dp(&g, &q).unwrap();
        assert_eq!(c, 200f64.powi(8));
    }

    #[test]
    fn exact_count_dispatches() {
        let g = toy();
        let acyclic = templates::path(2, &[0, 1]);
        let cyclic = templates::cycle(3, &[0, 1, 2]);
        assert_eq!(
            exact_count(&g, &acyclic, CountBudget::UNLIMITED),
            Some(count(&g, &acyclic) as f64)
        );
        assert_eq!(
            exact_count(&g, &cyclic, CountBudget::UNLIMITED),
            Some(count(&g, &cyclic) as f64)
        );
        assert_eq!(exact_count(&g, &cyclic, CountBudget::new(1)), None);
    }

    #[test]
    fn zero_matches() {
        let g = toy();
        let q = templates::path(2, &[2, 0]); // label 2 targets have no 0-out
        assert_eq!(count_tree_dp(&g, &q), Some(0.0));
    }
}
