//! The backtracking homomorphism counter.

use ceg_graph::{LabeledGraph, VertexId};
use ceg_query::{QueryGraph, VarId};

use crate::constraints::{VarConstraint, VarConstraints};
use crate::order::variable_order;

/// Work budget for a counting run: the maximum number of candidate
/// extensions the matcher may try. Exceeding the budget aborts the count
/// (the paper's baselines also time out on hard queries, Section 6.4).
#[derive(Debug, Clone, Copy)]
pub struct CountBudget {
    pub max_expansions: u64,
}

impl CountBudget {
    pub const UNLIMITED: CountBudget = CountBudget {
        max_expansions: u64::MAX,
    };

    pub fn new(max_expansions: u64) -> Self {
        CountBudget { max_expansions }
    }
}

/// Count the homomorphisms of `query` in `graph` (join semantics: distinct
/// variables may map to the same vertex).
pub fn count(graph: &LabeledGraph, query: &QueryGraph) -> u64 {
    count_constrained(graph, query, &VarConstraints::none(query.num_vars()))
}

/// Count homomorphisms subject to per-variable constraints.
pub fn count_constrained(graph: &LabeledGraph, query: &QueryGraph, cons: &VarConstraints) -> u64 {
    count_with_limit(graph, query, cons, CountBudget::UNLIMITED)
        .expect("unlimited budget cannot be exhausted")
}

/// Count with a work budget; `None` when the budget is exhausted.
pub fn count_with_limit(
    graph: &LabeledGraph,
    query: &QueryGraph,
    cons: &VarConstraints,
    budget: CountBudget,
) -> Option<u64> {
    let mut total = 0u64;
    let exhausted = enumerate_inner(graph, query, cons, budget, &mut |_| {
        total += 1;
        true
    });
    exhausted.then_some(total)
}

/// Enumerate homomorphisms, invoking `visit` with the binding indexed by
/// variable id; `visit` returns `false` to stop early. Returns `false` if
/// enumeration was stopped (by the visitor or the budget).
pub fn enumerate(
    graph: &LabeledGraph,
    query: &QueryGraph,
    cons: &VarConstraints,
    visit: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    enumerate_inner(graph, query, cons, CountBudget::UNLIMITED, visit)
}

fn enumerate_inner(
    graph: &LabeledGraph,
    query: &QueryGraph,
    cons: &VarConstraints,
    budget: CountBudget,
    visit: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    if query.num_vars() == 0 {
        return visit(&[]);
    }
    let order = variable_order(graph, query);
    let mut binding = vec![0 as VertexId; query.num_vars() as usize];
    let mut state = Matcher {
        graph,
        query,
        cons,
        order: &order,
        binding: &mut binding,
        bound: 0,
        remaining: budget.max_expansions,
    };
    state.recurse(0, visit)
}

struct Matcher<'a> {
    graph: &'a LabeledGraph,
    query: &'a QueryGraph,
    cons: &'a VarConstraints,
    order: &'a [VarId],
    binding: &'a mut [VertexId],
    bound: u32,
    remaining: u64,
}

impl Matcher<'_> {
    /// Returns `false` when stopped early (budget or visitor).
    fn recurse(&mut self, depth: usize, visit: &mut dyn FnMut(&[VertexId]) -> bool) -> bool {
        if depth == self.order.len() {
            return visit(self.binding);
        }
        let v = self.order[depth];
        let vc = self.cons.get(v);

        // Split the query edges incident to v into the one used to generate
        // candidates (smallest list) and the rest used as filters.
        let mut gen: Option<(usize, &[VertexId])> = None;
        let mut filters: Vec<usize> = Vec::new();
        for i in self.query.edges_at(v) {
            let e = self.query.edge(i);
            if e.src == e.dst {
                filters.push(i); // self-loop: check after binding
                continue;
            }
            let other = e.other(v);
            if self.bound & (1 << other) == 0 {
                continue; // other endpoint not bound yet
            }
            let o_val = self.binding[other as usize];
            let list = if e.dst == v {
                self.graph.out_neighbors(o_val, e.label)
            } else {
                self.graph.in_neighbors(o_val, e.label)
            };
            match gen {
                Some((_, g)) if g.len() <= list.len() => filters.push(i),
                Some((gi, _)) => {
                    filters.push(gi);
                    gen = Some((i, list));
                }
                None => gen = Some((i, list)),
            }
        }

        match gen {
            Some((_, candidates)) => {
                for &c in candidates {
                    if self.remaining == 0 {
                        return false;
                    }
                    self.remaining -= 1;
                    if !vc.admits(c) || !self.check_filters(&filters, v, c) {
                        continue;
                    }
                    self.binding[v as usize] = c;
                    self.bound |= 1 << v;
                    let ok = self.recurse(depth + 1, visit);
                    self.bound &= !(1 << v);
                    if !ok {
                        return false;
                    }
                }
                true
            }
            None => {
                // No bound neighbour (first variable, or a disconnected
                // component): scan the domain, restricted when possible.
                match vc {
                    VarConstraint::Fixed(u) => {
                        if self.remaining == 0 {
                            return false;
                        }
                        self.remaining -= 1;
                        if !self.check_filters(&filters, v, u) {
                            return true;
                        }
                        self.binding[v as usize] = u;
                        self.bound |= 1 << v;
                        let ok = self.recurse(depth + 1, visit);
                        self.bound &= !(1 << v);
                        ok
                    }
                    _ => {
                        for c in 0..self.graph.num_vertices() as VertexId {
                            if self.remaining == 0 {
                                return false;
                            }
                            self.remaining -= 1;
                            if !vc.admits(c) || !self.check_filters(&filters, v, c) {
                                continue;
                            }
                            self.binding[v as usize] = c;
                            self.bound |= 1 << v;
                            let ok = self.recurse(depth + 1, visit);
                            self.bound &= !(1 << v);
                            if !ok {
                                return false;
                            }
                        }
                        true
                    }
                }
            }
        }
    }

    fn check_filters(&self, filters: &[usize], v: VarId, c: VertexId) -> bool {
        for &i in filters {
            let e = self.query.edge(i);
            if e.src == e.dst {
                if !self.graph.has_edge(c, c, e.label) {
                    return false;
                }
                continue;
            }
            let other = e.other(v);
            if self.bound & (1 << other) == 0 {
                continue;
            }
            let o_val = self.binding[other as usize];
            let ok = if e.dst == v {
                self.graph.has_edge(o_val, c, e.label)
            } else {
                self.graph.has_edge(c, o_val, e.label)
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::{templates, QueryEdge};

    /// Graph: label 0 = path edges 0->1->2->3; label 1 = 1->3, 3->3 (loop).
    fn sample() -> LabeledGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 0);
        b.add_edge(1, 3, 1);
        b.add_edge(3, 3, 1);
        b.build()
    }

    #[test]
    fn single_edge_count_is_relation_size() {
        let g = sample();
        let q = templates::path(1, &[0]);
        assert_eq!(count(&g, &q), 3);
        let q1 = templates::path(1, &[1]);
        assert_eq!(count(&g, &q1), 2);
    }

    #[test]
    fn two_path_count() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        // 0->1->2 and 1->2->3
        assert_eq!(count(&g, &q), 2);
    }

    #[test]
    fn homomorphism_semantics_allow_repeats() {
        // query a0 -1-> a1 -1-> a2 on graph with 1->3, 3->3:
        // matches: (1,3,3) and (3,3,3).
        let g = sample();
        let q = templates::path(2, &[1, 1]);
        assert_eq!(count(&g, &q), 2);
    }

    #[test]
    fn self_loop_query() {
        let g = sample();
        let q = QueryGraph::new(1, vec![QueryEdge::new(0, 0, 1)]);
        assert_eq!(count(&g, &q), 1); // only vertex 3
    }

    #[test]
    fn triangle_count() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 0);
        let g = b.build();
        let q = templates::cycle(3, &[0, 0, 0]);
        // the directed triangle matches at 3 rotations
        assert_eq!(count(&g, &q), 3);
    }

    #[test]
    fn star_count_is_degree_product() {
        let mut b = GraphBuilder::new(5);
        for d in 1..5 {
            b.add_edge(0, d, 0);
        }
        let g = b.build();
        // 2-star: ordered pairs of out-neighbours = 4*4 = 16 homomorphisms
        let q = templates::star(2, &[0, 0]);
        assert_eq!(count(&g, &q), 16);
    }

    #[test]
    fn constrained_count_partitions_sum_to_total() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let total = count(&g, &q);
        let buckets = 3u32;
        let mut sum = 0;
        for b0 in 0..buckets {
            let mut cons = VarConstraints::none(3);
            cons.set(
                1,
                VarConstraint::HashBucket {
                    buckets,
                    bucket: b0,
                },
            );
            sum += count_constrained(&g, &q, &cons);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn fixed_constraint_counts_extensions() {
        let g = sample();
        let q = templates::path(1, &[0]);
        let mut cons = VarConstraints::none(2);
        cons.set(0, VarConstraint::Fixed(1));
        assert_eq!(count_constrained(&g, &q, &cons), 1); // 1 -> 2
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let res = count_with_limit(&g, &q, &VarConstraints::none(3), CountBudget::new(1));
        assert!(res.is_none());
    }

    #[test]
    fn enumerate_visits_every_match() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let mut seen = Vec::new();
        enumerate(&g, &q, &VarConstraints::none(3), &mut |b| {
            seen.push((b[0], b[1], b[2]));
            true
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1, 2), (1, 2, 3)]);
    }

    #[test]
    fn enumerate_early_stop() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let mut n = 0;
        let finished = enumerate(&g, &q, &VarConstraints::none(3), &mut |_| {
            n += 1;
            false
        });
        assert!(!finished);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = GraphBuilder::with_labels(0, 1).build();
        let q = templates::path(2, &[0, 0]);
        assert_eq!(count(&g, &q), 0);
    }

    #[test]
    fn q5f_on_small_graph() {
        // hand-checkable fork: hub vertex 1 with B in, and C,D,E out.
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 7, 0); // A: 0 -> 7
        b.add_edge(7, 1, 1); // B: 7 -> 1
        b.add_edge(1, 2, 2); // C
        b.add_edge(1, 3, 2); // C (two C-edges)
        b.add_edge(1, 4, 3); // D
        b.add_edge(1, 5, 4); // E
        let g = b.build();
        let q = templates::q5f(&[0, 1, 2, 3, 4]);
        // A,B fixed; C has 2 choices; D and E one each => 2 matches
        assert_eq!(count(&g, &q), 2);
    }
}
