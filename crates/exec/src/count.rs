//! The plan-driven backtracking homomorphism counter.
//!
//! The kernel binds query variables one at a time in a connectivity-aware
//! order. Which incident edges constrain a variable is fully determined by
//! that order, so a [`CountPlan`] precomputes, once per `(query, order)`,
//! a per-depth *extension plan*: the edges into the already-bound prefix,
//! the self-loop checks, and — for variables with no bound neighbour — how
//! to seed candidates. Recursion then performs **zero allocations**: the
//! candidate set of each variable is the k-way merge/galloping
//! intersection ([`crate::intersect`]) of the sorted CSR neighbour slices
//! induced by its bound neighbours, written into a reusable per-depth
//! buffer sized at plan time from the graph's cached maximum degrees.
//!
//! Unconstrained root variables iterate the smallest label-restricted
//! endpoint list (`graph.sources(l)` / `targets(l)`) instead of the whole
//! vertex domain; truly isolated variables still scan the domain.

use ceg_graph::{GraphView, LabelId, VertexBitset, VertexId};
use ceg_query::{QueryGraph, VarId};

use crate::constraints::{VarConstraint, VarConstraints};
use crate::intersect::{
    intersect_into_gallop, intersect_k_into, intersect_k_into_strategy, refine_in_place_gallop,
    refine_in_place_merge, IntersectStrategy, GALLOP_RATIO,
};
use crate::order::variable_order;
use crate::tree_count::factorize;

/// Profiling counters from one counting run. Plain `u64` fields bumped
/// inline by the kernel — no allocation, no atomics, no globals — so the
/// cost over an unprofiled run is a handful of register increments per
/// candidate, and `tests/alloc_guard.rs` still holds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidate vertices tried (each one charged against the budget).
    pub candidates: u64,
    /// Pairwise intersection steps that ran as a linear two-pointer merge.
    pub merge_intersections: u64,
    /// Pairwise intersection steps that ran as a gallop
    /// (length ratio at least [`crate::intersect::GALLOP_RATIO`]).
    pub gallop_intersections: u64,
    /// Intersection steps that ran through a per-depth candidate bitset
    /// (a word-wise AND against a cached [`ceg_graph::VertexBitset`]).
    pub bitset_intersections: u64,
    /// Independent-suffix products taken instead of enumerating bindings.
    pub suffix_shortcuts: u64,
    /// Suffix subtrees answered from the per-depth memo table instead of
    /// being re-explored (see `SuffixMemo`).
    pub memo_hits: u64,
    /// Total expansions charged against the budget (candidates plus
    /// suffix-product bulk charges).
    pub budget_consumed: u64,
    /// Deepest binding depth reached (number of bound variables).
    pub deepest_level: u64,
}

impl KernelStats {
    /// Fold `other` into `self`: counters add, `deepest_level` takes the
    /// maximum. Used to aggregate per-pattern runs into a fill total.
    pub fn absorb(&mut self, other: &KernelStats) {
        self.candidates += other.candidates;
        self.merge_intersections += other.merge_intersections;
        self.gallop_intersections += other.gallop_intersections;
        self.bitset_intersections += other.bitset_intersections;
        self.suffix_shortcuts += other.suffix_shortcuts;
        self.memo_hits += other.memo_hits;
        self.budget_consumed = self.budget_consumed.saturating_add(other.budget_consumed);
        self.deepest_level = self.deepest_level.max(other.deepest_level);
    }
}

/// Work budget for a counting run: the maximum number of candidate
/// extensions the matcher may try, plus an optional wall-clock deadline.
/// Exceeding either aborts the count (the paper's baselines also time out
/// on hard queries, Section 6.4).
#[derive(Debug, Clone, Copy)]
pub struct CountBudget {
    pub max_expansions: u64,
    /// Abandon the count once this instant passes. Checked every
    /// [`DEADLINE_CHECK_INTERVAL`] charged expansions, so a deadline adds
    /// no per-candidate clock read to the hot loop.
    pub deadline: Option<std::time::Instant>,
}

impl CountBudget {
    pub const UNLIMITED: CountBudget = CountBudget {
        max_expansions: u64::MAX,
        deadline: None,
    };

    pub fn new(max_expansions: u64) -> Self {
        CountBudget {
            max_expansions,
            deadline: None,
        }
    }

    /// A purely time-bounded budget (unlimited expansions).
    pub fn until(deadline: std::time::Instant) -> Self {
        CountBudget {
            max_expansions: u64::MAX,
            deadline: Some(deadline),
        }
    }

    /// Attach a wall-clock deadline to this budget.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Charged expansions between wall-clock reads when a deadline is set:
/// coarse enough that `Instant::now` stays off the per-candidate path,
/// fine enough that a deadline overrun is bounded by a few thousand
/// cheap candidate checks.
pub const DEADLINE_CHECK_INTERVAL: u32 = 4096;

/// The mutable budget accounting threaded through the recursion: the
/// remaining expansion allowance plus the (optional) deadline and its
/// check countdown.
struct BudgetState {
    remaining: u64,
    deadline: Option<std::time::Instant>,
    until_check: u32,
    stats: KernelStats,
}

impl BudgetState {
    fn new(budget: CountBudget) -> Self {
        BudgetState {
            remaining: budget.max_expansions,
            deadline: budget.deadline,
            until_check: DEADLINE_CHECK_INTERVAL,
            stats: KernelStats::default(),
        }
    }

    /// True when the deadline (if any) has already passed — callers use
    /// this to skip plan execution entirely.
    fn expired_at_entry(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Charge one candidate expansion; `false` aborts the run.
    #[inline]
    fn charge_one(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.stats.candidates += 1;
        self.stats.budget_consumed += 1;
        self.check_deadline()
    }

    /// Charge a whole candidate list up front — the counting kernel's
    /// batched form of [`BudgetState::charge_one`]: one budget touch and
    /// one deadline countdown (weighted by the list length, so the
    /// overrun bound stays [`DEADLINE_CHECK_INTERVAL`] candidates) per
    /// list. `false` aborts the run.
    #[inline]
    fn charge_list(&mut self, n: u64) -> bool {
        if self.remaining < n {
            // The run aborts here: report the allowance as spent so an
            // aborted run still accounts for the budget that stopped it.
            self.stats.budget_consumed = self.stats.budget_consumed.saturating_add(self.remaining);
            self.remaining = 0;
            return false;
        }
        self.remaining -= n;
        self.stats.candidates += n;
        self.stats.budget_consumed = self.stats.budget_consumed.saturating_add(n);
        let Some(deadline) = self.deadline else {
            return true;
        };
        let n = n.min(u32::MAX as u64) as u32;
        match self.until_check.checked_sub(n) {
            Some(left) if left > 0 => {
                self.until_check = left;
                return true;
            }
            _ => {}
        }
        self.until_check = DEADLINE_CHECK_INTERVAL;
        if std::time::Instant::now() >= deadline {
            // Poison the allowance so every later charge fails fast.
            self.remaining = 0;
            return false;
        }
        true
    }

    /// Charge `n` expansions at once (independent-suffix products and
    /// weighted-leaf bulk results); `false` aborts the run. Callers that
    /// take the suffix shortcut bump `stats.suffix_shortcuts` themselves
    /// — a weighted leaf charges in bulk without being a shortcut.
    #[inline]
    fn charge_many(&mut self, n: u64) -> bool {
        if self.remaining < n {
            return false;
        }
        self.remaining -= n;
        self.stats.budget_consumed = self.stats.budget_consumed.saturating_add(n);
        self.check_deadline()
    }

    #[inline]
    fn check_deadline(&mut self) -> bool {
        let Some(deadline) = self.deadline else {
            return true;
        };
        self.until_check -= 1;
        if self.until_check > 0 {
            return true;
        }
        self.until_check = DEADLINE_CHECK_INTERVAL;
        if std::time::Instant::now() >= deadline {
            // Poison the allowance so every later charge fails fast.
            self.remaining = 0;
            return false;
        }
        true
    }
}

/// Count the homomorphisms of `query` in `graph` (join semantics: distinct
/// variables may map to the same vertex).
///
/// Generic over [`GraphView`]: the same kernel counts on an immutable
/// [`ceg_graph::LabeledGraph`] or on a base-plus-delta
/// [`ceg_graph::OverlayGraph`] while updates are pending.
pub fn count<G: GraphView>(graph: &G, query: &QueryGraph) -> u64 {
    count_constrained(graph, query, &VarConstraints::none(query.num_vars()))
}

/// Count homomorphisms subject to per-variable constraints.
pub fn count_constrained<G: GraphView>(
    graph: &G,
    query: &QueryGraph,
    cons: &VarConstraints,
) -> u64 {
    CountPlan::new_counting(graph, query, cons).count()
}

/// Count with a work budget; `None` when the budget is exhausted.
pub fn count_with_limit<G: GraphView>(
    graph: &G,
    query: &QueryGraph,
    cons: &VarConstraints,
    budget: CountBudget,
) -> Option<u64> {
    CountPlan::new_counting(graph, query, cons).count_with_limit(budget)
}

/// [`count_with_limit`] that also returns the kernel's profiling
/// counters for the run (collected either way; this form reports them).
pub fn count_with_limit_stats<G: GraphView>(
    graph: &G,
    query: &QueryGraph,
    cons: &VarConstraints,
    budget: CountBudget,
) -> (Option<u64>, KernelStats) {
    CountPlan::new_counting(graph, query, cons).count_with_limit_stats(budget)
}

/// Enumerate homomorphisms, invoking `visit` with the binding indexed by
/// variable id; `visit` returns `false` to stop early. Returns `false` if
/// enumeration was stopped (by the visitor or the budget).
pub fn enumerate<G: GraphView>(
    graph: &G,
    query: &QueryGraph,
    cons: &VarConstraints,
    visit: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    CountPlan::new(graph, query, cons).enumerate(visit)
}

/// Upper bound on query edges (mirrors [`QueryGraph`]'s 32-edge cap); the
/// per-depth neighbour-slice gather uses a stack array of this size.
const MAX_QUERY_EDGES: usize = 32;

/// An edge from the current variable into the already-bound prefix.
struct PlannedEdge {
    /// The bound endpoint.
    other: VarId,
    label: LabelId,
    /// True when the query edge runs `other -label-> var`, i.e. candidates
    /// come from the out-neighbours of the bound value.
    forward: bool,
}

/// How to seed candidates for a variable with no bound neighbour.
enum RootGen {
    /// Not a root depth (`edges` is non-empty).
    Bound,
    /// The variable is pinned by a [`VarConstraint::Fixed`] constraint.
    Fixed(VertexId),
    /// Precomputed smallest label-restricted endpoint list (sources or
    /// targets of an incident edge's relation).
    List(Vec<VertexId>),
    /// Isolated variable (no incident non-loop edge): scan the domain.
    Scan,
}

/// The extension plan of one depth of the binding order.
struct DepthPlan {
    var: VarId,
    /// Edges into the bound prefix; the candidate set is the intersection
    /// of the neighbour lists they induce.
    edges: Vec<PlannedEdge>,
    /// Labels of self-loop edges at `var` (checked per candidate).
    self_loops: Vec<LabelId>,
    root: RootGen,
    /// Pendant-tree weight of each binding (`None` ⇒ 1 everywhere); set
    /// only by the factorized counting constructor.
    weight: Option<Box<[u64]>>,
    /// For a weighted root depth, `Σ weight` over its (plan-time fixed)
    /// candidate list — what the suffix product uses instead of the list
    /// length. `None` when unweighted, not a List/Scan root, or the sum
    /// overflowed (the suffix then falls back to enumeration).
    root_weight_sum: Option<u64>,
}

/// Minimum cached max-degree of a stable edge's relation before the
/// adaptive crossover enables the bitset path for a depth: below this the
/// candidate sets are too sparse for word-wise probing to beat the
/// merge/gallop primitives, and the O(len) bitset rebuilds dominate.
const BITSET_MIN_DEGREE: usize = 32;

/// A per-depth cached bitset over the neighbour list of the depth's
/// *stable* edge — the planned edge whose endpoint binds earliest, so its
/// binding survives many iterations of the deeper loops. The stamp makes
/// rebuilds lazy: the bitset is reset only when that binding actually
/// changed since it was last built.
struct BitsetCache {
    /// Index into the depth's `edges` of the stable edge.
    edge_idx: usize,
    bits: VertexBitset,
    /// Binding of the stable edge's endpoint when `bits` was built.
    stamp: Option<VertexId>,
}

/// Domain cap for the per-depth suffix memo: beyond this many data
/// vertices the `O(|V|)` table allocation and zeroing at plan time could
/// dwarf a budget-limited count, so memoization is disabled.
const MEMO_MAX_DOMAIN: usize = 1 << 22;

/// A per-depth memo over the *count of the remaining suffix*.
///
/// When every edge of `depths[d..]` that reaches outside the suffix
/// touches only the variable bound at depth `d-1` (the *key*) plus at
/// most one other, shallower variable (the *anchor*), the suffix count is
/// a pure function of those two bindings. Counting a cycle revisits the
/// same `(anchor, key)` pair once per distinct path between them, so the
/// kernel caches the count in a table indexed by the key binding, each
/// slot stamped with the anchor binding it was computed under — turning
/// cyclic backtracking into the dynamic program over distinct
/// `(anchor, key)` states. Slots survive anchor moves (only a slot
/// rewritten under a different anchor is lost), survive reuses of the
/// plan, and the tables are plan-time allocations, so the recursion
/// stays allocation-free.
struct SuffixMemo {
    /// The variable bound at the depth just above this suffix; its
    /// binding indexes the table.
    key_var: VarId,
    /// The single shallower variable the suffix also references, if any.
    /// `None` means the suffix count depends on the key binding alone
    /// (slots then use anchor stamp 0).
    anchor_var: Option<VarId>,
    /// One slot per key binding; see [`MemoSlot`].
    slots: Box<[MemoSlot]>,
}

/// One suffix-memo entry: anchor stamp and count packed together so the
/// hot lookup costs a single random access. `count` is the suffix count
/// (with suffix weights, prefix weight factored out) computed when the
/// memo's anchor variable was bound to `anchor` — valid iff `anchor`
/// equals the current anchor binding. `u32::MAX` is the never-written
/// sentinel (anchor bindings are in-domain, hence below `MEMO_MAX_DOMAIN`).
#[derive(Clone, Copy)]
struct MemoSlot {
    anchor: VertexId,
    count: u64,
}

/// A reusable, allocation-free matcher for one `(graph, query, cons)`
/// triple. Building the plan allocates; [`CountPlan::count`] /
/// [`CountPlan::enumerate`] then run without touching the allocator, which
/// `tests/alloc_guard.rs` asserts with a counting global allocator.
pub struct CountPlan<'a, G: GraphView> {
    graph: &'a G,
    cons: VarConstraints,
    depths: Vec<DepthPlan>,
    /// `indep[d]` is true when every depth `e >= d` constrains only
    /// variables bound before depth `d` (and has no self-loop or
    /// constraint checks). The counting recursion then multiplies the
    /// suffix's candidate-set sizes instead of enumerating bindings —
    /// e.g. a star's leaves contribute a product of degrees in O(k).
    /// `indep.len() == depths.len() + 1`; the final entry is trivially
    /// true.
    indep: Vec<bool>,
    /// One candidate buffer per depth (left empty for depths that iterate
    /// a single neighbour slice or a precomputed root list directly).
    bufs: Vec<Vec<VertexId>>,
    /// Per-depth bitset caches, populated at plan time for the depths
    /// where the degree-stat crossover (or a forced `Bitset` strategy)
    /// enables the bitset path.
    caches: Vec<Option<BitsetCache>>,
    /// Per-depth suffix-count memo tables ([`SuffixMemo`]), populated at
    /// plan time for the depths whose suffix depends on at most a key and
    /// one anchor variable.
    memos: Vec<Option<SuffixMemo>>,
    /// Current partial binding, indexed by variable id.
    binding: Vec<VertexId>,
    strategy: IntersectStrategy,
}

impl<'a, G: GraphView> CountPlan<'a, G> {
    /// Precompute the per-depth extension plans for `query` under the
    /// [`variable_order`] heuristic. This form never factorizes — its
    /// binding layout matches the query's variable ids, which
    /// [`CountPlan::enumerate`] exposes — and reads the intersection
    /// strategy from the `CEG_FORCE_INTERSECT` test knob.
    pub fn new(graph: &'a G, query: &QueryGraph, cons: &VarConstraints) -> Self {
        Self::with_strategy(graph, query, cons, IntersectStrategy::from_env())
    }

    /// [`CountPlan::new`] with an explicit [`IntersectStrategy`] —
    /// race-free for tests that must not touch the process environment.
    pub fn with_strategy(
        graph: &'a G,
        query: &QueryGraph,
        cons: &VarConstraints,
        strategy: IntersectStrategy,
    ) -> Self {
        let nv = query.num_vars() as usize;
        Self::build(
            graph,
            query,
            cons.clone(),
            (0..nv).map(|_| None).collect(),
            strategy,
        )
    }

    /// The counting-only constructor: factorizes pendant trees off a
    /// cyclic core ([`crate::tree_count`]) before planning, so acyclic
    /// sub-structures contribute closed-form weight products instead of
    /// being enumerated. The binding layout is internal (core variable
    /// ids); use [`CountPlan::new`] when [`CountPlan::enumerate`] must
    /// report bindings by the original ids.
    pub fn new_counting(graph: &'a G, query: &QueryGraph, cons: &VarConstraints) -> Self {
        Self::counting_with_strategy(graph, query, cons, IntersectStrategy::from_env())
    }

    /// [`CountPlan::new_counting`] with an explicit strategy.
    pub fn counting_with_strategy(
        graph: &'a G,
        query: &QueryGraph,
        cons: &VarConstraints,
        strategy: IntersectStrategy,
    ) -> Self {
        match factorize(graph, query, cons) {
            Some(f) => Self::build(graph, &f.core, f.cons, f.weights, strategy),
            None => Self::with_strategy(graph, query, cons, strategy),
        }
    }

    fn build(
        graph: &'a G,
        query: &QueryGraph,
        cons: VarConstraints,
        mut weights: Vec<Option<Box<[u64]>>>,
        strategy: IntersectStrategy,
    ) -> Self {
        let order = variable_order(graph, query);
        let num_vars = query.num_vars() as usize;
        let mut pos = vec![usize::MAX; num_vars];
        for (d, &v) in order.iter().enumerate() {
            pos[v as usize] = d;
        }

        let mut depths = Vec::with_capacity(order.len());
        let mut bufs = Vec::with_capacity(order.len());
        let mut caches = Vec::with_capacity(order.len());
        for (d, &v) in order.iter().enumerate() {
            let mut edges: Vec<PlannedEdge> = Vec::new();
            let mut self_loops: Vec<LabelId> = Vec::new();
            // Incident edges whose other endpoint binds later; for a root
            // depth these restrict the seed list: (label, v-is-source).
            let mut later: Vec<(LabelId, bool)> = Vec::new();
            for i in query.edges_at(v) {
                let e = query.edge(i);
                if e.src == e.dst {
                    self_loops.push(e.label);
                    continue;
                }
                let other = e.other(v);
                if pos[other as usize] < d {
                    edges.push(PlannedEdge {
                        other,
                        label: e.label,
                        forward: e.src == other,
                    });
                } else {
                    later.push((e.label, e.src == v));
                }
            }

            let root = if !edges.is_empty() {
                RootGen::Bound
            } else if let VarConstraint::Fixed(u) = cons.get(v) {
                RootGen::Fixed(u)
            } else if let Some(&(label, is_src)) = later.iter().min_by_key(|&&(l, s)| {
                if s {
                    graph.distinct_sources(l)
                } else {
                    graph.distinct_targets(l)
                }
            }) {
                // Any binding of v must have a neighbour under this edge,
                // so the relation's endpoint projection is a sound and
                // complete seed set — typically far smaller than the
                // domain.
                let mut list = Vec::new();
                if is_src {
                    graph.sources_into(label, &mut list);
                } else {
                    graph.targets_into(label, &mut list);
                }
                RootGen::List(list)
            } else {
                RootGen::Scan
            };

            // The intersection result cannot exceed its smallest input
            // list, so the smallest max-degree bounds the buffer for all
            // bindings — reserved here so recursion never reallocates.
            let cap = if edges.len() >= 2 {
                edges
                    .iter()
                    .map(|pe| {
                        if pe.forward {
                            graph.max_out_degree(pe.label)
                        } else {
                            graph.max_in_degree(pe.label)
                        }
                    })
                    .min()
                    .unwrap_or(0)
            } else {
                0
            };
            bufs.push(Vec::with_capacity(cap));

            // Bitset eligibility: at least two constraining edges, a
            // stable edge bound at least two levels up (so the cached
            // bitset survives whole loops of the depth above), and —
            // unless the strategy forces the bitset path — a stable
            // relation dense enough (by cached max degree) that word-wise
            // probing beats the merge/gallop primitives.
            let cache = if matches!(
                strategy,
                IntersectStrategy::Adaptive | IntersectStrategy::Bitset
            ) && edges.len() >= 2
            {
                let (stable_idx, stable_pos) = edges
                    .iter()
                    .enumerate()
                    .map(|(i, pe)| (i, pos[pe.other as usize]))
                    .min_by_key(|&(_, p)| p)
                    .expect("at least two edges");
                let pe = &edges[stable_idx];
                let stable_max_degree = if pe.forward {
                    graph.max_out_degree(pe.label)
                } else {
                    graph.max_in_degree(pe.label)
                };
                let dense_enough =
                    strategy == IntersectStrategy::Bitset || stable_max_degree >= BITSET_MIN_DEGREE;
                (stable_pos + 2 <= d && dense_enough).then(|| BitsetCache {
                    edge_idx: stable_idx,
                    bits: VertexBitset::with_domain(graph.num_vertices()),
                    stamp: None,
                })
            } else {
                None
            };
            caches.push(cache);

            let weight = weights[v as usize].take();
            let root_weight_sum = weight.as_ref().and_then(|w| match &root {
                RootGen::List(list) => list
                    .iter()
                    .try_fold(0u64, |a, &c| a.checked_add(w[c as usize])),
                RootGen::Scan => w.iter().try_fold(0u64, |a, &x| a.checked_add(x)),
                RootGen::Fixed(_) | RootGen::Bound => None,
            });
            depths.push(DepthPlan {
                var: v,
                edges,
                self_loops,
                root,
                weight,
                root_weight_sum,
            });
        }

        // Independent-suffix analysis: walking from the back, track the
        // latest binding position any suffix depth depends on and whether
        // every suffix depth is check-free (no self-loops, no constraint).
        let n = depths.len();
        let mut indep = vec![false; n + 1];
        indep[n] = true;
        let mut suffix_ok = true;
        let mut suffix_max_dep: isize = -1;
        for d in (0..n).rev() {
            let dp = &depths[d];
            suffix_ok = suffix_ok
                && dp.self_loops.is_empty()
                && matches!(cons.get(dp.var), VarConstraint::Any)
                && !matches!(dp.root, RootGen::Fixed(_));
            for pe in &dp.edges {
                suffix_max_dep = suffix_max_dep.max(pos[pe.other as usize] as isize);
            }
            indep[d] = suffix_ok && suffix_max_dep < d as isize;
        }

        // Suffix-memo eligibility: depth d's suffix memoizes when its
        // edges reach at most two already-bound variables — the key
        // (bound at depth d-1) and one anchor. Cycles revisit the same
        // (anchor, key) state once per path between them; the memo
        // collapses those revisits into table lookups.
        let mut memos: Vec<Option<SuffixMemo>> = (0..depths.len()).map(|_| None).collect();
        // Depths past the first independent suffix are answered by the
        // product shortcut without ever being entered, so a memo there is
        // pure allocation overhead (`indep` is monotone from the back:
        // the first true entry shortcuts everything deeper).
        let first_indep = (0..n).find(|&d| indep[d]).unwrap_or(n);
        if graph.num_vertices() <= MEMO_MAX_DOMAIN {
            for d in 1..depths.len().min(first_indep + 1) {
                let key = order[d - 1];
                let mut anchor: Option<VarId> = None;
                let mut eligible = true;
                for dp in &depths[d..] {
                    for pe in &dp.edges {
                        let o = pe.other;
                        if pos[o as usize] >= d || o == key {
                            continue; // internal to the suffix, or the key
                        }
                        match anchor {
                            None => anchor = Some(o),
                            Some(a) if a == o => {}
                            Some(_) => eligible = false,
                        }
                    }
                }
                if eligible {
                    let empty = MemoSlot {
                        anchor: VertexId::MAX,
                        count: 0,
                    };
                    memos[d] = Some(SuffixMemo {
                        key_var: key,
                        anchor_var: anchor,
                        slots: vec![empty; graph.num_vertices()].into_boxed_slice(),
                    });
                }
            }
        }

        CountPlan {
            graph,
            cons,
            depths,
            indep,
            bufs,
            caches,
            memos,
            binding: vec![0; num_vars],
            strategy,
        }
    }

    /// Count all homomorphisms.
    pub fn count(&mut self) -> u64 {
        self.count_with_limit(CountBudget::UNLIMITED)
            .expect("unlimited budget cannot be exhausted")
    }

    /// Count with a work budget; `None` when the budget is exhausted.
    ///
    /// Unlike [`CountPlan::enumerate`], counting never materializes the
    /// bindings of an independent suffix: once the remaining variables
    /// only reference the bound prefix, their contribution is the product
    /// of candidate-set sizes (charged against the budget in one step).
    pub fn count_with_limit(&mut self, budget: CountBudget) -> Option<u64> {
        self.count_with_limit_stats(budget).0
    }

    /// [`CountPlan::count_with_limit`] that also reports the kernel's
    /// [`KernelStats`] for the run (meaningful for complete and aborted
    /// runs alike — an aborted run reports the work done before the
    /// budget tripped).
    pub fn count_with_limit_stats(&mut self, budget: CountBudget) -> (Option<u64>, KernelStats) {
        let mut total = 0u64;
        let mut state = BudgetState::new(budget);
        if state.expired_at_entry() {
            return (None, state.stats);
        }
        let complete = recurse_count(
            self.graph,
            &self.cons,
            &self.depths,
            &self.indep,
            &mut self.bufs,
            &mut self.caches,
            &mut self.memos,
            &mut self.binding,
            &mut state,
            self.strategy,
            1,
            &mut total,
            0,
        );
        (complete.then_some(total), state.stats)
    }

    /// Enumerate homomorphisms; see [`enumerate`].
    pub fn enumerate(&mut self, visit: &mut dyn FnMut(&[VertexId]) -> bool) -> bool {
        self.enumerate_with_limit(CountBudget::UNLIMITED, visit)
    }

    /// Enumerate under a budget. Returns `false` when stopped early by the
    /// budget or the visitor.
    pub fn enumerate_with_limit(
        &mut self,
        budget: CountBudget,
        visit: &mut dyn FnMut(&[VertexId]) -> bool,
    ) -> bool {
        let mut state = BudgetState::new(budget);
        if state.expired_at_entry() {
            return false;
        }
        recurse(
            self.graph,
            &self.cons,
            &self.depths,
            &mut self.bufs,
            &mut self.binding,
            &mut state,
            visit,
        )
    }
}

/// One recursion step: generate the candidates of `depths[0]` and extend
/// the binding through each. Returns `false` when stopped early.
fn recurse<G: GraphView>(
    graph: &G,
    cons: &VarConstraints,
    depths: &[DepthPlan],
    bufs: &mut [Vec<VertexId>],
    binding: &mut [VertexId],
    state: &mut BudgetState,
    visit: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    let Some((dp, rest_depths)) = depths.split_first() else {
        return visit(binding);
    };
    let (buf, rest_bufs) = bufs.split_first_mut().expect("one buffer per depth");

    match dp.edges.len() {
        0 => match &dp.root {
            RootGen::Fixed(u) => extend_all(
                std::iter::once(*u),
                graph,
                cons,
                dp,
                rest_depths,
                rest_bufs,
                binding,
                state,
                visit,
            ),
            RootGen::List(list) => extend_all(
                list.iter().copied(),
                graph,
                cons,
                dp,
                rest_depths,
                rest_bufs,
                binding,
                state,
                visit,
            ),
            RootGen::Scan => extend_all(
                0..graph.num_vertices() as VertexId,
                graph,
                cons,
                dp,
                rest_depths,
                rest_bufs,
                binding,
                state,
                visit,
            ),
            RootGen::Bound => unreachable!("Bound root with no planned edges"),
        },
        1 => {
            // Single bound neighbour: iterate its sorted slice directly,
            // no copy into the buffer.
            let list = neighbor_slice(graph, &dp.edges[0], binding);
            extend_all(
                list.iter().copied(),
                graph,
                cons,
                dp,
                rest_depths,
                rest_bufs,
                binding,
                state,
                visit,
            )
        }
        k => {
            let mut lists: [&[VertexId]; MAX_QUERY_EDGES] = [&[]; MAX_QUERY_EDGES];
            for (i, pe) in dp.edges.iter().enumerate() {
                lists[i] = neighbor_slice(graph, pe, binding);
            }
            intersect_k_into(&mut lists[..k], buf);
            extend_all(
                buf.iter().copied(),
                graph,
                cons,
                dp,
                rest_depths,
                rest_bufs,
                binding,
                state,
                visit,
            )
        }
    }
}

/// Counting twin of [`recurse`]: no visitor, and an independent suffix is
/// tallied as a product of candidate-set sizes (weighted by pendant-tree
/// weights where the plan is factorized) instead of being enumerated.
/// `wprod` is the running product of the bound prefix's weights. Returns
/// `false` when the budget stops the count.
///
/// This entry point consults the depth's [`SuffixMemo`] (when the plan
/// built one): a valid entry answers the whole suffix in O(1); a miss
/// computes the suffix through [`recurse_count_inner`] with the prefix
/// weight factored out, stores it, then scales by `wprod`.
#[allow(clippy::too_many_arguments)]
fn recurse_count<G: GraphView>(
    graph: &G,
    cons: &VarConstraints,
    depths: &[DepthPlan],
    indep: &[bool],
    bufs: &mut [Vec<VertexId>],
    caches: &mut [Option<BitsetCache>],
    memos: &mut [Option<SuffixMemo>],
    binding: &mut [VertexId],
    state: &mut BudgetState,
    strategy: IntersectStrategy,
    wprod: u64,
    total: &mut u64,
    level: u32,
) -> bool {
    if depths.is_empty() {
        *total = total.saturating_add(wprod);
        // A weighted leaf stands for `wprod` enumerated bindings; charge
        // the bulk beyond the one candidate already charged.
        if wprod > 1 && !state.charge_many(wprod - 1) {
            return false;
        }
        return true;
    }
    // Memo lookup: resolve the hit entirely here; on an in-domain miss,
    // remember (key, anchor) so the computed suffix can be stored below.
    let pending: Option<(usize, VertexId)> = match memos[0].as_mut() {
        Some(m) => {
            let aval = match m.anchor_var {
                Some(a) => binding[a as usize],
                None => 0,
            };
            let c = binding[m.key_var as usize] as usize;
            match m.slots.get(c) {
                // `aval == MAX` (an out-of-domain Fixed anchor) would
                // collide with the sentinel: skip the table.
                Some(&s) if s.anchor == aval && aval != VertexId::MAX => {
                    let contrib = wprod.saturating_mul(s.count);
                    *total = total.saturating_add(contrib);
                    state.stats.memo_hits += 1;
                    return state.charge_many(contrib);
                }
                Some(_) if aval != VertexId::MAX => Some((c, aval)),
                // Out-of-domain key binding (a Fixed constraint beyond
                // the vertex domain): skip the table.
                _ => None,
            }
        }
        None => None,
    };
    if let Some((c, aval)) = pending {
        let mut sub = 0u64;
        if !recurse_count_inner(
            graph, cons, depths, indep, bufs, caches, memos, binding, state, strategy, 1, &mut sub,
            level,
        ) {
            return false; // aborted subtrees must not be stored
        }
        let m = memos[0].as_mut().expect("pending implies a memo");
        m.slots[c] = MemoSlot {
            anchor: aval,
            count: sub,
        };
        *total = total.saturating_add(wprod.saturating_mul(sub));
        return true;
    }
    recurse_count_inner(
        graph, cons, depths, indep, bufs, caches, memos, binding, state, strategy, wprod, total,
        level,
    )
}

/// The body of [`recurse_count`]: candidate generation and extension for
/// `depths[0]`, with the independent-suffix product shortcut. Never
/// called with empty `depths`.
#[allow(clippy::too_many_arguments)]
fn recurse_count_inner<G: GraphView>(
    graph: &G,
    cons: &VarConstraints,
    depths: &[DepthPlan],
    indep: &[bool],
    bufs: &mut [Vec<VertexId>],
    caches: &mut [Option<BitsetCache>],
    memos: &mut [Option<SuffixMemo>],
    binding: &mut [VertexId],
    state: &mut BudgetState,
    strategy: IntersectStrategy,
    wprod: u64,
    total: &mut u64,
    level: u32,
) -> bool {
    if indep[0] {
        // On u64 overflow of the product or the running total, fall
        // through to plain enumeration (which matches the old kernel's
        // behaviour of grinding within the budget).
        if let Some(prod) = suffix_product(graph, depths, bufs, caches, binding, state, strategy) {
            if let Some(contrib) = wprod.checked_mul(prod) {
                if let Some(t) = total.checked_add(contrib) {
                    if !state.charge_many(contrib) {
                        return false;
                    }
                    state.stats.suffix_shortcuts += 1;
                    *total = t;
                    return true;
                }
            }
        }
    }
    let (dp, rest_depths) = depths.split_first().expect("checked non-empty");
    let (buf, rest_bufs) = bufs.split_first_mut().expect("one buffer per depth");
    let (cache, rest_caches) = caches.split_first_mut().expect("one cache slot per depth");
    let rest_memos = &mut memos[1..];
    let rest_indep = &indep[1..];

    macro_rules! extend {
        ($candidates:expr, $len:expr) => {{
            let vc = cons.get(dp.var);
            let len = $len as u64;
            if len > 0 {
                // The whole list is charged up front: one budget touch
                // and one (length-weighted) deadline countdown per list
                // instead of per candidate.
                if !state.charge_list(len) {
                    return false;
                }
                if state.stats.deepest_level < (level + 1) as u64 {
                    state.stats.deepest_level = (level + 1) as u64;
                }
            }
            'cand: for c in $candidates {
                if !vc.admits(c) {
                    continue;
                }
                for &l in &dp.self_loops {
                    if !graph.has_edge(c, c, l) {
                        continue 'cand;
                    }
                }
                let cw = match &dp.weight {
                    None => wprod,
                    // Out-of-domain bindings (possible only via a Fixed
                    // constraint) have no pendant extensions: weight 0.
                    Some(w) => wprod.saturating_mul(w.get(c as usize).copied().unwrap_or(0)),
                };
                if cw == 0 {
                    // Every completion would contribute 0.
                    continue;
                }
                binding[dp.var as usize] = c;
                if !recurse_count(
                    graph,
                    cons,
                    rest_depths,
                    rest_indep,
                    rest_bufs,
                    rest_caches,
                    rest_memos,
                    binding,
                    state,
                    strategy,
                    cw,
                    total,
                    level + 1,
                ) {
                    return false;
                }
            }
            true
        }};
    }

    match dp.edges.len() {
        0 => match &dp.root {
            RootGen::Fixed(u) => extend!(std::iter::once(*u), 1),
            RootGen::List(list) => extend!(list.iter().copied(), list.len()),
            RootGen::Scan => extend!(0..graph.num_vertices() as VertexId, graph.num_vertices()),
            RootGen::Bound => unreachable!("Bound root with no planned edges"),
        },
        1 => {
            let list = neighbor_slice(graph, &dp.edges[0], binding);
            extend!(list.iter().copied(), list.len())
        }
        k => {
            let mut lists: [&[VertexId]; MAX_QUERY_EDGES] = [&[]; MAX_QUERY_EDGES];
            for (i, pe) in dp.edges.iter().enumerate() {
                lists[i] = neighbor_slice(graph, pe, binding);
            }
            if let Some(cache) = cache {
                bitset_fill(dp, cache, &lists[..k], binding, buf, state, strategy);
            } else {
                intersect_k_into_strategy(
                    &mut lists[..k],
                    buf,
                    strategy,
                    &mut state.stats.merge_intersections,
                    &mut state.stats.gallop_intersections,
                );
            }
            extend!(buf.iter().copied(), buf.len())
        }
    }
}

/// Candidate generation through a depth's bitset cache: lazily rebuild
/// the bitset over the stable edge's neighbour list (only when the stable
/// binding moved), then AND the remaining lists against it. `lists` must
/// be the neighbour slices of `dp.edges`, index-aligned. Falls back to
/// galloping when the probe side dwarfs the cached set — the regime where
/// an O(|probe|) word walk loses to O(|cached|·log) probing.
#[allow(clippy::too_many_arguments)]
fn bitset_fill(
    dp: &DepthPlan,
    cache: &mut BitsetCache,
    lists: &[&[VertexId]],
    binding: &[VertexId],
    buf: &mut Vec<VertexId>,
    state: &mut BudgetState,
    strategy: IntersectStrategy,
) {
    let stable = lists[cache.edge_idx];
    let anchor = binding[dp.edges[cache.edge_idx].other as usize];
    if cache.stamp != Some(anchor) {
        cache.bits.reset(stable);
        cache.stamp = Some(anchor);
    }
    buf.clear();
    if cache.bits.is_empty() {
        return;
    }
    // Shortest probe first: the intermediate result is then bounded by
    // the smallest list, preserving the plan-time buffer capacity bound.
    let shortest = lists
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != cache.edge_idx)
        .min_by_key(|&(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("bitset depths have at least two edges");
    let probe = lists[shortest];
    if strategy == IntersectStrategy::Adaptive
        && !probe.is_empty()
        && cache.bits.len() / probe.len() >= GALLOP_RATIO
    {
        // The probe is tiny relative to the cached set: gallop it through
        // the stable list instead of paying the word walk.
        state.stats.gallop_intersections += 1;
        intersect_into_gallop(probe, stable, buf);
    } else {
        state.stats.bitset_intersections += 1;
        cache.bits.filter_into(probe, buf);
    }
    // Any further lists (three-plus-edge depths) refine the buffer in
    // place under the usual length-ratio crossover.
    for (i, l) in lists.iter().enumerate() {
        if i == cache.edge_idx || i == shortest {
            continue;
        }
        if buf.is_empty() {
            return;
        }
        if l.len() / buf.len() >= GALLOP_RATIO {
            state.stats.gallop_intersections += 1;
            refine_in_place_gallop(buf, l);
        } else {
            state.stats.merge_intersections += 1;
            refine_in_place_merge(buf, l);
        }
    }
}

/// Candidate-set size product of a fully independent suffix — with
/// pendant-tree weights, the product of per-depth weight *sums* — or
/// `None` on u64 overflow.
fn suffix_product<G: GraphView>(
    graph: &G,
    depths: &[DepthPlan],
    bufs: &mut [Vec<VertexId>],
    caches: &mut [Option<BitsetCache>],
    binding: &[VertexId],
    state: &mut BudgetState,
    strategy: IntersectStrategy,
) -> Option<u64> {
    let mut prod = 1u64;
    for ((dp, buf), cache) in depths.iter().zip(bufs.iter_mut()).zip(caches.iter_mut()) {
        let candidates: &[VertexId] = match dp.edges.len() {
            0 => match &dp.root {
                RootGen::List(list) => {
                    if dp.weight.is_none() {
                        prod = prod.checked_mul(list.len() as u64)?;
                        if prod == 0 {
                            return Some(0);
                        }
                        continue;
                    }
                    // Weighted root: the Σw over the fixed list was
                    // precomputed at plan time (None ⇒ it overflowed).
                    prod = prod.checked_mul(dp.root_weight_sum?)?;
                    if prod == 0 {
                        return Some(0);
                    }
                    continue;
                }
                RootGen::Scan => {
                    let total = match &dp.weight {
                        None => graph.num_vertices() as u64,
                        Some(_) => dp.root_weight_sum?,
                    };
                    prod = prod.checked_mul(total)?;
                    if prod == 0 {
                        return Some(0);
                    }
                    continue;
                }
                // Fixed roots are excluded by the `indep` analysis;
                // Bound contradicts `edges.is_empty()`.
                RootGen::Fixed(_) | RootGen::Bound => unreachable!("excluded from suffixes"),
            },
            1 => neighbor_slice(graph, &dp.edges[0], binding),
            k => {
                let mut lists: [&[VertexId]; MAX_QUERY_EDGES] = [&[]; MAX_QUERY_EDGES];
                for (i, pe) in dp.edges.iter().enumerate() {
                    lists[i] = neighbor_slice(graph, pe, binding);
                }
                if let Some(cache) = cache {
                    if k == 2 && dp.weight.is_none() {
                        // Counting-only fast path: pop-count the probe
                        // against the cached bitset, no buffer write.
                        let len = bitset_count(dp, cache, &lists[..k], binding, state, strategy);
                        prod = prod.checked_mul(len as u64)?;
                        if prod == 0 {
                            return Some(0);
                        }
                        continue;
                    }
                    bitset_fill(dp, cache, &lists[..k], binding, buf, state, strategy);
                } else {
                    intersect_k_into_strategy(
                        &mut lists[..k],
                        buf,
                        strategy,
                        &mut state.stats.merge_intersections,
                        &mut state.stats.gallop_intersections,
                    );
                }
                &buf[..]
            }
        };
        let term = match &dp.weight {
            None => candidates.len() as u64,
            Some(w) => candidates
                .iter()
                .try_fold(0u64, |a, &c| a.checked_add(w[c as usize]))?,
        };
        prod = prod.checked_mul(term)?;
        if prod == 0 {
            return Some(0);
        }
    }
    Some(prod)
}

/// The counting-only twin of [`bitset_fill`] for two-edge depths: the
/// number of probe hits against the cached bitset, written nowhere.
fn bitset_count(
    dp: &DepthPlan,
    cache: &mut BitsetCache,
    lists: &[&[VertexId]],
    binding: &[VertexId],
    state: &mut BudgetState,
    strategy: IntersectStrategy,
) -> usize {
    let stable = lists[cache.edge_idx];
    let anchor = binding[dp.edges[cache.edge_idx].other as usize];
    if cache.stamp != Some(anchor) {
        cache.bits.reset(stable);
        cache.stamp = Some(anchor);
    }
    if cache.bits.is_empty() {
        return 0;
    }
    let probe = lists[1 - cache.edge_idx];
    if strategy == IntersectStrategy::Adaptive
        && !probe.is_empty()
        && cache.bits.len() / probe.len() >= GALLOP_RATIO
    {
        state.stats.gallop_intersections += 1;
        // Gallop the probe through the stable list, counting matches via
        // the cursor positions (gallop finds each lower bound).
        let mut hits = 0usize;
        let mut rest = stable;
        for &x in probe {
            let i = crate::intersect::gallop(rest, x);
            if i == rest.len() {
                break;
            }
            if rest[i] == x {
                hits += 1;
            }
            rest = &rest[i..];
        }
        hits
    } else {
        state.stats.bitset_intersections += 1;
        cache.bits.count_hits(probe)
    }
}

/// The neighbour slice a planned edge induces under the current binding.
#[inline]
fn neighbor_slice<'g, G: GraphView>(
    graph: &'g G,
    pe: &PlannedEdge,
    binding: &[VertexId],
) -> &'g [VertexId] {
    let o = binding[pe.other as usize];
    if pe.forward {
        graph.out_neighbors(o, pe.label)
    } else {
        graph.in_neighbors(o, pe.label)
    }
}

/// Try every candidate: budget, constraint and self-loop checks, then
/// recurse. Returns `false` when stopped early.
#[allow(clippy::too_many_arguments)]
fn extend_all<G: GraphView>(
    candidates: impl Iterator<Item = VertexId>,
    graph: &G,
    cons: &VarConstraints,
    dp: &DepthPlan,
    rest_depths: &[DepthPlan],
    rest_bufs: &mut [Vec<VertexId>],
    binding: &mut [VertexId],
    state: &mut BudgetState,
    visit: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    let vc = cons.get(dp.var);
    'cand: for c in candidates {
        if !state.charge_one() {
            return false;
        }
        if !vc.admits(c) {
            continue;
        }
        for &l in &dp.self_loops {
            if !graph.has_edge(c, c, l) {
                continue 'cand;
            }
        }
        binding[dp.var as usize] = c;
        if !recurse(graph, cons, rest_depths, rest_bufs, binding, state, visit) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::{templates, QueryEdge};

    /// Graph: label 0 = path edges 0->1->2->3; label 1 = 1->3, 3->3 (loop).
    fn sample() -> LabeledGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 0);
        b.add_edge(1, 3, 1);
        b.add_edge(3, 3, 1);
        b.build()
    }

    #[test]
    fn single_edge_count_is_relation_size() {
        let g = sample();
        let q = templates::path(1, &[0]);
        assert_eq!(count(&g, &q), 3);
        let q1 = templates::path(1, &[1]);
        assert_eq!(count(&g, &q1), 2);
    }

    #[test]
    fn two_path_count() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        // 0->1->2 and 1->2->3
        assert_eq!(count(&g, &q), 2);
    }

    #[test]
    fn homomorphism_semantics_allow_repeats() {
        // query a0 -1-> a1 -1-> a2 on graph with 1->3, 3->3:
        // matches: (1,3,3) and (3,3,3).
        let g = sample();
        let q = templates::path(2, &[1, 1]);
        assert_eq!(count(&g, &q), 2);
    }

    #[test]
    fn self_loop_query() {
        let g = sample();
        let q = QueryGraph::new(1, vec![QueryEdge::new(0, 0, 1)]);
        assert_eq!(count(&g, &q), 1); // only vertex 3
    }

    #[test]
    fn triangle_count() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 0);
        let g = b.build();
        let q = templates::cycle(3, &[0, 0, 0]);
        // the directed triangle matches at 3 rotations
        assert_eq!(count(&g, &q), 3);
    }

    #[test]
    fn star_count_is_degree_product() {
        let mut b = GraphBuilder::new(5);
        for d in 1..5 {
            b.add_edge(0, d, 0);
        }
        let g = b.build();
        // 2-star: ordered pairs of out-neighbours = 4*4 = 16 homomorphisms
        let q = templates::star(2, &[0, 0]);
        assert_eq!(count(&g, &q), 16);
    }

    #[test]
    fn constrained_count_partitions_sum_to_total() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let total = count(&g, &q);
        let buckets = 3u32;
        let mut sum = 0;
        for b0 in 0..buckets {
            let mut cons = VarConstraints::none(3);
            cons.set(
                1,
                VarConstraint::HashBucket {
                    buckets,
                    bucket: b0,
                },
            );
            sum += count_constrained(&g, &q, &cons);
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn fixed_constraint_counts_extensions() {
        let g = sample();
        let q = templates::path(1, &[0]);
        let mut cons = VarConstraints::none(2);
        cons.set(0, VarConstraint::Fixed(1));
        assert_eq!(count_constrained(&g, &q, &cons), 1); // 1 -> 2
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let res = count_with_limit(&g, &q, &VarConstraints::none(3), CountBudget::new(1));
        assert!(res.is_none());
    }

    #[test]
    fn expired_deadline_returns_none() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let res = count_with_limit(&g, &q, &VarConstraints::none(3), CountBudget::until(past));
        assert!(res.is_none());
        // A comfortably distant deadline changes nothing.
        let future = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let res = count_with_limit(&g, &q, &VarConstraints::none(3), CountBudget::until(future));
        assert_eq!(res, Some(2));
        // Deadlines compose with expansion budgets: whichever trips first
        // aborts.
        let res = count_with_limit(
            &g,
            &q,
            &VarConstraints::none(3),
            CountBudget::new(1).with_deadline(future),
        );
        assert!(res.is_none());
    }

    #[test]
    fn enumerate_visits_every_match() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let mut seen = Vec::new();
        enumerate(&g, &q, &VarConstraints::none(3), &mut |b| {
            seen.push((b[0], b[1], b[2]));
            true
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1, 2), (1, 2, 3)]);
    }

    #[test]
    fn enumerate_early_stop() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let mut n = 0;
        let finished = enumerate(&g, &q, &VarConstraints::none(3), &mut |_| {
            n += 1;
            false
        });
        assert!(!finished);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = GraphBuilder::with_labels(0, 1).build();
        let q = templates::path(2, &[0, 0]);
        assert_eq!(count(&g, &q), 0);
    }

    #[test]
    fn q5f_on_small_graph() {
        // hand-checkable fork: hub vertex 1 with B in, and C,D,E out.
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 7, 0); // A: 0 -> 7
        b.add_edge(7, 1, 1); // B: 7 -> 1
        b.add_edge(1, 2, 2); // C
        b.add_edge(1, 3, 2); // C (two C-edges)
        b.add_edge(1, 4, 3); // D
        b.add_edge(1, 5, 4); // E
        let g = b.build();
        let q = templates::q5f(&[0, 1, 2, 3, 4]);
        // A,B fixed; C has 2 choices; D and E one each => 2 matches
        assert_eq!(count(&g, &q), 2);
    }

    #[test]
    fn plan_is_reusable_across_runs() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let cons = VarConstraints::none(3);
        let mut plan = CountPlan::new(&g, &q, &cons);
        let first = plan.count();
        assert_eq!(first, 2);
        for _ in 0..3 {
            assert_eq!(plan.count(), first);
        }
        assert_eq!(plan.count_with_limit(CountBudget::new(1)), None);
        assert_eq!(plan.count(), first); // budget run leaves no residue
    }

    #[test]
    fn parallel_query_edges_intersect() {
        // two data edges 0->1 under labels 0 and 1, plus decoys; the query
        // demands both labels between the same pair of variables.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 0);
        b.add_edge(0, 3, 1);
        let g = b.build();
        let q = QueryGraph::new(2, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(0, 1, 1)]);
        assert_eq!(count(&g, &q), 1);
    }

    #[test]
    fn disconnected_query_root_is_label_restricted() {
        // two independent edges: cartesian product of the relations
        let g = sample();
        let q = QueryGraph::new(4, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(2, 3, 1)]);
        assert_eq!(count(&g, &q), 3 * 2);
    }

    #[test]
    fn kernel_stats_reflect_the_work_done() {
        let g = sample();
        let q = templates::path(2, &[0, 0]);
        let cons = VarConstraints::none(3);
        let (count, stats) = count_with_limit_stats(&g, &q, &cons, CountBudget::UNLIMITED);
        assert_eq!(count, Some(2));
        assert!(stats.candidates > 0, "candidates were visited");
        assert!(stats.budget_consumed >= stats.candidates);
        assert!(stats.deepest_level >= 1, "at least one variable bound");
        assert!(stats.deepest_level <= 3);

        // A 2-star's leaves form an independent suffix: the product
        // shortcut must fire and charge in bulk.
        let star = templates::star(2, &[0, 0]);
        let cons = VarConstraints::none(3);
        let (count, stats) = count_with_limit_stats(&g, &star, &cons, CountBudget::UNLIMITED);
        assert!(count.is_some());
        assert!(stats.suffix_shortcuts > 0, "independent suffix shortcut");
        assert!(stats.budget_consumed >= stats.candidates);

        // An aborted run still reports the work done before the trip.
        let (aborted, stats) = count_with_limit_stats(&g, &q, &cons, CountBudget::new(1));
        assert!(aborted.is_none());
        assert_eq!(stats.budget_consumed, 1);

        // Multi-constraint depths classify their intersections.
        let tri = templates::cycle(3, &[0, 0, 0]);
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 0);
        let tg = b.build();
        let cons = VarConstraints::none(3);
        let (count, stats) = count_with_limit_stats(&tg, &tri, &cons, CountBudget::UNLIMITED);
        assert_eq!(count, Some(3));
        assert!(
            stats.merge_intersections + stats.gallop_intersections > 0,
            "the closing triangle edge intersects two lists"
        );
    }

    #[test]
    fn matcher_counts_agree_with_naive_on_templates() {
        let g = sample();
        for q in [
            templates::path(3, &[0, 0, 1]),
            templates::star(3, &[0, 0, 1]),
            templates::cycle(4, &[0, 0, 0, 1]),
            templates::q5f(&[0, 1, 1, 0, 1]),
        ] {
            let cons = VarConstraints::none(q.num_vars());
            assert_eq!(
                count_constrained(&g, &q, &cons),
                crate::naive::count_naive(&g, &q, &cons),
                "mismatch on {q}"
            );
        }
    }
}
