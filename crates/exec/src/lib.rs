//! # ceg-exec
//!
//! Join execution substrate: counts the exact number of homomorphisms
//! (join results) of a query in a labeled graph. The executor supplies
//!
//! * ground-truth cardinalities for q-error measurement,
//! * the counts stored in Markov tables (small-join statistics),
//! * constrained counts for the bound-sketch optimization (per-variable
//!   hash-bucket predicates, Section 5.2.1),
//! * degree statistics of small joins for MOLP (Section 5.1.1).
//!
//! The algorithm is a worst-case-optimal-style backtracking matcher: query
//! variables are bound one at a time in a connectivity-aware order, and the
//! candidate set for each new variable is the k-way merge/galloping
//! intersection ([`intersect`]) of the sorted CSR neighbour lists induced
//! by its already-bound neighbours. Per-depth extension plans are
//! precomputed once per query ([`count::CountPlan`]) so the recursion is
//! allocation-free; [`naive::count_naive`] retains the unoptimized matcher
//! as the reference for differential testing.

pub mod constraints;
pub mod count;
pub mod intersect;
pub mod naive;
pub mod order;
pub mod tree_count;

pub use constraints::{VarConstraint, VarConstraints};
pub use count::{
    count, count_constrained, count_with_limit, count_with_limit_stats, enumerate, CountBudget,
    CountPlan, KernelStats,
};
pub use intersect::{intersect_k_into, intersect_k_into_profiled, IntersectStrategy};
pub use naive::count_naive;
pub use order::variable_order;
pub use tree_count::{count_tree_dp, exact_count};
