//! The naive reference counter.
//!
//! This is the original backtracking matcher, kept verbatim in spirit as
//! an executable specification: per recursion step it re-scans the query
//! edges incident to the current variable, iterates the smallest bound
//! neighbour list and binary-searches every other constraint. It is slow
//! (per-step work and a heap allocation per recursion node) but obviously
//! correct — the differential property suite (`tests/prop_count.rs`)
//! asserts the optimized plan-driven kernel in [`crate::count::CountPlan`]
//! returns identical counts on random graphs and queries.

use ceg_graph::{LabeledGraph, VertexId};
use ceg_query::{QueryGraph, VarId};

use crate::constraints::{VarConstraint, VarConstraints};
use crate::order::variable_order;

/// Count homomorphisms of `query` in `graph` by naive backtracking,
/// subject to per-variable constraints. Reference implementation for
/// differential testing; use [`crate::count()`] everywhere else.
pub fn count_naive(graph: &LabeledGraph, query: &QueryGraph, cons: &VarConstraints) -> u64 {
    if query.num_vars() == 0 {
        return 1;
    }
    let order = variable_order(graph, query);
    let mut state = Naive {
        graph,
        query,
        cons,
        order: &order,
        binding: vec![0; query.num_vars() as usize],
        bound: 0,
    };
    state.recurse(0)
}

struct Naive<'a> {
    graph: &'a LabeledGraph,
    query: &'a QueryGraph,
    cons: &'a VarConstraints,
    order: &'a [VarId],
    binding: Vec<VertexId>,
    bound: u32,
}

impl Naive<'_> {
    fn recurse(&mut self, depth: usize) -> u64 {
        if depth == self.order.len() {
            return 1;
        }
        let v = self.order[depth];
        let vc = self.cons.get(v);

        // Split the incident edges into one generator (smallest bound
        // neighbour list) and filters, re-scanning on every call.
        let mut gen: Option<(usize, &[VertexId])> = None;
        let mut filters: Vec<usize> = Vec::new();
        for i in self.query.edges_at(v) {
            let e = self.query.edge(i);
            if e.src == e.dst {
                filters.push(i);
                continue;
            }
            let other = e.other(v);
            if self.bound & (1 << other) == 0 {
                continue;
            }
            let o_val = self.binding[other as usize];
            let list = if e.dst == v {
                self.graph.out_neighbors(o_val, e.label)
            } else {
                self.graph.in_neighbors(o_val, e.label)
            };
            match gen {
                Some((_, g)) if g.len() <= list.len() => filters.push(i),
                Some((gi, _)) => {
                    filters.push(gi);
                    gen = Some((i, list));
                }
                None => gen = Some((i, list)),
            }
        }

        let mut total = 0u64;
        match gen {
            Some((_, candidates)) => {
                for &c in candidates {
                    if vc.admits(c) && self.check_filters(&filters, v, c) {
                        self.binding[v as usize] = c;
                        self.bound |= 1 << v;
                        total += self.recurse(depth + 1);
                        self.bound &= !(1 << v);
                    }
                }
            }
            None => match vc {
                VarConstraint::Fixed(u) => {
                    if self.check_filters(&filters, v, u) {
                        self.binding[v as usize] = u;
                        self.bound |= 1 << v;
                        total += self.recurse(depth + 1);
                        self.bound &= !(1 << v);
                    }
                }
                _ => {
                    for c in 0..self.graph.num_vertices() as VertexId {
                        if vc.admits(c) && self.check_filters(&filters, v, c) {
                            self.binding[v as usize] = c;
                            self.bound |= 1 << v;
                            total += self.recurse(depth + 1);
                            self.bound &= !(1 << v);
                        }
                    }
                }
            },
        }
        total
    }

    fn check_filters(&self, filters: &[usize], v: VarId, c: VertexId) -> bool {
        for &i in filters {
            let e = self.query.edge(i);
            if e.src == e.dst {
                if !self.graph.has_edge(c, c, e.label) {
                    return false;
                }
                continue;
            }
            let other = e.other(v);
            if self.bound & (1 << other) == 0 {
                continue;
            }
            let o_val = self.binding[other as usize];
            let ok = if e.dst == v {
                self.graph.has_edge(o_val, c, e.label)
            } else {
                self.graph.has_edge(c, o_val, e.label)
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    #[test]
    fn naive_matches_known_counts() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 0);
        let g = b.build();
        let cons = |n: VarId| VarConstraints::none(n);
        assert_eq!(count_naive(&g, &templates::path(1, &[0]), &cons(2)), 3);
        assert_eq!(count_naive(&g, &templates::path(2, &[0, 0]), &cons(3)), 2);
        assert_eq!(
            count_naive(&g, &templates::cycle(3, &[0, 0, 0]), &cons(3)),
            0
        );
    }
}
