//! Per-variable vertex predicates.
//!
//! The bound-sketch optimization (Section 5.2.1) partitions relations by
//! hashing attribute values into buckets; a sub-query of the sketch then
//! requires each partition attribute to fall in a fixed bucket. We express
//! this to the executor as a predicate per query variable.

use ceg_graph::hash::bucket_of;
use ceg_graph::VertexId;
use ceg_query::VarId;

/// Constraint on the data vertices a single query variable may bind to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarConstraint {
    /// No restriction.
    Any,
    /// `bucket_of(v, buckets) == bucket` must hold.
    HashBucket { buckets: u32, bucket: u32 },
    /// The variable is pinned to one concrete vertex (used by samplers).
    Fixed(VertexId),
}

impl VarConstraint {
    /// Does vertex `v` satisfy the constraint?
    #[inline]
    pub fn admits(&self, v: VertexId) -> bool {
        match *self {
            VarConstraint::Any => true,
            VarConstraint::HashBucket { buckets, bucket } => bucket_of(v, buckets) == bucket,
            VarConstraint::Fixed(u) => v == u,
        }
    }
}

/// A full assignment of constraints to query variables.
#[derive(Debug, Clone)]
pub struct VarConstraints {
    per_var: Vec<VarConstraint>,
}

impl VarConstraints {
    /// Unconstrained set for `num_vars` variables.
    pub fn none(num_vars: VarId) -> Self {
        VarConstraints {
            per_var: vec![VarConstraint::Any; num_vars as usize],
        }
    }

    /// Set the constraint of one variable.
    pub fn set(&mut self, var: VarId, c: VarConstraint) -> &mut Self {
        self.per_var[var as usize] = c;
        self
    }

    /// Constraint for `var` (Any if out of range).
    #[inline]
    pub fn get(&self, var: VarId) -> VarConstraint {
        self.per_var
            .get(var as usize)
            .copied()
            .unwrap_or(VarConstraint::Any)
    }

    /// True if no variable is constrained.
    pub fn is_trivial(&self) -> bool {
        self.per_var.iter().all(|c| matches!(c, VarConstraint::Any))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_admits_everything() {
        assert!(VarConstraint::Any.admits(0));
        assert!(VarConstraint::Any.admits(u32::MAX));
    }

    #[test]
    fn fixed_admits_only_the_vertex() {
        let c = VarConstraint::Fixed(7);
        assert!(c.admits(7));
        assert!(!c.admits(8));
    }

    #[test]
    fn hash_bucket_partitions_vertices() {
        let buckets = 4;
        for v in 0..100 {
            let hits: Vec<u32> = (0..buckets)
                .filter(|&b| VarConstraint::HashBucket { buckets, bucket: b }.admits(v))
                .collect();
            assert_eq!(hits.len(), 1, "vertex {v} must land in exactly one bucket");
        }
    }

    #[test]
    fn constraint_set_roundtrip() {
        let mut cs = VarConstraints::none(3);
        assert!(cs.is_trivial());
        cs.set(1, VarConstraint::Fixed(5));
        assert!(!cs.is_trivial());
        assert_eq!(cs.get(1), VarConstraint::Fixed(5));
        assert_eq!(cs.get(0), VarConstraint::Any);
        assert_eq!(cs.get(99), VarConstraint::Any);
    }
}
