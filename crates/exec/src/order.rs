//! Variable-ordering heuristic for the backtracking matcher.

use ceg_graph::GraphView;
use ceg_query::{QueryGraph, VarId};

/// Choose a binding order for the query variables.
///
/// Greedy: start at an endpoint of the rarest-label edge (small initial
/// candidate set), then repeatedly pick the unbound variable with the most
/// edges into the bound set (maximum pruning), breaking ties toward rarer
/// labels. Every prefix of the order induces a connected sub-query when
/// the query is connected, which the matcher relies on. Generic over
/// [`GraphView`] like the kernel itself (only label cardinalities are
/// consulted).
pub fn variable_order<G: GraphView>(graph: &G, query: &QueryGraph) -> Vec<VarId> {
    let n = query.num_vars();
    if n == 0 {
        return Vec::new();
    }
    if query.num_edges() == 0 {
        return (0..n).collect();
    }

    // Seed: endpoints of the edge whose relation is smallest.
    let seed_edge = (0..query.num_edges())
        .min_by_key(|&i| graph.label_count(query.edge(i).label))
        .unwrap();

    if let Some(ring) = ring_order(query, seed_edge) {
        return ring;
    }
    let mut order: Vec<VarId> = Vec::with_capacity(n as usize);
    let mut bound = 0u32;
    let push = |order: &mut Vec<VarId>, bound: &mut u32, v: VarId| {
        if *bound & (1 << v) == 0 {
            order.push(v);
            *bound |= 1 << v;
        }
    };
    push(&mut order, &mut bound, query.edge(seed_edge).src);
    push(&mut order, &mut bound, query.edge(seed_edge).dst);

    while order.len() < n as usize {
        let mut best: Option<(usize, usize, VarId)> = None; // (connections, -rarity, var)
        for v in 0..n {
            if bound & (1 << v) != 0 {
                continue;
            }
            let mut connections = 0usize;
            let mut rarity = usize::MAX;
            for i in query.edges_at(v) {
                let e = query.edge(i);
                if bound & (1 << e.other(v)) != 0 || e.src == e.dst {
                    connections += 1;
                    rarity = rarity.min(graph.label_count(e.label));
                }
            }
            let key = (connections, usize::MAX - rarity, v);
            if best.is_none_or(|(c, r, bv)| key > (c, r, bv)) {
                best = Some(key);
            }
        }
        let (connections, _, v) = best.unwrap();
        if connections == 0 {
            // Disconnected query: just take the variable (cartesian step).
            push(&mut order, &mut bound, v);
        } else {
            push(&mut order, &mut bound, v);
        }
    }
    order
}

/// Ring-walk order for simple-cycle queries: start at the rare seed edge
/// and bind vertices in ring succession.
///
/// For a cycle the greedy heuristic tends to extend from both seed
/// endpoints alternately (rarity tie-breaks), which leaves the closing
/// variable's far edge anchored at a *mid-order* variable. Walking the
/// ring instead anchors every suffix — including the closing
/// intersection's stable edge and the kernel's per-depth suffix memo — at
/// the root, which changes slowest: the memo then collapses cyclic
/// backtracking into the dynamic program over distinct
/// `(root, frontier)` states. Returns `None` unless the query is one
/// simple cycle (every variable on exactly two non-loop edges, one
/// connected ring, no parallel-edge shortcuts).
fn ring_order(query: &QueryGraph, seed_edge: usize) -> Option<Vec<VarId>> {
    let n = query.num_vars() as usize;
    if n < 3 {
        return None;
    }
    let mut ring_edges = 0usize;
    for v in 0..query.num_vars() {
        let mut deg = 0usize;
        for i in query.edges_at(v) {
            let e = query.edge(i);
            if e.src != e.dst {
                deg += 1;
            }
        }
        if deg != 2 {
            return None;
        }
        ring_edges += deg;
    }
    if ring_edges != 2 * n {
        return None;
    }
    // Walk from the seed edge; a genuine single ring visits every
    // variable exactly once before returning to the start.
    let seed = query.edge(seed_edge);
    let mut order = Vec::with_capacity(n);
    let mut visited = 0u32;
    let (mut prev_edge, mut at) = (seed_edge, seed.src);
    loop {
        if visited & (1 << at) != 0 {
            return None; // closed early: two smaller cycles, not one ring
        }
        visited |= 1 << at;
        order.push(at);
        if order.len() == n {
            break;
        }
        let next = query
            .edges_at(at)
            .find(|&i| i != prev_edge && query.edge(i).src != query.edge(i).dst)?;
        at = query.edge(next).other(at);
        prev_edge = next;
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::{GraphBuilder, LabeledGraph};
    use ceg_query::templates;

    fn graph() -> LabeledGraph {
        let mut b = GraphBuilder::new(10);
        // label 0 common, label 1 rare
        for i in 0..9 {
            b.add_edge(i, i + 1, 0);
        }
        b.add_edge(0, 5, 1);
        b.build()
    }

    #[test]
    fn order_covers_all_vars_once() {
        let g = graph();
        let q = templates::path(3, &[0, 1, 0]);
        let order = variable_order(&g, &q);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn order_starts_at_rare_edge() {
        let g = graph();
        let q = templates::path(3, &[0, 1, 0]);
        let order = variable_order(&g, &q);
        // rare edge is the middle one (vars 1 and 2)
        assert!(order[0] == 1 || order[0] == 2);
    }

    #[test]
    fn prefixes_stay_connected() {
        let g = graph();
        let q = templates::q5f(&[0, 0, 1, 0, 0]);
        let order = variable_order(&g, &q);
        for k in 2..=order.len() {
            let prefix: u32 = order[..k].iter().map(|&v| 1u32 << v).sum();
            // at least one query edge must connect each new var to the prefix
            let v = order[k - 1];
            let connected = q
                .edges_at(v)
                .any(|i| prefix & (1 << q.edge(i).other(v)) != 0 || k == 1);
            assert!(connected || k <= 2, "var {v} disconnected at step {k}");
        }
    }

    #[test]
    fn empty_query_order() {
        let g = graph();
        let q = QueryGraph::new(0, vec![]);
        assert!(variable_order(&g, &q).is_empty());
    }

    use ceg_query::QueryGraph;
}
