//! Pins the `CountBudget` accounting of the plan-driven kernel.
//!
//! The PR 3 kernel changed what a unit of budget means: candidates are
//! charged **after** intersection pruning (the old matcher charged every
//! neighbour scanned), and a fully independent suffix is charged its
//! candidate-set-size **product in one bulk step** instead of one unit
//! per enumerated binding. Both make exhaustion rarer at equal budgets.
//! These tests fix the exact charge of hand-analyzed plans at the
//! boundary budget, so a future kernel refactor that silently changes
//! the accounting again fails loudly here instead of shifting every
//! caller's effective timeout.

use ceg_exec::{count_with_limit, CountBudget, VarConstraints};
use ceg_graph::{GraphBuilder, LabeledGraph};
use ceg_query::{templates, QueryEdge, QueryGraph};

fn counts(graph: &LabeledGraph, query: &QueryGraph, budget: u64) -> Option<u64> {
    count_with_limit(
        graph,
        query,
        &VarConstraints::none(query.num_vars()),
        CountBudget::new(budget),
    )
}

/// Star query, hub with 4 out-edges: the two leaves form an independent
/// suffix, so the count (4 × 4 = 16) is charged as one bulk product of
/// 16 plus 1 for the single root candidate — 17 units, not the 21
/// (1 + 4 + 16) a per-binding accounting would need.
#[test]
fn independent_suffix_is_charged_in_bulk() {
    let mut b = GraphBuilder::new(5);
    for d in 1..5 {
        b.add_edge(0, d, 0);
    }
    let g = b.build();
    let q = templates::star(2, &[0, 0]);
    assert_eq!(counts(&g, &q, u64::MAX), Some(16));
    assert_eq!(
        counts(&g, &q, 17),
        Some(16),
        "exact boundary: 1 root + 16 bulk"
    );
    assert_eq!(counts(&g, &q, 16), None, "one unit short must exhaust");
}

/// Parallel query edges between the same variable pair: the candidate
/// set of the second variable is the *intersection* of a 4-list and a
/// 2-list. Post-pruning accounting charges the 2 surviving candidates
/// (as a bulk suffix product), not the 4 or 6 the inputs hold —
/// 1 root + 2 = 3 units total.
#[test]
fn candidates_are_charged_after_intersection_pruning() {
    let mut b = GraphBuilder::new(5);
    for d in 1..5 {
        b.add_edge(0, d, 0);
    }
    b.add_edge(0, 1, 1);
    b.add_edge(0, 2, 1);
    let g = b.build();
    let q = QueryGraph::new(2, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(0, 1, 1)]);
    assert_eq!(counts(&g, &q, u64::MAX), Some(2));
    assert_eq!(
        counts(&g, &q, 3),
        Some(2),
        "exact boundary: 1 root + |∩| = 2"
    );
    assert_eq!(counts(&g, &q, 2), None);
}

/// Self-loop checks keep a depth out of the independent suffix, so the
/// root candidates are charged one by one; exhaustion mid-enumeration
/// discards the partial tally and returns `None` (the partial-result
/// contract: a budgeted count is all-or-nothing).
#[test]
fn mid_count_exhaustion_returns_none_not_partial() {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, 0);
    b.add_edge(0, 2, 0);
    b.add_edge(1, 1, 1);
    let g = b.build();
    // v0 -0-> v1 with a label-1 self-loop on v1: matches only v1 = 1.
    let q = QueryGraph::new(2, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(1, 1, 1)]);
    assert_eq!(counts(&g, &q, u64::MAX), Some(1));
    // Charges: root candidate 1 (passes the loop check) = 1, its
    // independent 1-candidate suffix = 1, root candidate 2 = 1 → 3 total.
    assert_eq!(counts(&g, &q, 3), Some(1));
    // Budget 2 runs out *after* the first match is found — the partial
    // count must not leak out as a completed result.
    assert_eq!(counts(&g, &q, 2), None);
    assert_eq!(counts(&g, &q, 0), None, "zero budget can count nothing");
}
