//! Differential tests of the delta-aware counting path.
//!
//! The kernel is generic over `GraphView`; these properties pin the two
//! implementations against each other: counting on an `OverlayGraph`
//! (base CSR + un-folded `GraphDelta`) must agree exactly with counting
//! on the rebased graph (`LabeledGraph::rebase`), which in turn must
//! agree with the naive reference matcher. Together with
//! `tests/prop_count.rs` (kernel vs naive on plain graphs) this closes
//! the loop: base, overlay and rebased representations are
//! indistinguishable to the counting kernel.

use ceg_exec::{count, count_naive, enumerate, VarConstraints};
use ceg_graph::{GraphBuilder, GraphDelta, LabeledGraph, OverlayGraph};
use ceg_query::{templates, QueryEdge, QueryGraph};
use proptest::prelude::*;

const LABELS: u16 = 3;
const VERTICES: u32 = 12;

fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
    prop::collection::vec((0u32..VERTICES, 0u32..VERTICES, 0u16..LABELS), 0..50).prop_map(|edges| {
        let mut b = GraphBuilder::with_labels(VERTICES as usize, LABELS as usize);
        for (s, d, l) in edges {
            b.add_edge(s, d, l);
        }
        b.build()
    })
}

/// Random deltas, including ops on vertices/labels beyond the base
/// domain and deliberate no-ops (adds of present edges, dels of absent
/// ones) that normalization must strip.
fn arb_delta() -> impl Strategy<Value = GraphDelta> {
    prop::collection::vec(
        (
            0u8..2,
            0u32..VERTICES + 3,
            0u32..VERTICES + 3,
            0u16..LABELS + 1,
        ),
        0..30,
    )
    .prop_map(|ops| {
        let mut d = GraphDelta::new();
        for (add, s, t, l) in ops {
            if add == 1 {
                d.add_edge(s, t, l);
            } else {
                d.del_edge(s, t, l);
            }
        }
        d
    })
}

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    let l = 0u16..LABELS;
    prop_oneof![
        prop::collection::vec(l.clone(), 1..=4).prop_map(|ls| templates::path(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 2..=4).prop_map(|ls| templates::star(ls.len(), &ls)),
        prop::collection::vec(l.clone(), 3..=5).prop_map(|ls| templates::cycle(ls.len(), &ls)),
        prop::collection::vec((0u8..4, 0u8..4, l), 1..=5).prop_map(|es| {
            let edges: Vec<QueryEdge> = es
                .into_iter()
                .map(|(s, d, l)| QueryEdge::new(s, d, l))
                .collect();
            QueryGraph::new(4, edges)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Overlay counts == rebased counts == naive counts on the rebased
    /// graph, for random graphs, deltas and queries.
    #[test]
    fn overlay_count_matches_rebase(
        (g, d, q) in (arb_graph(), arb_delta(), arb_query())
    ) {
        let rebased = g.rebase(&d);
        let overlay = OverlayGraph::new(&g, &d);
        let on_overlay = count(&overlay, &q);
        let on_rebased = count(&rebased, &q);
        prop_assert_eq!(on_overlay, on_rebased, "overlay vs rebased on {}", &q);
        let cons = VarConstraints::none(q.num_vars());
        prop_assert_eq!(on_rebased, count_naive(&rebased, &q, &cons), "kernel vs naive on {}", &q);
    }

    /// Enumeration on the overlay yields exactly the bindings valid in
    /// the rebased graph.
    #[test]
    fn overlay_enumeration_is_sound_and_complete(
        (g, d, q) in (arb_graph(), arb_delta(), arb_query())
    ) {
        let rebased = g.rebase(&d);
        let overlay = OverlayGraph::new(&g, &d);
        let cons = VarConstraints::none(q.num_vars());
        let mut seen = Vec::new();
        enumerate(&overlay, &q, &cons, &mut |b| {
            seen.push(b.to_vec());
            true
        });
        for b in &seen {
            for e in q.edges() {
                prop_assert!(
                    rebased.has_edge(b[e.src as usize], b[e.dst as usize], e.label),
                    "binding {:?} violates {:?} of {}", b, e, &q
                );
            }
        }
        let n = seen.len() as u64;
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len() as u64, n, "duplicates from {}", &q);
        prop_assert_eq!(n, count_naive(&rebased, &q, &cons), "completeness on {}", &q);
    }
}
