//! # ceg-catalog
//!
//! Statistics substrates for every estimator in the paper:
//!
//! * [`MarkovTable`] — cardinalities of small joins up to size `h`
//!   (Markov tables / graph summaries / graph catalogue, Section 4.1);
//!   feeds the optimistic CEG_O,
//! * [`DegreeStats`] — maximum-degree statistics `deg(X, Y, R_i)` of base
//!   relations and of small joins (Section 5.1/5.1.1); feeds the
//!   pessimistic CEG_M (MOLP) and CBS,
//! * [`CcrTable`] — sampled cycle-closing rates
//!   `P(E_{i-1} * E_{i+1} | E_i)` (Section 4.3); feeds CEG_OCR,
//! * [`CharacteristicSets`] — per-vertex outgoing-label set statistics for
//!   the CS baseline (Section 6.4),
//! * [`SummaryGraph`] — a SumRDF-style bucketed summary for the summary
//!   baseline (Section 6.4).

pub mod ccr;
pub mod charsets;
pub mod degree;
pub mod io;
pub mod markov;
pub mod summary;

pub use ccr::{CcrKey, CcrTable};
pub use charsets::CharacteristicSets;
pub use degree::{DegreeStats, JoinStats};
pub use markov::{
    count_patterns, count_patterns_budgeted, count_patterns_budgeted_stats,
    default_build_parallelism, FillStats, MarkovTable,
};
pub use summary::SummaryGraph;
