//! Characteristic Sets statistics (Neumann & Moerkotte), the CS baseline
//! of Section 6.4.
//!
//! The characteristic set of a vertex is its set of distinct outgoing edge
//! labels. For each characteristic set we store how many vertices share it
//! and, per label, the total number of edges — enough to estimate star
//! cardinalities, which the CS estimator then multiplies under an
//! independence assumption for non-star queries.

use ceg_graph::{FxHashMap, LabelId, LabeledGraph};

/// Statistics of one characteristic-set class.
#[derive(Debug, Clone, Default)]
pub struct CsClass {
    /// Number of vertices whose outgoing-label set equals this class.
    pub count: u64,
    /// Per label in the set: total number of outgoing edges over the class
    /// (so `total / count` is the class-average multiplicity).
    pub label_totals: FxHashMap<LabelId, u64>,
}

/// The full characteristic-sets catalogue of a graph.
#[derive(Debug, Clone)]
pub struct CharacteristicSets {
    classes: FxHashMap<Vec<LabelId>, CsClass>,
    num_vertices: u64,
}

impl CharacteristicSets {
    /// Scan the graph and group vertices by characteristic set.
    pub fn build(graph: &LabeledGraph) -> Self {
        let mut classes: FxHashMap<Vec<LabelId>, CsClass> = FxHashMap::default();
        for v in 0..graph.num_vertices() as u32 {
            let mut cs: Vec<LabelId> = Vec::new();
            for l in 0..graph.num_labels() as LabelId {
                if graph.out_degree(v, l) > 0 {
                    cs.push(l);
                }
            }
            if cs.is_empty() {
                continue;
            }
            let class = classes.entry(cs.clone()).or_default();
            class.count += 1;
            for l in cs {
                *class.label_totals.entry(l).or_insert(0) += graph.out_degree(v, l) as u64;
            }
        }
        CharacteristicSets {
            classes,
            num_vertices: graph.num_vertices() as u64,
        }
    }

    /// Number of distinct characteristic sets.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Domain size (used for the join-independence correction).
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Estimate the number of (homomorphic) matches of an out-star whose
    /// center has the given outgoing labels (with multiplicity): the paper's
    /// CS star estimate `Σ_{cs ⊇ labels} count(cs) · Π avg-multiplicity`.
    pub fn estimate_star(&self, labels: &[LabelId]) -> f64 {
        if labels.is_empty() {
            return self.num_vertices as f64;
        }
        let mut needed: Vec<LabelId> = labels.to_vec();
        needed.sort_unstable();
        let mut distinct = needed.clone();
        distinct.dedup();
        let mut total = 0.0f64;
        for (cs, class) in &self.classes {
            if !distinct.iter().all(|l| cs.contains(l)) {
                continue;
            }
            let mut est = class.count as f64;
            for l in &needed {
                let avg = class.label_totals[l] as f64 / class.count as f64;
                est *= avg;
            }
            total += est;
        }
        total
    }

    /// Iterate classes (for reporting).
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<LabelId>, &CsClass)> {
        self.classes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    /// Vertices 0,1 have labels {0,1}; vertex 2 has {0} only.
    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 3, 0);
        b.add_edge(0, 4, 0);
        b.add_edge(0, 5, 1);
        b.add_edge(1, 6, 0);
        b.add_edge(1, 7, 1);
        b.add_edge(2, 8, 0);
        b.build()
    }

    #[test]
    fn classes_group_by_label_set() {
        let cs = CharacteristicSets::build(&toy());
        assert_eq!(cs.num_classes(), 2); // {0,1} and {0}
    }

    #[test]
    fn star_estimate_is_exact_for_single_label() {
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        // 1-star with label 0 = |R_0| = 4
        assert!((cs.estimate_star(&[0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn star_estimate_matches_truth_on_uniform_class() {
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        // 2-star {0,1}: truth = Σ_v out0(v)·out1(v) = 2·1 + 1·1 = 3
        let truth = count(&g, &templates::star(2, &[0, 1])) as f64;
        let est = cs.estimate_star(&[0, 1]);
        // class {0,1} has avg out0 = 1.5, out1 = 1 → est = 2·1.5·1 = 3
        assert!((est - truth).abs() < 1e-9, "est={est} truth={truth}");
    }

    #[test]
    fn repeated_label_star_uses_multiplicity() {
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        // 2-star with label 0 twice: estimate uses avg² per class
        let est = cs.estimate_star(&[0, 0]);
        // class {0,1}: 2·1.5² = 4.5; class {0}: 1·1² = 1 → 5.5
        assert!((est - 5.5).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn empty_star_counts_vertices() {
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        assert_eq!(cs.estimate_star(&[]), 10.0);
    }

    #[test]
    fn unknown_label_star_is_zero() {
        let g = toy();
        let cs = CharacteristicSets::build(&g);
        assert_eq!(cs.estimate_star(&[9]), 0.0);
    }
}
