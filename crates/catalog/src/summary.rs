//! SumRDF-style summary graph (Stefanoni et al.), the summary baseline of
//! Section 6.4.
//!
//! Vertices are collapsed into buckets; the summary records, per label,
//! how many edges run between each bucket pair. The estimate is the
//! *expected* number of query matches over the possible worlds that share
//! the summary — a uniformity assumption inside buckets: an edge between
//! buckets `(s, d)` with multiplicity `m` is present between a concrete
//! vertex pair with probability `m / (n_s · n_d)`.
//!
//! Like the paper's SumRDF runs, estimation carries a work budget and
//! *times out* (`None`) when the bucket-assignment enumeration exceeds it.

use ceg_graph::hash::bucket_of;
use ceg_graph::{FxHashMap, LabelId, LabeledGraph};
use ceg_query::{QueryGraph, VarId};

/// Bucketed summary of a labeled graph.
#[derive(Debug, Clone)]
pub struct SummaryGraph {
    num_buckets: u32,
    /// Vertices per bucket.
    sizes: Vec<u64>,
    /// `(label, src bucket) → [(dst bucket, multiplicity)]`, sorted.
    adj: FxHashMap<(LabelId, u32), Vec<(u32, u64)>>,
    /// `(label, dst bucket) → [(src bucket, multiplicity)]`, sorted.
    radj: FxHashMap<(LabelId, u32), Vec<(u32, u64)>>,
}

impl SummaryGraph {
    /// Build a summary with `num_buckets` hash buckets.
    pub fn build(graph: &LabeledGraph, num_buckets: u32) -> Self {
        assert!(num_buckets > 0);
        let mut sizes = vec![0u64; num_buckets as usize];
        for v in 0..graph.num_vertices() as u32 {
            sizes[bucket_of(v, num_buckets) as usize] += 1;
        }
        let mut counts: FxHashMap<(LabelId, u32, u32), u64> = FxHashMap::default();
        for e in graph.all_edges() {
            let bs = bucket_of(e.src, num_buckets);
            let bd = bucket_of(e.dst, num_buckets);
            *counts.entry((e.label, bs, bd)).or_insert(0) += 1;
        }
        let mut adj: FxHashMap<(LabelId, u32), Vec<(u32, u64)>> = FxHashMap::default();
        let mut radj: FxHashMap<(LabelId, u32), Vec<(u32, u64)>> = FxHashMap::default();
        for (&(l, bs, bd), &m) in &counts {
            adj.entry((l, bs)).or_default().push((bd, m));
            radj.entry((l, bd)).or_default().push((bs, m));
        }
        for v in adj.values_mut().chain(radj.values_mut()) {
            v.sort_unstable();
        }
        SummaryGraph {
            num_buckets,
            sizes,
            adj,
            radj,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u32 {
        self.num_buckets
    }

    /// Total summary entries (for size reporting).
    pub fn num_entries(&self) -> usize {
        self.adj.values().map(Vec::len).sum()
    }

    /// Expected number of matches of `query`, or `None` on budget
    /// exhaustion (modelling SumRDF's timeouts).
    pub fn estimate(&self, query: &QueryGraph, budget: u64) -> Option<f64> {
        if query.num_vars() == 0 {
            return Some(1.0);
        }
        // Bind variables in a connectivity-first order.
        let order = connectivity_order(query);
        let mut assignment = vec![0u32; query.num_vars() as usize];
        let mut state = Walker {
            summary: self,
            query,
            order: &order,
            assignment: &mut assignment,
            bound: 0,
            budget,
            total: 0.0,
        };
        state.recurse(0, 1.0).then_some(state.total)
    }

    fn multiplicity(&self, l: LabelId, bs: u32, bd: u32) -> u64 {
        self.adj
            .get(&(l, bs))
            .and_then(|v| {
                v.binary_search_by_key(&bd, |&(b, _)| b)
                    .ok()
                    .map(|i| v[i].1)
            })
            .unwrap_or(0)
    }
}

fn connectivity_order(query: &QueryGraph) -> Vec<VarId> {
    let n = query.num_vars();
    let mut order = Vec::with_capacity(n as usize);
    let mut bound = 0u32;
    while order.len() < n as usize {
        let mut best: Option<(usize, VarId)> = None;
        for v in 0..n {
            if bound & (1 << v) != 0 {
                continue;
            }
            let conn = query
                .edges_at(v)
                .filter(|&i| {
                    let e = query.edge(i);
                    bound & (1 << e.other(v)) != 0
                })
                .count();
            if best.is_none_or(|(c, _)| conn > c) {
                best = Some((conn, v));
            }
        }
        let (_, v) = best.unwrap();
        order.push(v);
        bound |= 1 << v;
    }
    order
}

struct Walker<'a> {
    summary: &'a SummaryGraph,
    query: &'a QueryGraph,
    order: &'a [VarId],
    assignment: &'a mut [u32],
    bound: u32,
    budget: u64,
    total: f64,
}

impl Walker<'_> {
    /// Returns false when the budget is exhausted.
    fn recurse(&mut self, depth: usize, weight: f64) -> bool {
        if depth == self.order.len() {
            self.total += weight;
            return true;
        }
        let v = self.order[depth];
        // candidate buckets: restrict through one bound neighbour if any
        let mut seed: Option<Vec<u32>> = None;
        for i in self.query.edges_at(v) {
            let e = self.query.edge(i);
            if e.src == e.dst {
                continue;
            }
            let o = e.other(v);
            if self.bound & (1 << o) == 0 {
                continue;
            }
            let ob = self.assignment[o as usize];
            let list = if e.dst == v {
                self.summary.adj.get(&(e.label, ob))
            } else {
                self.summary.radj.get(&(e.label, ob))
            };
            let buckets: Vec<u32> = list
                .map(|v| v.iter().map(|&(b, _)| b).collect())
                .unwrap_or_default();
            seed = Some(buckets);
            break;
        }
        let candidates: Vec<u32> = match seed {
            Some(c) => c,
            None => (0..self.summary.num_buckets)
                .filter(|&b| self.summary.sizes[b as usize] > 0)
                .collect(),
        };
        for b in candidates {
            if self.budget == 0 {
                return false;
            }
            self.budget -= 1;
            let n_b = self.summary.sizes[b as usize] as f64;
            if n_b == 0.0 {
                continue;
            }
            // accumulate edge probabilities to every bound neighbour
            let mut w = weight * n_b;
            let mut ok = true;
            for i in self.query.edges_at(v) {
                let e = self.query.edge(i);
                let (sb, db) = if e.src == e.dst {
                    (b, b)
                } else {
                    let o = e.other(v);
                    if self.bound & (1 << o) == 0 {
                        continue;
                    }
                    let ob = self.assignment[o as usize];
                    if e.src == v {
                        (b, ob)
                    } else {
                        (ob, b)
                    }
                };
                let m = self.summary.multiplicity(e.label, sb, db) as f64;
                if m == 0.0 {
                    ok = false;
                    break;
                }
                let ns = self.summary.sizes[sb as usize] as f64;
                let nd = self.summary.sizes[db as usize] as f64;
                w *= m / (ns * nd);
            }
            if !ok {
                continue;
            }
            self.assignment[v as usize] = b;
            self.bound |= 1 << v;
            let cont = self.recurse(depth + 1, w);
            self.bound &= !(1 << v);
            if !cont {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn chain_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new(40);
        for i in 0..39u32 {
            b.add_edge(i, i + 1, (i % 2) as LabelId);
        }
        b.build()
    }

    #[test]
    fn single_edge_estimate_is_exact() {
        // with any bucketing, the expected count of a single-relation query
        // equals the true relation size: Σ m = |R|.
        let g = chain_graph();
        let s = SummaryGraph::build(&g, 8);
        let q = templates::path(1, &[0]);
        let est = s.estimate(&q, u64::MAX).unwrap();
        assert!((est - count(&g, &q) as f64).abs() < 1e-6);
    }

    #[test]
    fn one_bucket_degenerates_to_independence() {
        let g = chain_graph();
        let s = SummaryGraph::build(&g, 1);
        let q = templates::path(2, &[0, 1]);
        let n = g.num_vertices() as f64;
        let expect =
            n * n * n * (g.label_count(0) as f64 / (n * n)) * (g.label_count(1) as f64 / (n * n));
        let est = s.estimate(&q, u64::MAX).unwrap();
        assert!((est - expect).abs() < 1e-6, "est={est} expect={expect}");
    }

    #[test]
    fn max_buckets_is_nearly_exact() {
        // one vertex per bucket → the summary is the graph itself and the
        // expected value equals the true count.
        let g = chain_graph();
        let s = SummaryGraph::build(&g, 4096);
        let q = templates::path(2, &[0, 1]);
        let est = s.estimate(&q, u64::MAX).unwrap();
        let truth = count(&g, &q) as f64;
        assert!((est - truth).abs() < 1e-6, "est={est} truth={truth}");
    }

    #[test]
    fn budget_exhaustion_times_out() {
        let g = chain_graph();
        let s = SummaryGraph::build(&g, 64);
        let q = templates::path(3, &[0, 1, 0]);
        assert!(s.estimate(&q, 2).is_none());
    }

    #[test]
    fn summary_size_reporting() {
        let g = chain_graph();
        let s = SummaryGraph::build(&g, 8);
        assert!(s.num_entries() > 0);
        assert_eq!(s.num_buckets(), 8);
    }
}
