//! Cycle-closing rates for CEG_OCR (Section 4.3).
//!
//! For a query cycle closed by edge `E_i` lying between cycle edges
//! `E_{i-1}` and `E_{i+1}`, the statistic `P(E_{i-1} * E_{i+1} | E_i)` is
//! the probability that a path starting with an `E_{i-1}` edge and ending
//! with an `E_{i+1}` edge is closed into a cycle by an `E_i` edge. The
//! paper estimates these by sampling random walks; we do the same. The
//! table has at most `O(L^3)` entries over `L` labels and, like the
//! Markov table, is built workload-specifically.

use ceg_graph::{FxHashMap, LabelId, LabeledGraph, VertexId};
use ceg_query::cycles::simple_cycles;
use ceg_query::QueryGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Orientation-aware key: the labels of the previous, closing, and next
/// edges of the cycle, plus their directions relative to the closing
/// edge's endpoints (`x` = path-start endpoint, `y` = path-end endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CcrKey {
    pub prev_label: LabelId,
    /// True if `x` is the *source* of the `E_{i-1}` edge.
    pub prev_x_is_src: bool,
    pub close_label: LabelId,
    /// True if `x` is the source of the closing `E_i` edge.
    pub close_x_is_src: bool,
    pub next_label: LabelId,
    /// True if `y` is the source of the `E_{i+1}` edge.
    pub next_y_is_src: bool,
    /// Length of the cycle being closed. The paper samples "paths of
    /// varying lengths"; keying the rate by the cycle length (a k-cycle's
    /// closing path has exactly `k - 3` intermediate hops) measurably
    /// sharpens the rates at a ×(number of distinct cycle lengths) table
    /// cost, still within the paper's `O(L³)`-sized budget.
    pub cycle_len: u8,
}

/// Sampled cycle-closing rates.
#[derive(Debug, Clone)]
pub struct CcrTable {
    rates: FxHashMap<CcrKey, f64>,
    samples: u32,
}

impl CcrTable {
    /// Build the rates needed by the given workload queries: one entry per
    /// (cycle, candidate closing edge) pair over all simple cycles of each
    /// query. `samples` random walks are drawn per entry.
    pub fn build(graph: &LabeledGraph, queries: &[QueryGraph], samples: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rates = FxHashMap::default();
        for q in queries {
            for key in Self::keys_for_query(q) {
                rates
                    .entry(key)
                    .or_insert_with(|| sample_rate(graph, &key, samples, &mut rng));
            }
        }
        CcrTable { rates, samples }
    }

    /// The CCR keys a query requires: for every simple cycle and every
    /// choice of closing edge within it.
    pub fn keys_for_query(query: &QueryGraph) -> Vec<CcrKey> {
        let mut keys = Vec::new();
        for cyc in simple_cycles(query) {
            if cyc.len() < 3 {
                continue;
            }
            for close_idx in cyc.iter() {
                if let Some(key) = Self::key_for_closing(query, cyc, close_idx) {
                    keys.push(key);
                }
            }
        }
        keys.sort_by_key(|k| {
            (
                k.prev_label,
                k.close_label,
                k.next_label,
                k.prev_x_is_src,
                k.close_x_is_src,
                k.next_y_is_src,
                k.cycle_len,
            )
        });
        keys.dedup();
        keys
    }

    /// Key for closing cycle `cyc` (an edge mask) with edge `close_idx`.
    /// `None` when the neighbours cannot be determined (degenerate cycles).
    pub fn key_for_closing(
        query: &QueryGraph,
        cyc: ceg_query::EdgeMask,
        close_idx: usize,
    ) -> Option<CcrKey> {
        let close = query.edge(close_idx);
        let (x, y) = (close.src, close.dst);
        // the cycle edges adjacent to x and y other than the closing edge
        let prev_idx = cyc
            .iter()
            .find(|&i| i != close_idx && query.edge(i).touches(x))?;
        let next_idx = cyc
            .iter()
            .find(|&i| i != close_idx && i != prev_idx && query.edge(i).touches(y))?;
        let prev = query.edge(prev_idx);
        let next = query.edge(next_idx);
        Some(CcrKey {
            prev_label: prev.label,
            prev_x_is_src: prev.src == x,
            close_label: close.label,
            close_x_is_src: true, // x is close.src by construction
            next_label: next.label,
            next_y_is_src: next.src == y,
            cycle_len: cyc.len() as u8,
        })
    }

    /// Look up a rate; `None` if it was not collected.
    pub fn rate(&self, key: &CcrKey) -> Option<f64> {
        self.rates.get(key).copied()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when no rates are stored.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Samples drawn per entry.
    pub fn samples(&self) -> u32 {
        self.samples
    }
}

/// Estimate `P(prev * next | close)` with random walks: draw a random
/// `prev` edge, take a short random walk, require it to end with a `next`
/// edge, and test whether a `close` edge joins the two loose endpoints.
fn sample_rate(graph: &LabeledGraph, key: &CcrKey, samples: u32, rng: &mut StdRng) -> f64 {
    let prev_card = graph.label_count(key.prev_label);
    if prev_card == 0 {
        return fallback_rate(graph, key.close_label);
    }
    let prev_edges: Vec<(VertexId, VertexId)> = graph.edges(key.prev_label).collect();
    let num_labels = graph.num_labels() as LabelId;

    // Horvitz-Thompson estimation of the path-closure ratio: a uniform
    // random walk samples each concrete path with probability
    // prod 1/|candidates|, so every completed walk is weighted by
    // prod |candidates| - giving unbiased estimates of both the number of
    // (E_{i-1}, ..., E_{i+1}) paths and the number of closed ones; the
    // rate is their ratio.
    let mut paths_w = 0.0f64;
    let mut closed_w = 0.0f64;
    for _ in 0..samples {
        let &(a, b) = &prev_edges[rng.random_range(0..prev_edges.len())];
        // x = loose endpoint of the prev edge; the walk starts at the other
        let (x, mut at) = if key.prev_x_is_src { (a, b) } else { (b, a) };
        // a k-cycle's closing path has exactly k - 3 intermediate hops
        let steps = key.cycle_len.saturating_sub(3) as u32;
        let mut ok = true;
        let mut weight = 1.0f64;
        for _ in 0..steps {
            // uniform step over *all* incident edges (any label, either
            // direction) - the paper's paths have arbitrary middle labels
            let mut total = 0usize;
            for l in 0..num_labels {
                total += graph.out_degree(at, l) + graph.in_degree(at, l);
            }
            if total == 0 {
                ok = false;
                break;
            }
            let mut pick = rng.random_range(0..total);
            let mut next = at;
            'outer: for l in 0..num_labels {
                let outs = graph.out_neighbors(at, l);
                if pick < outs.len() {
                    next = outs[pick];
                    break 'outer;
                }
                pick -= outs.len();
                let ins = graph.in_neighbors(at, l);
                if pick < ins.len() {
                    next = ins[pick];
                    break 'outer;
                }
                pick -= ins.len();
            }
            weight *= total as f64;
            at = next;
        }
        if !ok {
            continue;
        }
        // the walk must end with a `next` edge into y
        let ys = if key.next_y_is_src {
            graph.in_neighbors(at, key.next_label)
        } else {
            graph.out_neighbors(at, key.next_label)
        };
        if ys.is_empty() {
            continue;
        }
        let y = ys[rng.random_range(0..ys.len())];
        let w = weight * ys.len() as f64;
        paths_w += w;
        let is_closed = if key.close_x_is_src {
            graph.has_edge(x, y, key.close_label)
        } else {
            graph.has_edge(y, x, key.close_label)
        };
        if is_closed {
            closed_w += w;
        }
    }
    if paths_w == 0.0 {
        fallback_rate(graph, key.close_label)
    } else {
        closed_w / paths_w
    }
}

/// Density-based fallback when no walk reaches a valid path: the
/// probability that a uniformly random vertex pair is joined by a
/// `close`-labeled edge.
fn fallback_rate(graph: &LabeledGraph, close_label: LabelId) -> f64 {
    let n = graph.num_vertices() as f64;
    if n == 0.0 {
        return 0.0;
    }
    (graph.label_count(close_label) as f64 / (n * n)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    /// Graph where every 2-path with labels 0,1 closes back with label 2.
    fn always_closes() -> LabeledGraph {
        let mut b = GraphBuilder::new(30);
        for i in 0..10u32 {
            let (u, v, w) = (3 * i, 3 * i + 1, 3 * i + 2);
            b.add_edge(u, v, 0);
            b.add_edge(v, w, 1);
            b.add_edge(u, w, 2); // closing edge always present
        }
        b.build()
    }

    #[test]
    fn keys_for_triangle_query() {
        let q = templates::cycle(3, &[0, 1, 2]);
        let keys = CcrTable::keys_for_query(&q);
        assert!(!keys.is_empty());
        // every key references labels of the query
        for k in &keys {
            assert!(k.prev_label < 3 && k.close_label < 3 && k.next_label < 3);
        }
    }

    #[test]
    fn acyclic_query_needs_no_keys() {
        let q = templates::path(4, &[0, 1, 2, 3]);
        assert!(CcrTable::keys_for_query(&q).is_empty());
    }

    #[test]
    fn rate_detects_always_closing_structure() {
        let g = always_closes();
        // triangle matching the data orientation:
        // a0 -0-> a1 -1-> a2 and chord a0 -2-> a2 (the closing edge).
        let q = QueryGraph::new(
            3,
            vec![
                ceg_query::QueryEdge::new(0, 1, 0),
                ceg_query::QueryEdge::new(1, 2, 1),
                ceg_query::QueryEdge::new(0, 2, 2),
            ],
        );
        let t = CcrTable::build(&g, std::slice::from_ref(&q), 400, 42);
        assert!(!t.is_empty());
        // closing the (0,1)-path with a 2-edge always succeeds in this data
        let key = CcrTable::key_for_closing(&q, q.full_mask(), 2).unwrap();
        let rate = t.rate(&key).unwrap();
        assert!(rate > 0.5, "rate was {rate}");
    }

    #[test]
    fn rate_is_probability() {
        let g = always_closes();
        let q = templates::cycle(4, &[0, 1, 2, 0]);
        let t = CcrTable::build(&g, std::slice::from_ref(&q), 100, 7);
        for (&_, &r) in t.rates.iter() {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn fallback_rate_is_density() {
        let g = always_closes();
        let r = fallback_rate(&g, 2);
        assert!(r > 0.0 && r < 1.0);
        assert_eq!(fallback_rate(&GraphBuilder::new(0).build(), 0), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = always_closes();
        let q = templates::cycle(3, &[2, 0, 1]);
        let t1 = CcrTable::build(&g, std::slice::from_ref(&q), 200, 9);
        let t2 = CcrTable::build(&g, std::slice::from_ref(&q), 200, 9);
        for (k, v) in t1.rates.iter() {
            assert_eq!(t2.rate(k), Some(*v));
        }
    }
}
