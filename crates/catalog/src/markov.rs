//! Markov tables: cardinalities of small joins.
//!
//! A Markov table of size `h` stores `|P|` for small patterns `P` with up
//! to `h` edges (Section 4.1, Table 1). Following the paper's evaluation
//! setup (Section 6), tables are *workload-specific*: we store exactly the
//! connected sub-patterns of the workload's queries, which keeps tables at
//! a fraction of a megabyte.

use ceg_exec::VarConstraints;
use ceg_graph::{FxHashMap, GraphView, LabelId, LabeledGraph};
use ceg_query::{EdgeMask, Pattern, QueryGraph};

/// Cardinalities of connected patterns with at most `h` edges.
#[derive(Debug, Clone)]
pub struct MarkovTable {
    h: usize,
    entries: FxHashMap<Pattern, u64>,
}

impl MarkovTable {
    /// An empty table of size `h` (entries added via [`MarkovTable::insert`],
    /// e.g. when loading a persisted table).
    pub fn empty(h: usize) -> Self {
        assert!(h >= 2, "Markov tables need h >= 2");
        MarkovTable {
            h,
            entries: FxHashMap::default(),
        }
    }

    /// Build a table containing every connected sub-pattern (≤ `h` edges)
    /// of the given workload queries, with exact counts from `graph`.
    /// Serial; see [`MarkovTable::build_parallel`] for the worker-pool
    /// variant.
    pub fn build(graph: &(impl GraphView + Sync), queries: &[QueryGraph], h: usize) -> Self {
        Self::build_parallel(graph, queries, h, 1)
    }

    /// Two-phase parallel construction: (1) dedupe the connected
    /// sub-patterns (≤ `h` edges) of all workload queries into a canonical
    /// work list, (2) count them on up to `parallelism` scoped worker
    /// threads ([`count_patterns`]), then merge into the table. Counts are
    /// exact, so the resulting table is identical at every `parallelism`
    /// (a `parallelism` of 0 or 1 counts inline on the calling thread).
    pub fn build_parallel(
        graph: &(impl GraphView + Sync),
        queries: &[QueryGraph],
        h: usize,
        parallelism: usize,
    ) -> Self {
        assert!(h >= 2, "Markov tables need h >= 2");
        let work = dedupe_subpatterns(queries, h);
        let counts = count_patterns(graph, &work, parallelism);
        let mut entries: FxHashMap<Pattern, u64> = FxHashMap::default();
        entries.extend(work.into_iter().zip(counts));
        MarkovTable { h, entries }
    }

    /// Build a table for a single query (convenience for examples/tests).
    pub fn build_for_query(graph: &(impl GraphView + Sync), query: &QueryGraph, h: usize) -> Self {
        Self::build(graph, std::slice::from_ref(query), h)
    }

    /// Incrementally maintain the table after a graph change: recount
    /// only the entries whose label set intersects `touched` (the labels
    /// a [`ceg_graph::GraphDelta`] inserted or deleted edges under) on
    /// the *post-change* graph; every other entry's count cannot have
    /// moved and carries over untouched. Returns how many entries were
    /// recounted.
    ///
    /// Sound because a pattern's homomorphism count depends only on the
    /// relations its labels name: a delta that never touches those
    /// relations cannot change the count. The invariant is pinned by a
    /// differential test against a from-scratch rebuild on the rebased
    /// graph (`markov::tests::incremental_refresh_matches_rebuild` and
    /// `tests/updates.rs`).
    pub fn refresh_touched(
        &mut self,
        graph: &(impl GraphView + Sync),
        touched: &[LabelId],
        parallelism: usize,
    ) -> usize {
        if touched.is_empty() || self.entries.is_empty() {
            return 0;
        }
        let mut affected: Vec<Pattern> = self
            .entries
            .keys()
            .filter(|p| p.edges().iter().any(|e| touched.contains(&e.label)))
            .cloned()
            .collect();
        // Deterministic work order (the map iterates in hash order).
        affected.sort_unstable();
        let counts = count_patterns(graph, &affected, parallelism);
        let recounted = affected.len();
        for (pat, card) in affected.into_iter().zip(counts) {
            self.entries.insert(pat, card);
        }
        recounted
    }

    /// The table size parameter `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cardinality of a canonical pattern, if stored.
    pub fn card(&self, pattern: &Pattern) -> Option<u64> {
        self.entries.get(pattern).copied()
    }

    /// Cardinality of the sub-query of `query` induced by `mask`, if the
    /// corresponding pattern is stored.
    pub fn card_of_subquery(&self, query: &QueryGraph, mask: EdgeMask) -> Option<u64> {
        if mask.is_empty() {
            return Some(1); // the empty join has one (empty) tuple
        }
        self.card(&Pattern::of_subquery(query, mask))
    }

    /// True if the pattern for `mask` is stored (or computable: empty mask).
    pub fn contains_subquery(&self, query: &QueryGraph, mask: EdgeMask) -> bool {
        self.card_of_subquery(query, mask).is_some()
    }

    /// Insert or overwrite an entry (used by tests and by bound-sketch
    /// partition-local tables).
    pub fn insert(&mut self, pattern: Pattern, card: u64) {
        self.entries.insert(pattern, card);
    }

    /// Iterate entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Pattern, u64)> {
        self.entries.iter().map(|(p, &c)| (p, c))
    }

    /// Approximate memory footprint in bytes (for Table-2-style reporting).
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .keys()
            .map(|p| 24 + p.num_edges() * std::mem::size_of::<ceg_query::QueryEdge>() + 8)
            .sum()
    }
}

/// Dedupe the connected sub-patterns (≤ `max_edges` edges) of `queries`
/// into a canonical work list, in first-appearance order (deterministic in
/// the input).
fn dedupe_subpatterns(queries: &[QueryGraph], max_edges: usize) -> Vec<Pattern> {
    let mut seen: ceg_graph::FxHashSet<Pattern> = ceg_graph::FxHashSet::default();
    let mut work: Vec<Pattern> = Vec::new();
    for q in queries {
        for mask in q.connected_subsets_up_to(max_edges) {
            let pat = Pattern::of_subquery(q, mask);
            if seen.insert(pat.clone()) {
                work.push(pat);
            }
        }
    }
    work
}

/// Exactly count each pattern's homomorphisms in `graph`, on up to
/// `parallelism` scoped worker threads (`std::thread::scope`; 0 or 1 runs
/// inline). Workers claim patterns off a shared atomic cursor — cheap
/// single-edge patterns and expensive `h`-edge ones interleave, so the
/// partition balances itself — and write into disjoint slots, keeping
/// `counts[i]` aligned with `patterns[i]` regardless of schedule. This is
/// the shared parallel path under [`MarkovTable::build_parallel`] and the
/// service registry's incremental catalog growth.
pub fn count_patterns(
    graph: &(impl GraphView + Sync),
    patterns: &[Pattern],
    parallelism: usize,
) -> Vec<u64> {
    count_patterns_budgeted(
        graph,
        patterns,
        parallelism,
        ceg_exec::CountBudget::UNLIMITED,
    )
    .into_iter()
    .map(|c| c.expect("unlimited budget cannot be exhausted"))
    .collect()
}

/// Profiling summary of one catalog fill: how many patterns were
/// counted, where the time went, and the counting kernel's aggregated
/// [`ceg_exec::KernelStats`]. Collected by
/// [`count_patterns_budgeted_stats`]; the estimation service surfaces it
/// through `EXPLAIN_ESTIMATE`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FillStats {
    /// Patterns whose count completed (abandoned patterns excluded).
    pub patterns_counted: u64,
    /// Summed per-pattern fill time in microseconds (CPU-side: across
    /// parallel workers this exceeds the wall-clock fill time).
    pub total_micros: u64,
    /// The single most expensive pattern's fill time in microseconds.
    pub max_pattern_micros: u64,
    /// Kernel profiling counters aggregated over every pattern counted.
    pub kernel: ceg_exec::KernelStats,
}

impl FillStats {
    /// Fold another fill's stats into this one (sums everywhere except
    /// `max_pattern_micros`, which takes the max).
    pub fn absorb(&mut self, other: &FillStats) {
        self.patterns_counted += other.patterns_counted;
        self.total_micros += other.total_micros;
        self.max_pattern_micros = self.max_pattern_micros.max(other.max_pattern_micros);
        self.kernel.absorb(&other.kernel);
    }
}

/// [`count_patterns`] under a [`ceg_exec::CountBudget`] (expansion cap
/// and/or wall-clock deadline, applied per pattern): `counts[i]` is `None`
/// when pattern `i`'s count was abandoned. The estimation service uses the
/// deadline form so a client-bounded request stops counting mid-catalog
/// fill instead of finishing arbitrarily late work nobody will read.
pub fn count_patterns_budgeted(
    graph: &(impl GraphView + Sync),
    patterns: &[Pattern],
    parallelism: usize,
    budget: ceg_exec::CountBudget,
) -> Vec<Option<u64>> {
    count_patterns_budgeted_stats(graph, patterns, parallelism, budget).0
}

/// [`count_patterns_budgeted`] that also reports the fill's
/// [`FillStats`] (per-pattern fill times and aggregated kernel
/// counters).
pub fn count_patterns_budgeted_stats(
    graph: &(impl GraphView + Sync),
    patterns: &[Pattern],
    parallelism: usize,
    budget: ceg_exec::CountBudget,
) -> (Vec<Option<u64>>, FillStats) {
    let count_one = |pat: &Pattern| {
        let pq = pat.to_query();
        let started = std::time::Instant::now();
        let (count, kernel) = ceg_exec::count_with_limit_stats(
            graph,
            &pq,
            &VarConstraints::none(pq.num_vars()),
            budget,
        );
        (count, kernel, started.elapsed().as_micros() as u64)
    };
    if parallelism <= 1 || patterns.len() <= 1 {
        let mut stats = FillStats::default();
        let counts = patterns
            .iter()
            .map(|pat| {
                let (count, kernel, micros) = count_one(pat);
                stats.kernel.absorb(&kernel);
                stats.total_micros += micros;
                stats.max_pattern_micros = stats.max_pattern_micros.max(micros);
                if count.is_some() {
                    stats.patterns_counted += 1;
                }
                count
            })
            .collect();
        return (counts, stats);
    }
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    let counts: Vec<AtomicU64> = (0..patterns.len()).map(|_| AtomicU64::new(0)).collect();
    let done: Vec<AtomicBool> = (0..patterns.len())
        .map(|_| AtomicBool::new(false))
        .collect();
    let cursor = AtomicUsize::new(0);
    // LockRank::Metrics: leaf bookkeeping — merged into once per worker
    // at exit, never held while counting. (`ceg_graph::sync` is the
    // physical home of `ceg_core::sync`; this crate sits below ceg-core
    // in the dependency graph.)
    let stats = ceg_graph::sync::OrderedMutex::new(
        ceg_graph::sync::LockRank::Metrics,
        FillStats::default(),
    );
    std::thread::scope(|scope| {
        for _ in 0..parallelism.min(patterns.len()) {
            scope.spawn(|| {
                // Workers accumulate locally and merge once at exit, so
                // the stats mutex is off the counting path.
                let mut local = FillStats::default();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(pat) = patterns.get(i) else { break };
                    let (count, kernel, micros) = count_one(pat);
                    local.kernel.absorb(&kernel);
                    local.total_micros += micros;
                    local.max_pattern_micros = local.max_pattern_micros.max(micros);
                    if let Some(c) = count {
                        local.patterns_counted += 1;
                        counts[i].store(c, Ordering::Relaxed);
                        done[i].store(true, Ordering::Relaxed);
                    }
                }
                stats.lock().absorb(&local);
            });
        }
    });
    let counts = counts
        .into_iter()
        .zip(done)
        .map(|(c, d)| d.into_inner().then(|| c.into_inner()))
        .collect();
    (counts, stats.into_inner())
}

/// Default worker count for catalog construction when the caller has no
/// explicit `--jobs` knob: the machine's available parallelism, capped so
/// a big server does not oversubscribe itself counting statistics.
pub fn default_build_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    /// Paper-style toy dataset: labels A=0, B=1, C=2 forming paths.
    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(10);
        // A edges
        b.add_edge(0, 2, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(3, 4, 0);
        b.add_edge(5, 4, 0);
        // B edges (|B| = 2)
        b.add_edge(2, 6, 1);
        b.add_edge(4, 7, 1);
        // C edges
        b.add_edge(6, 8, 2);
        b.add_edge(6, 9, 2);
        b.add_edge(7, 8, 2);
        b.build()
    }

    #[test]
    fn entries_match_executor_counts() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]); // A -> B -> C
        let t = MarkovTable::build_for_query(&g, &q, 2);
        for (p, c) in t.iter() {
            assert_eq!(c, count(&g, &p.to_query()), "pattern {p}");
        }
    }

    #[test]
    fn h2_table_of_3path_has_expected_patterns() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        // patterns: A, B, C, A->B, B->C  (5 entries)
        assert_eq!(t.len(), 5);
        assert_eq!(t.h(), 2);
    }

    #[test]
    fn paper_markov_example_values() {
        // |B| = 2, |A->B| = 4, |B->C| = 3 on the toy graph (mirrors Table 1).
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        let b_mask = EdgeMask::single(1);
        let ab = EdgeMask::from_bits(0b011);
        let bc = EdgeMask::from_bits(0b110);
        assert_eq!(t.card_of_subquery(&q, b_mask), Some(2));
        assert_eq!(t.card_of_subquery(&q, ab), Some(4));
        assert_eq!(t.card_of_subquery(&q, bc), Some(3));
    }

    #[test]
    fn empty_mask_has_unit_cardinality() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        assert_eq!(t.card_of_subquery(&q, EdgeMask::empty()), Some(1));
    }

    #[test]
    fn unknown_pattern_is_none() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        // the full 3-path is not stored with h = 2
        assert_eq!(t.card_of_subquery(&q, q.full_mask()), None);
    }

    #[test]
    fn h3_table_stores_full_3path() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let t = MarkovTable::build_for_query(&g, &q, 3);
        let c = t.card_of_subquery(&q, q.full_mask());
        assert_eq!(c, Some(count(&g, &q)));
    }

    #[test]
    fn shared_patterns_are_deduplicated() {
        let g = toy();
        let q1 = templates::path(2, &[0, 1]);
        let q2 = templates::path(2, &[0, 1]);
        let t = MarkovTable::build(&g, &[q1, q2], 2);
        assert_eq!(t.len(), 3); // A, B, A->B
    }

    #[test]
    fn approx_bytes_is_positive() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let t = MarkovTable::build_for_query(&g, &q, 2);
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn parallel_build_matches_serial_at_any_parallelism() {
        let g = toy();
        let queries = [
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 0, 1]),
            templates::cycle(3, &[0, 1, 2]),
        ];
        let serial = MarkovTable::build(&g, &queries, 3);
        for parallelism in [0, 1, 2, 4, 16] {
            let par = MarkovTable::build_parallel(&g, &queries, 3, parallelism);
            assert_eq!(par.len(), serial.len(), "parallelism={parallelism}");
            assert_eq!(par.h(), serial.h());
            for (p, c) in serial.iter() {
                assert_eq!(par.card(p), Some(c), "pattern {p} at {parallelism}");
            }
        }
    }

    #[test]
    fn count_patterns_aligns_counts_with_input_order() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let pats: Vec<Pattern> = q
            .connected_subsets_up_to(2)
            .into_iter()
            .map(|m| Pattern::of_subquery(&q, m))
            .collect();
        let serial = count_patterns(&g, &pats, 1);
        let par = count_patterns(&g, &pats, 4);
        assert_eq!(serial, par);
        for (pat, &c) in pats.iter().zip(&serial) {
            assert_eq!(c, count(&g, &pat.to_query()), "pattern {pat}");
        }
    }

    #[test]
    fn budgeted_fill_stats_cover_all_patterns() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let pats: Vec<Pattern> = q
            .connected_subsets_up_to(2)
            .into_iter()
            .map(|m| Pattern::of_subquery(&q, m))
            .collect();
        for parallelism in [1, 4] {
            let (counts, stats) = count_patterns_budgeted_stats(
                &g,
                &pats,
                parallelism,
                ceg_exec::CountBudget::UNLIMITED,
            );
            assert!(counts.iter().all(|c| c.is_some()));
            assert_eq!(stats.patterns_counted, pats.len() as u64);
            assert!(stats.kernel.candidates > 0, "kernel visited candidates");
            assert!(stats.max_pattern_micros <= stats.total_micros);
            assert_eq!(
                counts,
                count_patterns_budgeted(&g, &pats, parallelism, ceg_exec::CountBudget::UNLIMITED,)
            );
        }
        // An exhausted budget counts nothing but still reports the work.
        let (counts, stats) =
            count_patterns_budgeted_stats(&g, &pats, 1, ceg_exec::CountBudget::new(0));
        assert!(counts.iter().all(|c| c.is_none()));
        assert_eq!(stats.patterns_counted, 0);
    }

    #[test]
    fn default_parallelism_is_sane() {
        let p = default_build_parallelism();
        assert!((1..=8).contains(&p));
    }

    /// Serialize a table to its canonical persisted form (sorted entry
    /// lines), the strictest equality available for two tables.
    fn bytes_of(t: &MarkovTable) -> Vec<u8> {
        let mut buf = Vec::new();
        crate::io::write_markov(t, &mut buf).unwrap();
        buf
    }

    #[test]
    fn incremental_refresh_matches_rebuild() {
        use ceg_graph::GraphDelta;
        let g = toy();
        let queries = [
            templates::path(3, &[0, 1, 2]),
            templates::star(3, &[0, 0, 1]),
            templates::cycle(3, &[0, 1, 2]),
        ];
        let mut table = MarkovTable::build(&g, &queries, 3);
        // Touch labels 0 and 2, leave label 1 alone.
        let mut d = GraphDelta::new();
        d.add_edge(1, 4, 0);
        d.del_edge(6, 9, 2);
        d.add_edge(5, 6, 2);
        let rebased = g.rebase(&d);
        let recounted = table.refresh_touched(&rebased, &d.touched_labels(), 1);
        assert!(recounted > 0);
        let rebuilt = MarkovTable::build(&rebased, &queries, 3);
        assert_eq!(bytes_of(&table), bytes_of(&rebuilt));
    }

    #[test]
    fn refresh_skips_untouched_labels() {
        let g = toy();
        let q = templates::path(3, &[0, 1, 2]);
        let mut table = MarkovTable::build_for_query(&g, &q, 2);
        // patterns: A, B, C, A->B, B->C; only label 1 (B) is touched, so
        // B, A->B and B->C are recounted but A and C carry over.
        let recounted = table.refresh_touched(&g, &[1], 1);
        assert_eq!(recounted, 3);
        assert_eq!(table.refresh_touched(&g, &[], 1), 0);
        assert_eq!(table.refresh_touched(&g, &[7], 1), 0);
    }

    #[test]
    fn refresh_on_overlay_matches_refresh_on_rebased() {
        use ceg_graph::{GraphDelta, OverlayGraph};
        let g = toy();
        let queries = [templates::path(3, &[0, 1, 2]), templates::star(2, &[1, 2])];
        let base_table = MarkovTable::build(&g, &queries, 3);
        let mut d = GraphDelta::new();
        d.add_edge(2, 7, 1);
        d.del_edge(4, 7, 1);
        d.add_edge(7, 9, 2);
        let rebased = g.rebase(&d);
        let mut via_rebase = base_table.clone();
        via_rebase.refresh_touched(&rebased, &d.touched_labels(), 1);
        let mut via_overlay = base_table.clone();
        via_overlay.refresh_touched(&OverlayGraph::new(&g, &d), &d.touched_labels(), 2);
        assert_eq!(bytes_of(&via_rebase), bytes_of(&via_overlay));
        assert_eq!(
            bytes_of(&via_rebase),
            bytes_of(&MarkovTable::build(&rebased, &queries, 3))
        );
    }
}

/// Sampled (approximate) construction — how the graph-catalogue systems
/// the paper builds on construct their statistics at scale: instead of
/// exact counts, each pattern's cardinality is estimated with
/// Horvitz–Thompson-weighted random walks from its smallest relation.
/// `walks` controls the accuracy/time trade-off.
impl MarkovTable {
    /// Like [`MarkovTable::build`] but with sampled counts.
    pub fn build_sampled(
        graph: &LabeledGraph,
        queries: &[QueryGraph],
        h: usize,
        walks: u32,
        seed: u64,
    ) -> Self {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        assert!(h >= 2, "Markov tables need h >= 2");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries: FxHashMap<Pattern, u64> = FxHashMap::default();
        for pat in dedupe_subpatterns(queries, h) {
            let pq = pat.to_query();
            let est = if pq.num_edges() == 1 {
                graph.label_count(pq.edge(0).label) as f64 // exact for free
            } else {
                sample_pattern_count(graph, &pq, walks, &mut rng)
            };
            entries.insert(pat, est.round() as u64);
        }
        MarkovTable { h, entries }
    }
}

/// HT random-walk estimate of a small pattern's homomorphism count.
fn sample_pattern_count(
    graph: &LabeledGraph,
    query: &QueryGraph,
    walks: u32,
    rng: &mut rand::rngs::StdRng,
) -> f64 {
    use rand::Rng;
    // walk order: start at the smallest relation, extend adjacently
    let m = query.num_edges();
    let start = (0..m)
        .min_by_key(|&i| graph.label_count(query.edge(i).label))
        .expect("non-empty pattern");
    let mut order = vec![start];
    let e0 = query.edge(start);
    let mut bound: u32 = (1 << e0.src) | (1 << e0.dst);
    let mut used = 1u32 << start;
    while order.len() < m {
        let next = (0..m)
            .find(|&i| {
                used & (1 << i) == 0 && {
                    let e = query.edge(i);
                    bound & ((1 << e.src) | (1 << e.dst)) != 0
                }
            })
            .expect("patterns are connected");
        let e = query.edge(next);
        bound |= (1 << e.src) | (1 << e.dst);
        used |= 1 << next;
        order.push(next);
    }
    let start_edges: Vec<(u32, u32)> = graph.edges(query.edge(start).label).collect();
    if start_edges.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for _ in 0..walks {
        let (s0, d0) = start_edges[rng.random_range(0..start_edges.len())];
        let mut binding = vec![0u32; query.num_vars() as usize];
        let mut bset = 0u32;
        let e = query.edge(start);
        if e.src == e.dst && s0 != d0 {
            continue;
        }
        binding[e.src as usize] = s0;
        binding[e.dst as usize] = d0;
        bset |= (1 << e.src) | (1 << e.dst);
        let mut w = start_edges.len() as f64;
        let mut dead = false;
        for &qi in &order[1..] {
            let e = query.edge(qi);
            let (sb, db) = (bset & (1 << e.src) != 0, bset & (1 << e.dst) != 0);
            match (sb, db) {
                (true, true) => {
                    if !graph.has_edge(binding[e.src as usize], binding[e.dst as usize], e.label) {
                        dead = true;
                        break;
                    }
                }
                (true, false) => {
                    let c = graph.out_neighbors(binding[e.src as usize], e.label);
                    if c.is_empty() {
                        dead = true;
                        break;
                    }
                    let pick = c[rng.random_range(0..c.len())];
                    w *= c.len() as f64;
                    binding[e.dst as usize] = pick;
                    bset |= 1 << e.dst;
                }
                (false, true) => {
                    let c = graph.in_neighbors(binding[e.dst as usize], e.label);
                    if c.is_empty() {
                        dead = true;
                        break;
                    }
                    let pick = c[rng.random_range(0..c.len())];
                    w *= c.len() as f64;
                    binding[e.src as usize] = pick;
                    bset |= 1 << e.src;
                }
                (false, false) => unreachable!("connected walk order"),
            }
        }
        if !dead {
            total += w;
        }
    }
    total / walks as f64
}

#[cfg(test)]
mod sampled_tests {
    use super::*;
    use ceg_exec::count;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(60);
        for i in 0..20u32 {
            b.add_edge(i, 20 + i, 0);
            b.add_edge(20 + i, 40 + (i % 10), 1);
        }
        b.build()
    }

    #[test]
    fn sampled_counts_approach_exact() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let exact = MarkovTable::build_for_query(&g, &q, 2);
        let sampled = MarkovTable::build_sampled(&g, std::slice::from_ref(&q), 2, 4000, 1);
        assert_eq!(sampled.len(), exact.len());
        for (p, c) in exact.iter() {
            let s = sampled.card(p).unwrap() as f64;
            let c = c as f64;
            assert!(
                (s - c).abs() <= (0.2 * c).max(2.0),
                "pattern {p}: sampled {s} vs exact {c}"
            );
        }
    }

    #[test]
    fn single_edge_entries_are_exact() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let sampled = MarkovTable::build_sampled(&g, std::slice::from_ref(&q), 2, 10, 2);
        let p0 = Pattern::of_subquery(&q, EdgeMask::single(0));
        assert_eq!(sampled.card(&p0), Some(count(&g, &p0.to_query())));
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let a = MarkovTable::build_sampled(&g, std::slice::from_ref(&q), 2, 100, 3);
        let b = MarkovTable::build_sampled(&g, std::slice::from_ref(&q), 2, 100, 3);
        for (p, c) in a.iter() {
            assert_eq!(b.card(p), Some(c));
        }
    }
}
