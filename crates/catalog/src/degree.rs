//! Maximum-degree statistics for the pessimistic estimators.
//!
//! MOLP (Section 5.1) consumes `deg(X, Y, R_i)` — the maximum, over values
//! `v` of attributes `X`, of the number of distinct `Y`-tuples of `R_i`
//! containing `v` — for every `X ⊆ Y ⊆ A_i`. We store these for every base
//! relation, and (Section 5.1.1) for the results of 2-edge joins, which are
//! treated as additional ternary relations so that MOLP uses a strict
//! superset of the statistics available to the optimistic estimators.

use ceg_exec::{enumerate, VarConstraints};
use ceg_graph::stats::{all_label_stats, LabelStats};
use ceg_graph::{FxHashMap, LabelId, LabeledGraph};
use ceg_query::{Pattern, QueryGraph, VarId};

/// Attribute-subset mask within a small pattern (≤ 8 variables).
pub type AttrMaskSmall = u8;

/// Degree statistics of one small-join result, indexed by canonical
/// pattern variables: `deg[(x, y)]` = `deg(X, Y, J)` for attribute masks
/// `x ⊆ y`.
#[derive(Debug, Clone)]
pub struct JoinStats {
    num_vars: VarId,
    /// `|J|` — the join's cardinality.
    cardinality: u64,
    deg: FxHashMap<(AttrMaskSmall, AttrMaskSmall), u64>,
}

impl JoinStats {
    /// Compute the full degree table of `pattern` by enumerating its
    /// matches in `graph`. Returns `None` when the number of matches
    /// exceeds `budget` (the statistic is then simply unavailable, as with
    /// any bounded statistics-collection pass).
    pub fn compute(graph: &LabeledGraph, pattern: &Pattern, budget: u64) -> Option<JoinStats> {
        let q = pattern.to_query();
        let k = q.num_vars();
        assert!(k <= 4, "join statistics limited to small patterns");
        let mut matches: Vec<[u32; 4]> = Vec::new();
        let complete = enumerate(graph, &q, &VarConstraints::none(k), &mut |b| {
            let mut row = [0u32; 4];
            row[..b.len()].copy_from_slice(b);
            matches.push(row);
            (matches.len() as u64) < budget
        });
        if !complete {
            return None;
        }

        let full: AttrMaskSmall = ((1u16 << k) - 1) as AttrMaskSmall;
        let mut deg: FxHashMap<(AttrMaskSmall, AttrMaskSmall), u64> = FxHashMap::default();
        let project = |row: &[u32; 4], mask: AttrMaskSmall| -> u128 {
            let mut packed: u128 = 0;
            for v in 0..k {
                if mask & (1 << v) != 0 {
                    packed = (packed << 32) | row[v as usize] as u128;
                }
            }
            packed | ((mask as u128) << 120) // disambiguate masks
        };

        for y in 1..=full {
            // distinct Y-projections
            let mut proj: Vec<u128> = matches.iter().map(|r| project(r, y)).collect();
            proj.sort_unstable();
            proj.dedup();
            deg.insert((0, y), proj.len() as u64);

            // per-X-value maxima, for every proper non-empty X ⊂ Y
            let mut x = (y - 1) & y;
            while x != 0 {
                let mut groups: FxHashMap<u128, u64> = FxHashMap::default();
                // group the *distinct* Y-tuples by X-value
                let mut tuples: Vec<(u128, u128)> = matches
                    .iter()
                    .map(|r| (project(r, y), project(r, x)))
                    .collect();
                tuples.sort_unstable();
                tuples.dedup();
                for (_, xv) in &tuples {
                    *groups.entry(*xv).or_insert(0) += 1;
                }
                let m = groups.values().copied().max().unwrap_or(0);
                deg.insert((x, y), m);
                x = (x - 1) & y;
            }
        }

        Some(JoinStats {
            num_vars: k,
            cardinality: matches.len() as u64,
            deg,
        })
    }

    /// `|J|`.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Number of canonical variables.
    pub fn num_vars(&self) -> VarId {
        self.num_vars
    }

    /// `deg(X, Y, J)` for attribute masks over the canonical variables.
    /// `x = 0` yields `|π_Y J|`; `x == y` is the trivial degree 1.
    pub fn deg(&self, x: AttrMaskSmall, y: AttrMaskSmall) -> Option<u64> {
        if x == y {
            return Some(1);
        }
        self.deg.get(&(x, y)).copied()
    }

    /// All stored `(x, y, deg)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (AttrMaskSmall, AttrMaskSmall, u64)> + '_ {
        self.deg.iter().map(|(&(x, y), &d)| (x, y, d))
    }
}

/// Degree statistics of every base relation, plus (optionally) of the
/// 2-edge joins appearing in a workload.
#[derive(Debug, Clone)]
pub struct DegreeStats {
    labels: Vec<LabelStats>,
    joins: FxHashMap<Pattern, JoinStats>,
}

impl DegreeStats {
    /// Base-relation statistics only.
    pub fn build_base(graph: &LabeledGraph) -> Self {
        DegreeStats {
            labels: all_label_stats(graph),
            joins: FxHashMap::default(),
        }
    }

    /// Base statistics plus degree statistics of every connected 2-edge
    /// sub-join of the workload queries (Section 5.1.1). `budget` caps the
    /// per-join enumeration work.
    pub fn build_with_joins(graph: &LabeledGraph, queries: &[QueryGraph], budget: u64) -> Self {
        let mut stats = Self::build_base(graph);
        for q in queries {
            for mask in q.connected_subsets_up_to(2) {
                if mask.len() != 2 {
                    continue;
                }
                let pat = Pattern::of_subquery(q, mask);
                if stats.joins.contains_key(&pat) {
                    continue;
                }
                if let Some(js) = JoinStats::compute(graph, &pat, budget) {
                    stats.joins.insert(pat, js);
                }
            }
        }
        stats
    }

    /// Statistics of base relation `l` (panics on unknown label).
    pub fn label(&self, l: LabelId) -> &LabelStats {
        &self.labels[l as usize]
    }

    /// Statistics of base relation `l`, if the label exists.
    pub fn label_opt(&self, l: LabelId) -> Option<&LabelStats> {
        self.labels.get(l as usize)
    }

    /// Join statistics of a canonical 2-edge pattern, if collected.
    pub fn join(&self, pattern: &Pattern) -> Option<&JoinStats> {
        self.joins.get(pattern)
    }

    /// Number of relations.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Number of stored join-statistics entries.
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    /// Two-label graph: 0 -A-> {1,2,3}, {1,2} -B-> 4.
    fn toy() -> LabeledGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(0, 3, 0);
        b.add_edge(1, 4, 1);
        b.add_edge(2, 4, 1);
        b.build()
    }

    #[test]
    fn base_stats_cover_all_labels() {
        let s = DegreeStats::build_base(&toy());
        assert_eq!(s.num_labels(), 2);
        assert_eq!(s.label(0).cardinality, 3);
        assert_eq!(s.label(0).max_out_degree, 3);
        assert_eq!(s.label(1).max_in_degree, 2);
    }

    #[test]
    fn join_stats_cardinality() {
        // join A(a0,a1) ⋈ B(a1,a2): matches (0,1,4), (0,2,4) → |J| = 2
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let pat = Pattern::of_subquery(&q, q.full_mask());
        let js = JoinStats::compute(&g, &pat, 1 << 20).unwrap();
        assert_eq!(js.cardinality(), 2);
        assert_eq!(js.num_vars(), 3);
    }

    #[test]
    fn join_degree_values_are_exact() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let (pat, map) = Pattern::canonical_with_map(q.edges());
        let js = JoinStats::compute(&g, &pat, 1 << 20).unwrap();
        let canon = |v: VarId| map.iter().find(|&&(o, _)| o == v).unwrap().1;
        let m = |vs: &[VarId]| -> u8 { vs.iter().map(|&v| 1u8 << canon(v)).sum() };
        // matches in original vars: (a0,a1,a2) ∈ {(0,1,4),(0,2,4)}
        // distinct a0 values: {0} → |π_{a0}| = 1
        assert_eq!(js.deg(0, m(&[0])), Some(1));
        // distinct a1 values: {1,2} → 2
        assert_eq!(js.deg(0, m(&[1])), Some(2));
        // deg(a0 → {a0,a1}): vertex 0 pairs with two a1 values → 2
        assert_eq!(js.deg(m(&[0]), m(&[0, 1])), Some(2));
        // deg(a2 → full): value 4 appears in both matches → 2
        assert_eq!(js.deg(m(&[2]), m(&[0, 1, 2])), Some(2));
        // full-mask projection = cardinality
        assert_eq!(js.deg(0, m(&[0, 1, 2])), Some(2));
    }

    #[test]
    fn trivial_degree_is_one() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let pat = Pattern::of_subquery(&q, q.full_mask());
        let js = JoinStats::compute(&g, &pat, 1 << 20).unwrap();
        assert_eq!(js.deg(0b11, 0b11), Some(1));
    }

    #[test]
    fn budget_exceeded_returns_none() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let pat = Pattern::of_subquery(&q, q.full_mask());
        assert!(JoinStats::compute(&g, &pat, 1).is_none());
    }

    #[test]
    fn build_with_joins_collects_subjoins() {
        let g = toy();
        let q = templates::path(2, &[0, 1]);
        let s = DegreeStats::build_with_joins(&g, std::slice::from_ref(&q), 1 << 20);
        assert_eq!(s.num_joins(), 1);
        let pat = Pattern::of_subquery(&q, q.full_mask());
        assert!(s.join(&pat).is_some());
    }
}
