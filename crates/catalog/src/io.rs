//! Plain-text persistence for Markov tables.
//!
//! Statistics are expensive to build (they count patterns in the data);
//! systems persist them alongside the database. Format: a header line
//! `markov h=<h>`, then one entry per line:
//!
//! ```text
//! <cardinality> <num_edges> <src> <dst> <label> [<src> <dst> <label> …]
//! ```

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use ceg_query::{Pattern, QueryEdge};

use crate::markov::MarkovTable;

/// Serialize a Markov table.
pub fn write_markov<W: Write>(table: &MarkovTable, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "markov h={}", table.h())?;
    let mut entries: Vec<(&Pattern, u64)> = table.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    for (p, c) in entries {
        write!(w, "{} {}", c, p.num_edges())?;
        for e in p.edges() {
            write!(w, " {} {} {}", e.src, e.dst, e.label)?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Parse a Markov table written by [`write_markov`].
pub fn read_markov<R: BufRead>(reader: R) -> io::Result<MarkovTable> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| bad("missing header"))??;
    let h: usize = header
        .strip_prefix("markov h=")
        .ok_or_else(|| bad("bad header"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad h"))?;
    let mut table = MarkovTable::empty(h);
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let card: u64 = next_num(&mut it)?;
        let m: usize = next_num(&mut it)? as usize;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let s: u64 = next_num(&mut it)?;
            let d: u64 = next_num(&mut it)?;
            let l: u64 = next_num(&mut it)?;
            edges.push(QueryEdge::new(s as u8, d as u8, l as u16));
        }
        table.insert(Pattern::canonical(&edges), card);
    }
    Ok(table)
}

fn next_num(it: &mut std::str::SplitWhitespace<'_>) -> io::Result<u64> {
    it.next()
        .ok_or_else(|| bad("truncated entry"))?
        .parse()
        .map_err(|_| bad("not a number"))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Save to a file path.
pub fn save_markov(table: &MarkovTable, path: impl AsRef<Path>) -> io::Result<()> {
    write_markov(table, std::fs::File::create(path)?)
}

/// Load from a file path.
pub fn load_markov(path: impl AsRef<Path>) -> io::Result<MarkovTable> {
    read_markov(io::BufReader::new(std::fs::File::open(path)?))
}

// ---------------------------------------------------------------------------
// Binary snapshots: graph + catalog + epoch in one `.cegsnap` file.
// ---------------------------------------------------------------------------

use ceg_graph::snapshot::{
    decode_epoch, decode_graph, encode_epoch, encode_graph, put_u16, put_u64, PayloadReader,
    SnapshotReader, SnapshotWriter, TAG_EPOCH, TAG_GRAPH, TAG_MARKOV,
};
use ceg_graph::LabeledGraph;

/// Everything a service dataset needs to come back after a restart.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The committed graph (overlay already folded in by the writer).
    pub graph: LabeledGraph,
    /// The Markov catalog, byte-identical to the persisted original.
    pub markov: MarkovTable,
    /// The dataset epoch at snapshot time.
    pub epoch: u64,
}

/// Encode a Markov table as a `MRKV` payload, entries sorted by pattern
/// so the encoding (like [`write_markov`]) is canonical:
///
/// ```text
/// u64 h, u64 count
/// per entry: u64 cardinality, u16 num_edges,
///            per edge: u8 src, u8 dst, u16 label
/// ```
pub fn encode_markov(table: &MarkovTable) -> Vec<u8> {
    let mut entries: Vec<(&Pattern, u64)> = table.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut buf = Vec::new();
    put_u64(&mut buf, table.h() as u64);
    put_u64(&mut buf, entries.len() as u64);
    for (p, c) in entries {
        put_u64(&mut buf, c);
        put_u16(&mut buf, p.num_edges() as u16);
        for e in p.edges() {
            buf.push(e.src);
            buf.push(e.dst);
            put_u16(&mut buf, e.label);
        }
    }
    buf
}

fn bad_snap(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Decode a `MRKV` payload. Patterns are re-canonicalized on the way in,
/// so even a hand-edited payload cannot plant a non-canonical key; every
/// structural violation is an error, never a panic.
///
/// Acceptance mirrors what [`encode_markov`] can produce: any `h ≥ 2`
/// (the [`MarkovTable::empty`] precondition — there is no upper bound at
/// write time, so none at read time either) and any per-entry edge
/// count the payload actually holds; the one hard structural cap is the
/// 8-variable canonicalization ceiling, which would otherwise panic.
pub fn decode_markov(payload: &[u8]) -> io::Result<MarkovTable> {
    let mut r = PayloadReader::new(payload);
    let h = r.u64("markov h")?;
    if h < 2 {
        return Err(bad_snap(format!("markov h={h} out of range (h >= 2)")));
    }
    let count = r.count("markov entry count", payload.len())?;
    let mut table = MarkovTable::empty(h.min(usize::MAX as u64) as usize);
    for i in 0..count {
        let card = r.u64("entry cardinality")?;
        let m = r.u16("entry edge count")? as usize;
        if m == 0 {
            return Err(bad_snap(format!("markov entry {i}: zero-edge pattern")));
        }
        let mut edges = Vec::with_capacity(m);
        let mut vars: Vec<u8> = Vec::new();
        for _ in 0..m {
            let src = r.u8("edge src")?;
            let dst = r.u8("edge dst")?;
            let label = r.u16("edge label")?;
            for v in [src, dst] {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            edges.push(QueryEdge::new(src, dst, label));
        }
        // `Pattern::canonical` asserts on > 8 variables; turn that into
        // a decode error up front.
        if vars.len() > 8 {
            return Err(bad_snap(format!(
                "markov entry {i}: pattern has {} variables (limit 8)",
                vars.len()
            )));
        }
        table.insert(Pattern::canonical(&edges), card);
    }
    if !r.is_exhausted() {
        return Err(bad_snap(format!(
            "markov payload has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(table)
}

/// Write a full `.cegsnap` service snapshot: epoch, graph (raw CSR
/// relations) and Markov catalog, each as a checksummed section of the
/// versioned container (`ceg_graph::snapshot`). Restoring with
/// [`read_snapshot`] skips text parsing and catalog construction — the
/// cold-start cost a server pays today.
///
/// The write is **atomic**: bytes go to a unique temp file next to the
/// target, are synced to disk, and are renamed over `path` only once
/// complete — a crash, disk-full, or concurrent snapshot can never
/// leave a truncated or interleaved file where a good snapshot used to
/// be ([`ceg_graph::snapshot::atomic_write`]).
pub fn write_snapshot(
    path: impl AsRef<Path>,
    graph: &LabeledGraph,
    table: &MarkovTable,
    epoch: u64,
) -> io::Result<()> {
    write_snapshot_with(
        &ceg_graph::vfs::OsStorage,
        path.as_ref(),
        graph,
        table,
        epoch,
    )
}

/// [`write_snapshot`] through an explicit [`ceg_graph::vfs::Storage`] —
/// the fault-injection seam: the service's durability layer passes its
/// storage here so crash tests can kill the snapshot write at every
/// create/write/sync/rename step.
pub fn write_snapshot_with(
    storage: &dyn ceg_graph::vfs::Storage,
    path: &Path,
    graph: &LabeledGraph,
    table: &MarkovTable,
    epoch: u64,
) -> io::Result<()> {
    ceg_graph::snapshot::atomic_write_with(storage, path, |f| {
        let mut w = SnapshotWriter::new(f)?;
        w.write_section(TAG_EPOCH, &encode_epoch(epoch))?;
        w.write_section(TAG_GRAPH, &encode_graph(graph))?;
        w.write_section(TAG_MARKOV, &encode_markov(table))?;
        w.finish()?;
        Ok(())
    })
}

/// Read a full service snapshot back. Unknown sections are skipped
/// (forward compatibility); a missing graph, catalog or epoch section —
/// and any corruption or truncation — is an `InvalidData` error.
pub fn read_snapshot(path: impl AsRef<Path>) -> io::Result<Snapshot> {
    read_snapshot_with(&ceg_graph::vfs::OsStorage, path.as_ref())
}

/// [`read_snapshot`] through an explicit [`ceg_graph::vfs::Storage`]
/// (recovery reads the snapshot through the same seam it was written
/// through).
pub fn read_snapshot_with(
    storage: &dyn ceg_graph::vfs::Storage,
    path: &Path,
) -> io::Result<Snapshot> {
    let bytes = storage.read(path)?;
    let mut r = SnapshotReader::new(&bytes[..])?;
    let mut graph = None;
    let mut markov = None;
    let mut epoch = None;
    while let Some((tag, payload)) = r.next_section()? {
        match tag {
            TAG_GRAPH => graph = Some(decode_graph(&payload)?),
            TAG_MARKOV => markov = Some(decode_markov(&payload)?),
            TAG_EPOCH => epoch = Some(decode_epoch(&payload)?),
            _ => {} // unknown section: skip
        }
    }
    Ok(Snapshot {
        graph: graph.ok_or_else(|| bad_snap("snapshot has no graph section"))?,
        markov: markov.ok_or_else(|| bad_snap("snapshot has no markov section"))?,
        epoch: epoch.ok_or_else(|| bad_snap("snapshot has no epoch section"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn table() -> MarkovTable {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        let g = b.build();
        let q = templates::path(2, &[0, 1]);
        MarkovTable::build_for_query(&g, &q, 2)
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let mut buf = Vec::new();
        write_markov(&t, &mut buf).unwrap();
        let t2 = read_markov(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t2.h(), t.h());
        assert_eq!(t2.len(), t.len());
        for (p, c) in t.iter() {
            assert_eq!(t2.card(p), Some(c), "{p}");
        }
    }

    #[test]
    fn bad_header_is_error() {
        let err = read_markov(io::BufReader::new("nope\n".as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_entry_is_error() {
        let text = "markov h=2\n5 2 0 1\n";
        assert!(read_markov(io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = MarkovTable::empty(3);
        let mut buf = Vec::new();
        write_markov(&t, &mut buf).unwrap();
        let t2 = read_markov(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t2.h(), 3);
        assert!(t2.is_empty());
    }

    /// Canonical persisted-text form — the strictest table equality.
    fn text_bytes(t: &MarkovTable) -> Vec<u8> {
        let mut buf = Vec::new();
        write_markov(t, &mut buf).unwrap();
        buf
    }

    #[test]
    fn markov_payload_roundtrips_byte_identically() {
        let t = table();
        let t2 = decode_markov(&encode_markov(&t)).unwrap();
        assert_eq!(text_bytes(&t), text_bytes(&t2));
        // And the binary encoding itself is canonical (sorted entries).
        assert_eq!(encode_markov(&t), encode_markov(&t2));
    }

    #[test]
    fn corrupt_markov_payloads_are_rejected() {
        let good = encode_markov(&table());
        for cut in 0..good.len() {
            assert!(decode_markov(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = good.clone();
        long.push(0);
        assert!(decode_markov(&long).is_err());
        // h < 2 violates the MarkovTable precondition...
        let mut bad_h = good.clone();
        bad_h[0] = 1;
        assert!(decode_markov(&bad_h).is_err());
        // ...but any h the writer could run with restores fine — the
        // reader accepts everything the writer can produce.
        bad_h[0] = 99;
        assert_eq!(decode_markov(&bad_h).unwrap().h(), 99);
    }

    #[test]
    fn full_snapshot_roundtrips_graph_catalog_and_epoch() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        let g = b.build();
        let t = MarkovTable::build_for_query(&g, &templates::path(2, &[0, 1]), 2);
        let path =
            std::env::temp_dir().join(format!("ceg-cat-snap-{}.cegsnap", std::process::id()));
        write_snapshot(&path, &g, &t, 17).unwrap();

        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.epoch, 17);
        assert_eq!(snap.graph.num_edges(), g.num_edges());
        for e in g.all_edges() {
            assert!(snap.graph.has_edge(e.src, e.dst, e.label), "{e:?}");
        }
        assert_eq!(text_bytes(&snap.markov), text_bytes(&t));

        // The graph-only reader of `ceg-graph::io` reads the same file,
        // skipping the catalog section it does not know.
        let (g2, epoch) = ceg_graph::io::read_snapshot(&path).unwrap();
        assert_eq!(epoch, 17);
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_without_markov_section_is_an_error_here() {
        let g = GraphBuilder::new(2).build();
        let path =
            std::env::temp_dir().join(format!("ceg-cat-graphonly-{}.cegsnap", std::process::id()));
        ceg_graph::io::write_snapshot(&path, &g, 0).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(err.to_string().contains("no markov section"), "{err}");
    }
}
