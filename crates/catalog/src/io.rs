//! Plain-text persistence for Markov tables.
//!
//! Statistics are expensive to build (they count patterns in the data);
//! systems persist them alongside the database. Format: a header line
//! `markov h=<h>`, then one entry per line:
//!
//! ```text
//! <cardinality> <num_edges> <src> <dst> <label> [<src> <dst> <label> …]
//! ```

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use ceg_query::{Pattern, QueryEdge};

use crate::markov::MarkovTable;

/// Serialize a Markov table.
pub fn write_markov<W: Write>(table: &MarkovTable, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "markov h={}", table.h())?;
    let mut entries: Vec<(&Pattern, u64)> = table.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    for (p, c) in entries {
        write!(w, "{} {}", c, p.num_edges())?;
        for e in p.edges() {
            write!(w, " {} {} {}", e.src, e.dst, e.label)?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Parse a Markov table written by [`write_markov`].
pub fn read_markov<R: BufRead>(reader: R) -> io::Result<MarkovTable> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| bad("missing header"))??;
    let h: usize = header
        .strip_prefix("markov h=")
        .ok_or_else(|| bad("bad header"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad h"))?;
    let mut table = MarkovTable::empty(h);
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let card: u64 = next_num(&mut it)?;
        let m: usize = next_num(&mut it)? as usize;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let s: u64 = next_num(&mut it)?;
            let d: u64 = next_num(&mut it)?;
            let l: u64 = next_num(&mut it)?;
            edges.push(QueryEdge::new(s as u8, d as u8, l as u16));
        }
        table.insert(Pattern::canonical(&edges), card);
    }
    Ok(table)
}

fn next_num(it: &mut std::str::SplitWhitespace<'_>) -> io::Result<u64> {
    it.next()
        .ok_or_else(|| bad("truncated entry"))?
        .parse()
        .map_err(|_| bad("not a number"))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Save to a file path.
pub fn save_markov(table: &MarkovTable, path: impl AsRef<Path>) -> io::Result<()> {
    write_markov(table, std::fs::File::create(path)?)
}

/// Load from a file path.
pub fn load_markov(path: impl AsRef<Path>) -> io::Result<MarkovTable> {
    read_markov(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_graph::GraphBuilder;
    use ceg_query::templates;

    fn table() -> MarkovTable {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        let g = b.build();
        let q = templates::path(2, &[0, 1]);
        MarkovTable::build_for_query(&g, &q, 2)
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let mut buf = Vec::new();
        write_markov(&t, &mut buf).unwrap();
        let t2 = read_markov(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t2.h(), t.h());
        assert_eq!(t2.len(), t.len());
        for (p, c) in t.iter() {
            assert_eq!(t2.card(p), Some(c), "{p}");
        }
    }

    #[test]
    fn bad_header_is_error() {
        let err = read_markov(io::BufReader::new("nope\n".as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_entry_is_error() {
        let text = "markov h=2\n5 2 0 1\n";
        assert!(read_markov(io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = MarkovTable::empty(3);
        let mut buf = Vec::new();
        write_markov(&t, &mut buf).unwrap();
        let t2 = read_markov(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t2.h(), 3);
        assert!(t2.is_empty());
    }
}
