//! # ceg-query
//!
//! Query model for the CEG cardinality-estimation library.
//!
//! A query is an edge-labeled subgraph pattern (equivalently, a natural join
//! of binary relations — Section 2 of the paper): variables `a_0 … a_{n-1}`
//! connected by directed labeled edges. This crate provides:
//!
//! * [`QueryGraph`] — the query representation, with edge-subset
//!   ([`EdgeMask`]) utilities used to enumerate sub-queries (CEG vertices),
//! * [`Pattern`] / [`PatternKey`] — canonicalized small patterns used as
//!   Markov-table keys,
//! * [`canon`] — renaming-invariant canonical hashing and exact
//!   isomorphism for whole queries (service-layer cache keys),
//! * [`cycles`] — cycle structure analysis (acyclicity, largest cycle,
//!   cyclomatic number) driving the CEG_O vs CEG_OCR choice,
//! * [`templates`] — every query template used in the paper's evaluation.

pub mod canon;
pub mod cycles;
pub mod mask;
pub mod pattern;
pub mod query;
pub mod templates;
pub mod vertex_labels;

pub use mask::EdgeMask;
pub use pattern::{Pattern, PatternKey};
pub use query::{QueryEdge, QueryGraph};
pub use vertex_labels::VertexLabelSpace;

/// Identifier of a query variable (attribute). Queries in the paper have at
/// most 13 variables (a 12-edge path), so 8 bits is plenty.
pub type VarId = u8;
