//! Cycle-structure analysis of queries.
//!
//! The choice of CEG and heuristic depends on the query's cycle structure
//! (Sections 4.3, 6.2): acyclic queries and queries whose only cycles are
//! triangles behave differently from queries with cycles longer than the
//! Markov-table size `h`. Cycles here are cycles of the *underlying
//! undirected* multigraph — edge directions are irrelevant for joins.

use crate::mask::EdgeMask;
use crate::query::QueryGraph;
use crate::VarId;

/// Cyclomatic number (first Betti number) of the edge subset `mask`:
/// `|E| - |V| + #components`. Zero iff the subset is a forest.
pub fn cyclomatic_number(query: &QueryGraph, mask: EdgeMask) -> usize {
    let e = mask.len();
    if e == 0 {
        return 0;
    }
    // Count vertices and components with a union-find over variables.
    let mut parent: Vec<VarId> = (0..query.num_vars()).collect();
    fn find(parent: &mut [VarId], v: VarId) -> VarId {
        let mut v = v;
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    let mut vars = 0u32;
    for i in mask.iter() {
        let ed = query.edge(i);
        vars |= (1 << ed.src) | (1 << ed.dst);
        let (a, b) = (find(&mut parent, ed.src), find(&mut parent, ed.dst));
        if a != b {
            parent[a as usize] = b;
        }
    }
    let nv = vars.count_ones() as usize;
    let mut roots = std::collections::BTreeSet::new();
    for v in 0..query.num_vars() {
        if vars & (1 << v) != 0 {
            roots.insert(find(&mut parent, v));
        }
    }
    e + roots.len() - nv
}

/// True if the whole query is acyclic (a forest / tree).
pub fn is_acyclic(query: &QueryGraph) -> bool {
    cyclomatic_number(query, query.full_mask()) == 0
}

/// Length of the longest *chordless* simple cycle in the query, 0 if
/// acyclic. Query graphs are tiny (≤ 12 edges) so a DFS enumeration of
/// simple cycles is fine.
pub fn largest_cycle(query: &QueryGraph) -> usize {
    all_simple_cycle_lengths(query)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Length of the shortest simple cycle (the girth), 0 if acyclic.
pub fn girth(query: &QueryGraph) -> usize {
    all_simple_cycle_lengths(query)
        .into_iter()
        .min()
        .unwrap_or(0)
}

/// True if the query has at least one cycle strictly longer than `h` that
/// does not contain a smaller cycle within its vertex set (Section 4.3:
/// such queries need CEG_OCR; large cycles containing smaller cycles are
/// already handled by the early cycle-closing rule).
pub fn has_large_cycle(query: &QueryGraph, h: usize) -> bool {
    // Every simple cycle longer than h is "large"; the early-closing rule
    // handles those whose chords create smaller cycles, so we check for a
    // chordless (induced) cycle of length > h.
    chordless_cycle_lengths(query)
        .into_iter()
        .any(|len| len > h)
}

/// True if all of the query's cycles are triangles (used to split the
/// cyclic workloads in Section 6.2.1 vs 6.2.2).
pub fn only_triangles(query: &QueryGraph) -> bool {
    let lens = chordless_cycle_lengths(query);
    !lens.is_empty() && lens.iter().all(|&l| l == 3)
}

/// Lengths of all simple cycles (undirected, ignoring direction; parallel
/// edges between the same pair count as 2-cycles).
pub fn all_simple_cycle_lengths(query: &QueryGraph) -> Vec<usize> {
    simple_cycles(query).into_iter().map(|c| c.len()).collect()
}

/// Lengths of chordless simple cycles.
fn chordless_cycle_lengths(query: &QueryGraph) -> Vec<usize> {
    simple_cycles(query)
        .into_iter()
        .filter(|c| is_chordless(query, c))
        .map(|c| c.len())
        .collect()
}

/// Enumerate simple cycles as edge masks. Uses DFS from each edge; the
/// cycle is recorded when the walk returns to its start vertex. Each cycle
/// is found multiple times; deduplicated by mask.
pub fn simple_cycles(query: &QueryGraph) -> Vec<EdgeMask> {
    let mut found: Vec<EdgeMask> = Vec::new();
    let m = query.num_edges();
    // 2-cycles from parallel/antiparallel edge pairs.
    for i in 0..m {
        for j in (i + 1)..m {
            let (a, b) = (query.edge(i), query.edge(j));
            let same = a.src == b.src && a.dst == b.dst;
            let anti = a.src == b.dst && a.dst == b.src;
            if (same || anti) && a.src != a.dst {
                found.push(EdgeMask::single(i).insert(j));
            }
        }
    }
    // Longer cycles by DFS.
    for start_edge in 0..m {
        let e0 = query.edge(start_edge);
        if e0.src == e0.dst {
            found.push(EdgeMask::single(start_edge));
            continue;
        }
        dfs_cycles(
            query,
            e0.src,
            e0.dst,
            EdgeMask::single(start_edge),
            (1u32 << e0.dst) | (1 << e0.src),
            start_edge,
            &mut found,
        );
    }
    found.sort_unstable();
    found.dedup();
    found
}

#[allow(clippy::too_many_arguments)]
fn dfs_cycles(
    query: &QueryGraph,
    target: VarId,
    at: VarId,
    used: EdgeMask,
    visited_vars: u32,
    min_edge: usize,
    found: &mut Vec<EdgeMask>,
) {
    for i in 0..query.num_edges() {
        if used.contains(i) || i < min_edge {
            // restrict to edges ≥ the start edge to limit duplicates
            continue;
        }
        let e = query.edge(i);
        if !e.touches(at) {
            continue;
        }
        let next = e.other(at);
        if next == target && used.len() >= 2 {
            found.push(used.insert(i));
            continue;
        }
        if visited_vars & (1 << next) != 0 {
            continue;
        }
        dfs_cycles(
            query,
            target,
            next,
            used.insert(i),
            visited_vars | (1 << next),
            min_edge,
            found,
        );
    }
}

/// True if the cycle (given as an edge mask) has no chord: no query edge
/// outside the cycle connects two of the cycle's vertices.
fn is_chordless(query: &QueryGraph, cycle: &EdgeMask) -> bool {
    let vars = query.vars_of(*cycle);
    for i in 0..query.num_edges() {
        if cycle.contains(i) {
            continue;
        }
        let e = query.edge(i);
        if e.src != e.dst && vars & (1 << e.src) != 0 && vars & (1 << e.dst) != 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryEdge;
    use crate::templates;

    #[test]
    fn path_is_acyclic() {
        let q = templates::path(4, &[0, 1, 2, 3]);
        assert!(is_acyclic(&q));
        assert_eq!(largest_cycle(&q), 0);
        assert_eq!(girth(&q), 0);
        assert!(!has_large_cycle(&q, 3));
    }

    #[test]
    fn triangle_cycles() {
        let q = templates::cycle(3, &[0, 1, 2]);
        assert!(!is_acyclic(&q));
        assert_eq!(largest_cycle(&q), 3);
        assert!(only_triangles(&q));
        assert!(!has_large_cycle(&q, 3));
        assert!(has_large_cycle(&q, 2));
    }

    #[test]
    fn square_cycle() {
        let q = templates::cycle(4, &[0, 1, 2, 3]);
        assert_eq!(largest_cycle(&q), 4);
        assert_eq!(girth(&q), 4);
        assert!(has_large_cycle(&q, 3));
        assert!(!only_triangles(&q));
    }

    #[test]
    fn k4_has_no_large_chordless_cycle() {
        // K4 contains 4-cycles but all of them have chords; the early
        // cycle-closing rule handles it, so CEG_OCR is not needed (§4.3).
        let q = templates::clique4(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(cyclomatic_number(&q, q.full_mask()), 3);
        assert!(!has_large_cycle(&q, 3));
        assert!(only_triangles(&q));
    }

    #[test]
    fn cyclomatic_number_of_subsets() {
        let q = templates::cycle(4, &[0, 1, 2, 3]);
        assert_eq!(cyclomatic_number(&q, q.full_mask()), 1);
        assert_eq!(cyclomatic_number(&q, EdgeMask::from_bits(0b0111)), 0);
        assert_eq!(cyclomatic_number(&q, EdgeMask::empty()), 0);
    }

    #[test]
    fn antiparallel_pair_is_a_two_cycle() {
        let q = QueryGraph::new(2, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(1, 0, 1)]);
        assert_eq!(girth(&q), 2);
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn two_triangles_shared_vertex() {
        let q = templates::two_triangles(&[0, 1, 2, 3, 4, 5]);
        assert!(only_triangles(&q));
        assert_eq!(cyclomatic_number(&q, q.full_mask()), 2);
    }

    #[test]
    fn diamond_with_crossing_edge() {
        // 4-cycle plus a chord: the 4-cycles are chorded, triangles remain.
        let q = templates::diamond_cross(&[0, 1, 2, 3, 4]);
        assert!(only_triangles(&q));
        assert!(!has_large_cycle(&q, 3));
    }
}
