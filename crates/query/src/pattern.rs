//! Canonicalized small patterns — the keys of a Markov table.
//!
//! A Markov table (Section 4.1) stores the cardinality of every small join
//! (up to `h` edges). Two sub-queries that are identical up to variable
//! renaming have the same cardinality, so lookups go through a canonical
//! form: the lexicographically least edge list over all permutations of the
//! pattern's variables. Patterns have at most `h + 1 ≤ 4` variables in
//! practice (and we cap canonicalization at 8), so brute-force minimization
//! over permutations is cheap and — unlike hashing heuristics — exact.

use std::fmt;

use ceg_graph::LabelId;

use crate::query::{QueryEdge, QueryGraph};
use crate::VarId;

/// Maximum number of variables we canonicalize by brute force. `8! = 40320`
/// permutations, still trivial; the paper's statistics never exceed 4 vars.
const MAX_CANON_VARS: usize = 8;

/// A small connected pattern in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    num_vars: VarId,
    /// Canonical, sorted edge list.
    edges: Vec<QueryEdge>,
}

/// Hashable key of a canonical pattern (the pattern itself is the key; this
/// alias documents intent at use sites).
pub type PatternKey = Pattern;

impl Pattern {
    /// Canonicalize a pattern given as an arbitrary edge list over
    /// arbitrary (possibly sparse) variable ids.
    pub fn canonical(edges: &[QueryEdge]) -> Self {
        Pattern::canonical_with_map(edges).0
    }

    /// Canonicalize and also return the mapping `(original var, canonical
    /// var)` realizing the canonical form. Statistics keyed per variable
    /// (e.g. small-join degree statistics, Section 5.1.1) are translated
    /// through this map.
    pub fn canonical_with_map(edges: &[QueryEdge]) -> (Self, Vec<(VarId, VarId)>) {
        // Collect distinct variables.
        let mut vars: Vec<VarId> = Vec::new();
        for e in edges {
            for v in [e.src, e.dst] {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars.sort_unstable();
        let k = vars.len();
        assert!(
            k <= MAX_CANON_VARS,
            "pattern with {k} variables exceeds canonicalization limit"
        );
        if k == 0 {
            return (
                Pattern {
                    num_vars: 0,
                    edges: Vec::new(),
                },
                Vec::new(),
            );
        }

        // Dense renumber first so permutations are over 0..k.
        let dense = |v: VarId| vars.iter().position(|&x| x == v).unwrap() as VarId;
        let dense_edges: Vec<QueryEdge> = edges
            .iter()
            .map(|e| QueryEdge::new(dense(e.src), dense(e.dst), e.label))
            .collect();

        // Brute-force minimum over permutations of variables.
        let mut perm: Vec<VarId> = (0..k as VarId).collect();
        let mut best: Option<(Vec<QueryEdge>, Vec<VarId>)> = None;
        permute(&mut perm, 0, &mut |p| {
            let mut candidate: Vec<QueryEdge> = dense_edges
                .iter()
                .map(|e| QueryEdge::new(p[e.src as usize], p[e.dst as usize], e.label))
                .collect();
            candidate.sort_unstable();
            candidate.dedup();
            match &best {
                Some((b, _)) if *b <= candidate => {}
                _ => best = Some((candidate, p.to_vec())),
            }
        });
        let (edges_canon, perm) = best.unwrap();
        let map = vars
            .iter()
            .enumerate()
            .map(|(dense_idx, &orig)| (orig, perm[dense_idx]))
            .collect();
        (
            Pattern {
                num_vars: k as VarId,
                edges: edges_canon,
            },
            map,
        )
    }

    /// Canonical form of the sub-query of `query` induced by an edge subset.
    pub fn of_subquery(query: &QueryGraph, mask: crate::EdgeMask) -> Self {
        let edges: Vec<QueryEdge> = mask.iter().map(|i| query.edge(i)).collect();
        Pattern::canonical(&edges)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> VarId {
        self.num_vars
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list.
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// View the pattern as a standalone query graph (for execution).
    pub fn to_query(&self) -> QueryGraph {
        QueryGraph::new(self.num_vars, self.edges.clone())
    }

    /// The labels used by the pattern, sorted with duplicates.
    pub fn labels(&self) -> Vec<LabelId> {
        let mut ls: Vec<LabelId> = self.edges.iter().map(|e| e.label).collect();
        ls.sort_unstable();
        ls
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P[")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}-{}->{}", e.src, e.label, e.dst)?;
        }
        write!(f, "]")
    }
}

/// Heap's-algorithm-style permutation visitor.
fn permute(perm: &mut [VarId], i: usize, visit: &mut impl FnMut(&[VarId])) {
    if i == perm.len() {
        visit(perm);
        return;
    }
    for j in i..perm.len() {
        perm.swap(i, j);
        permute(perm, i + 1, visit);
        perm.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renaming_invariance() {
        // a0 -0-> a1 -1-> a2 vs a5 -0-> a2 -1-> a7: same canonical pattern.
        let p1 = Pattern::canonical(&[QueryEdge::new(0, 1, 0), QueryEdge::new(1, 2, 1)]);
        let p2 = Pattern::canonical(&[QueryEdge::new(5, 2, 0), QueryEdge::new(2, 7, 1)]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn direction_matters() {
        // a0 -0-> a1 -1-> a2  vs  a0 -0-> a1 <-1- a2 are different patterns.
        let chain = Pattern::canonical(&[QueryEdge::new(0, 1, 0), QueryEdge::new(1, 2, 1)]);
        let meet = Pattern::canonical(&[QueryEdge::new(0, 1, 0), QueryEdge::new(2, 1, 1)]);
        assert_ne!(chain, meet);
    }

    #[test]
    fn labels_matter() {
        let p1 = Pattern::canonical(&[QueryEdge::new(0, 1, 0)]);
        let p2 = Pattern::canonical(&[QueryEdge::new(0, 1, 1)]);
        assert_ne!(p1, p2);
    }

    #[test]
    fn symmetric_pattern_is_stable() {
        // two parallel edges with the same label in both orders
        let p1 = Pattern::canonical(&[QueryEdge::new(0, 1, 0), QueryEdge::new(0, 2, 0)]);
        let p2 = Pattern::canonical(&[QueryEdge::new(3, 2, 0), QueryEdge::new(3, 1, 0)]);
        assert_eq!(p1, p2);
        assert_eq!(p1.num_vars(), 3);
    }

    #[test]
    fn triangle_rotations_are_equal() {
        let t = |a: VarId, b: VarId, c: VarId| {
            Pattern::canonical(&[
                QueryEdge::new(a, b, 0),
                QueryEdge::new(b, c, 0),
                QueryEdge::new(c, a, 0),
            ])
        };
        assert_eq!(t(0, 1, 2), t(1, 2, 0));
        assert_eq!(t(0, 1, 2), t(2, 0, 1));
    }

    #[test]
    fn to_query_roundtrip() {
        let p = Pattern::canonical(&[QueryEdge::new(0, 1, 3), QueryEdge::new(1, 2, 4)]);
        let q = p.to_query();
        assert_eq!(q.num_edges(), 2);
        assert_eq!(Pattern::of_subquery(&q, q.full_mask()), p);
    }

    #[test]
    fn empty_pattern() {
        let p = Pattern::canonical(&[]);
        assert_eq!(p.num_edges(), 0);
        assert_eq!(p.num_vars(), 0);
    }

    #[test]
    fn labels_listed_sorted() {
        let p = Pattern::canonical(&[QueryEdge::new(0, 1, 5), QueryEdge::new(1, 2, 2)]);
        assert_eq!(p.labels(), vec![2, 5]);
    }
}

#[cfg(test)]
mod map_tests {
    use super::*;

    #[test]
    fn canonical_map_realizes_canonical_form() {
        let edges = [QueryEdge::new(5, 2, 0), QueryEdge::new(2, 7, 1)];
        let (p, map) = Pattern::canonical_with_map(&edges);
        let lookup = |v: VarId| map.iter().find(|&&(o, _)| o == v).unwrap().1;
        let mut mapped: Vec<QueryEdge> = edges
            .iter()
            .map(|e| QueryEdge::new(lookup(e.src), lookup(e.dst), e.label))
            .collect();
        mapped.sort_unstable();
        assert_eq!(mapped, p.edges().to_vec());
    }

    #[test]
    fn canonical_map_covers_all_vars() {
        let edges = [QueryEdge::new(1, 3, 0), QueryEdge::new(3, 9, 0)];
        let (p, map) = Pattern::canonical_with_map(&edges);
        assert_eq!(map.len(), 3);
        let mut canon_vars: Vec<VarId> = map.iter().map(|&(_, c)| c).collect();
        canon_vars.sort_unstable();
        assert_eq!(canon_vars, vec![0, 1, 2]);
        assert_eq!(p.num_vars(), 3);
    }
}
