//! Query templates used in the paper's evaluation (Section 6.1).
//!
//! Every constructor takes the edge labels as a slice whose length must
//! equal the template's edge count; workload generators instantiate the
//! templates with randomly drawn labels, as the paper does.
//!
//! Covered shapes:
//! * paths, stars, depth-controlled trees (JOB, Acyclic, G-CARE-Acyclic;
//!   Figure 8),
//! * the running-example fork query `Q5f` (Figure 1),
//! * cycles, diamond-with-chord, `K4`, two-triangles, square+triangle(s),
//!   petals and flowers (Cyclic, G-CARE-Cyclic).

use ceg_graph::LabelId;

use crate::query::{QueryEdge, QueryGraph};
use crate::VarId;

fn check(labels: &[LabelId], need: usize, what: &str) {
    assert_eq!(
        labels.len(),
        need,
        "template `{what}` needs exactly {need} labels"
    );
}

/// Simple directed path `a0 -> a1 -> … -> ak`.
pub fn path(k: usize, labels: &[LabelId]) -> QueryGraph {
    check(labels, k, "path");
    let edges = (0..k)
        .map(|i| QueryEdge::new(i as VarId, i as VarId + 1, labels[i]))
        .collect();
    QueryGraph::new(k as VarId + 1, edges)
}

/// Outgoing star: `a0 -> a1, a0 -> a2, …, a0 -> ak`.
pub fn star(k: usize, labels: &[LabelId]) -> QueryGraph {
    check(labels, k, "star");
    let edges = (0..k)
        .map(|i| QueryEdge::new(0, i as VarId + 1, labels[i]))
        .collect();
    QueryGraph::new(k as VarId + 1, edges)
}

/// Tree with `k` edges and exact depth `d` (`2 ≤ d ≤ k`): a spine path of
/// length `d` from the root, with the remaining `k - d` edges attached
/// round-robin to spine vertices at depth `< d` (so the depth stays `d`).
/// This realizes the Figure 8 template family: for every query size the
/// workloads include one pattern per possible depth, from stars (`d = 2`,
/// handled by [`star`]) to paths (`d = k`).
pub fn tree_depth(k: usize, d: usize, labels: &[LabelId]) -> QueryGraph {
    check(labels, k, "tree_depth");
    assert!((2..=k).contains(&d), "depth must be in 2..=k");
    let mut edges: Vec<QueryEdge> = (0..d)
        .map(|i| QueryEdge::new(i as VarId, i as VarId + 1, labels[i]))
        .collect();
    let mut next_var = d as VarId + 1;
    for (j, &lab) in labels.iter().enumerate().skip(d) {
        // attach below spine vertex (j - d) mod d, but never the deepest
        let parent = ((j - d) % d.max(1)) as VarId;
        edges.push(QueryEdge::new(parent, next_var, lab));
        next_var += 1;
    }
    QueryGraph::new(next_var, edges)
}

/// The paper's running-example fork query `Q5f` (Figure 1): a 2-path
/// `a0 -A-> a1 -B-> a2` with three additional edges `C`, `D`, `E` fanning
/// out of `a2`.
pub fn q5f(labels: &[LabelId]) -> QueryGraph {
    check(labels, 5, "q5f");
    QueryGraph::new(
        6,
        vec![
            QueryEdge::new(0, 1, labels[0]), // A
            QueryEdge::new(1, 2, labels[1]), // B
            QueryEdge::new(2, 3, labels[2]), // C
            QueryEdge::new(2, 4, labels[3]), // D
            QueryEdge::new(2, 5, labels[4]), // E
        ],
    )
}

/// Directed cycle `a0 -> a1 -> … -> a_{k-1} -> a0`.
pub fn cycle(k: usize, labels: &[LabelId]) -> QueryGraph {
    check(labels, k, "cycle");
    assert!(k >= 3, "cycles need at least 3 edges");
    let edges = (0..k)
        .map(|i| QueryEdge::new(i as VarId, ((i + 1) % k) as VarId, labels[i]))
        .collect();
    QueryGraph::new(k as VarId, edges)
}

/// 5-edge diamond: a 4-cycle `a0 a1 a2 a3` with the crossing edge
/// `a0 -> a2` (the Cyclic-workload "diamond with a crossing edge").
pub fn diamond_cross(labels: &[LabelId]) -> QueryGraph {
    check(labels, 5, "diamond_cross");
    QueryGraph::new(
        4,
        vec![
            QueryEdge::new(0, 1, labels[0]),
            QueryEdge::new(1, 2, labels[1]),
            QueryEdge::new(2, 3, labels[2]),
            QueryEdge::new(3, 0, labels[3]),
            QueryEdge::new(0, 2, labels[4]),
        ],
    )
}

/// Complete graph `K4` (6 edges) on variables `a0..a3`.
pub fn clique4(labels: &[LabelId]) -> QueryGraph {
    check(labels, 6, "clique4");
    let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let edges = pairs
        .iter()
        .zip(labels)
        .map(|(&(s, d), &l)| QueryEdge::new(s, d, l))
        .collect();
    QueryGraph::new(4, edges)
}

/// Two triangles sharing vertex `a0` (6 edges).
pub fn two_triangles(labels: &[LabelId]) -> QueryGraph {
    check(labels, 6, "two_triangles");
    QueryGraph::new(
        5,
        vec![
            QueryEdge::new(0, 1, labels[0]),
            QueryEdge::new(1, 2, labels[1]),
            QueryEdge::new(2, 0, labels[2]),
            QueryEdge::new(0, 3, labels[3]),
            QueryEdge::new(3, 4, labels[4]),
            QueryEdge::new(4, 0, labels[5]),
        ],
    )
}

/// 7-edge query: a square with a triangle on one side.
pub fn square_triangle(labels: &[LabelId]) -> QueryGraph {
    check(labels, 7, "square_triangle");
    QueryGraph::new(
        5,
        vec![
            QueryEdge::new(0, 1, labels[0]),
            QueryEdge::new(1, 2, labels[1]),
            QueryEdge::new(2, 3, labels[2]),
            QueryEdge::new(3, 0, labels[3]),
            // triangle on side (0, 1)
            QueryEdge::new(0, 4, labels[4]),
            QueryEdge::new(4, 1, labels[5]),
            QueryEdge::new(1, 3, labels[6]),
        ],
    )
}

/// 8-edge query: a square with triangles on two adjacent sides.
pub fn square_two_triangles(labels: &[LabelId]) -> QueryGraph {
    check(labels, 8, "square_two_triangles");
    QueryGraph::new(
        6,
        vec![
            QueryEdge::new(0, 1, labels[0]),
            QueryEdge::new(1, 2, labels[1]),
            QueryEdge::new(2, 3, labels[2]),
            QueryEdge::new(3, 0, labels[3]),
            // triangle on side (0, 1)
            QueryEdge::new(0, 4, labels[4]),
            QueryEdge::new(4, 1, labels[5]),
            // triangle on side (1, 2)
            QueryEdge::new(1, 5, labels[6]),
            QueryEdge::new(5, 2, labels[7]),
        ],
    )
}

/// Petal: `num_paths` parallel directed paths of `path_len` edges between
/// shared endpoints `a0` and `a1` (G-CARE's 6-edge petal is 3×2, the
/// 9-edge petal 3×3).
pub fn petal(num_paths: usize, path_len: usize, labels: &[LabelId]) -> QueryGraph {
    check(labels, num_paths * path_len, "petal");
    assert!(num_paths >= 2 && path_len >= 1);
    let mut edges = Vec::with_capacity(labels.len());
    let mut next_var: VarId = 2;
    let mut li = 0;
    for _ in 0..num_paths {
        let mut prev: VarId = 0;
        for step in 0..path_len {
            let to = if step + 1 == path_len {
                1
            } else {
                let v = next_var;
                next_var += 1;
                v
            };
            edges.push(QueryEdge::new(prev, to, labels[li]));
            li += 1;
            prev = to;
        }
    }
    QueryGraph::new(next_var, edges)
}

/// Flower: a triangle with one pendant edge hanging off each corner
/// (6 edges), per the G-CARE-Cyclic flower template.
pub fn flower(labels: &[LabelId]) -> QueryGraph {
    check(labels, 6, "flower");
    QueryGraph::new(
        6,
        vec![
            QueryEdge::new(0, 1, labels[0]),
            QueryEdge::new(1, 2, labels[1]),
            QueryEdge::new(2, 0, labels[2]),
            QueryEdge::new(0, 3, labels[3]),
            QueryEdge::new(1, 4, labels[4]),
            QueryEdge::new(2, 5, labels[5]),
        ],
    )
}

/// The seven JOB-style acyclic templates (Section 6.1: four 4-edge, two
/// 5-edge, one 6-edge join shapes derived from the Join Order Benchmark).
/// `idx ∈ 0..7`; labels length must match [`job_template_size`].
pub fn job_template(idx: usize, labels: &[LabelId]) -> QueryGraph {
    match idx {
        0 => path(4, labels),
        1 => star(4, labels),
        2 => tree_depth(4, 2, labels), // shallow bushy join
        3 => tree_depth(4, 3, labels), // Y-shape
        4 => tree_depth(5, 3, labels),
        5 => q5f(labels),
        6 => tree_depth(6, 4, labels),
        _ => panic!("JOB template index out of range: {idx}"),
    }
}

/// Edge count of JOB template `idx`.
pub fn job_template_size(idx: usize) -> usize {
    match idx {
        0..=3 => 4,
        4 | 5 => 5,
        6 => 6,
        _ => panic!("JOB template index out of range: {idx}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles;

    #[test]
    fn path_shape() {
        let q = path(3, &[0, 1, 2]);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.num_vars(), 4);
        assert!(q.is_connected());
        assert!(cycles::is_acyclic(&q));
    }

    #[test]
    fn star_shape() {
        let q = star(5, &[0; 5]);
        assert_eq!(q.var_degree(0), 5);
        assert!(cycles::is_acyclic(&q));
    }

    #[test]
    fn tree_depth_bounds() {
        for k in [4, 6, 7, 8] {
            for d in 2..=k {
                let labels: Vec<LabelId> = (0..k as LabelId).collect();
                let q = tree_depth(k, d, &labels);
                assert_eq!(q.num_edges(), k);
                assert!(q.is_connected(), "k={k} d={d}");
                assert!(cycles::is_acyclic(&q), "k={k} d={d}");
            }
        }
    }

    #[test]
    fn q5f_shape() {
        let q = q5f(&[0, 1, 2, 3, 4]);
        assert_eq!(q.num_edges(), 5);
        assert_eq!(q.num_vars(), 6);
        assert_eq!(q.var_degree(2), 4);
        assert!(cycles::is_acyclic(&q));
    }

    #[test]
    fn cycle_shape() {
        let q = cycle(6, &[0; 6]);
        assert_eq!(cycles::largest_cycle(&q), 6);
        assert_eq!(q.num_vars(), 6);
    }

    #[test]
    fn petal_shapes() {
        let q6 = petal(3, 2, &[0; 6]);
        assert_eq!(q6.num_edges(), 6);
        assert!(q6.is_connected());
        assert!(!cycles::is_acyclic(&q6));
        let q9 = petal(3, 3, &[0; 9]);
        assert_eq!(q9.num_edges(), 9);
        assert!(cycles::has_large_cycle(&q9, 3));
    }

    #[test]
    fn flower_is_triangle_plus_pendants() {
        let q = flower(&[0, 1, 2, 3, 4, 5]);
        assert!(cycles::only_triangles(&q));
        assert_eq!(q.num_edges(), 6);
    }

    #[test]
    fn square_families() {
        assert_eq!(square_triangle(&[0; 7]).num_edges(), 7);
        assert_eq!(square_two_triangles(&[0; 8]).num_edges(), 8);
        assert!(!cycles::is_acyclic(&square_triangle(&[0; 7])));
    }

    #[test]
    fn job_templates_are_acyclic_and_sized() {
        for idx in 0..7 {
            let n = job_template_size(idx);
            let labels: Vec<LabelId> = (0..n as LabelId).collect();
            let q = job_template(idx, &labels);
            assert_eq!(q.num_edges(), n, "template {idx}");
            assert!(cycles::is_acyclic(&q), "template {idx}");
            assert!(q.is_connected(), "template {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "needs exactly")]
    fn wrong_label_count_panics() {
        path(3, &[0, 1]);
    }
}
