//! Edge-subset bitmasks.
//!
//! CEG_O vertices are connected subsets of a query's edges (Section 4.2);
//! we represent a subset as one `u32` so subset tests, unions and
//! enumeration are single instructions.

/// A subset of a query's edges (bit `i` = edge index `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EdgeMask(u32);

impl EdgeMask {
    /// The empty subset (the CEG bottom vertex `∅`).
    #[inline]
    pub const fn empty() -> Self {
        EdgeMask(0)
    }

    /// Subset containing the first `n` edges.
    #[inline]
    pub const fn full(n: usize) -> Self {
        debug_assert!(n <= 32);
        if n == 32 {
            EdgeMask(u32::MAX)
        } else {
            EdgeMask((1u32 << n) - 1)
        }
    }

    /// Singleton subset `{i}`.
    #[inline]
    pub const fn single(i: usize) -> Self {
        EdgeMask(1 << i)
    }

    /// From a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        EdgeMask(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Number of edges in the subset.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the subset is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if edge `i` is in the subset.
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Subset with edge `i` added.
    #[inline]
    #[must_use]
    pub const fn insert(self, i: usize) -> Self {
        EdgeMask(self.0 | (1 << i))
    }

    /// Subset with edge `i` removed.
    #[inline]
    #[must_use]
    pub const fn remove(self, i: usize) -> Self {
        EdgeMask(self.0 & !(1 << i))
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        EdgeMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: Self) -> Self {
        EdgeMask(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        EdgeMask(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    #[inline]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if `self ⊂ other`.
    #[inline]
    pub const fn is_proper_subset_of(self, other: Self) -> bool {
        self.is_subset_of(other) && self.0 != other.0
    }

    /// Iterate the edge indices in the subset, ascending.
    #[inline]
    pub fn iter(self) -> BitIter {
        BitIter(self.0)
    }
}

/// Iterator over set bit positions.
pub struct BitIter(u32);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl std::fmt::Display for EdgeMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let a = EdgeMask::from_bits(0b0110);
        let b = EdgeMask::from_bits(0b0011);
        assert_eq!(a.union(b).bits(), 0b0111);
        assert_eq!(a.intersect(b).bits(), 0b0010);
        assert_eq!(a.difference(b).bits(), 0b0100);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn subset_relations() {
        let a = EdgeMask::from_bits(0b0010);
        let b = EdgeMask::from_bits(0b0110);
        assert!(a.is_subset_of(b));
        assert!(a.is_proper_subset_of(b));
        assert!(b.is_subset_of(b));
        assert!(!b.is_proper_subset_of(b));
        assert!(!b.is_subset_of(a));
    }

    #[test]
    fn insert_remove_contains() {
        let m = EdgeMask::empty().insert(3).insert(5);
        assert!(m.contains(3) && m.contains(5) && !m.contains(4));
        assert_eq!(m.remove(3), EdgeMask::single(5));
    }

    #[test]
    fn iter_ascending() {
        let m = EdgeMask::from_bits(0b101001);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3, 5]);
        assert_eq!(m.iter().size_hint(), (3, Some(3)));
    }

    #[test]
    fn full_masks() {
        assert_eq!(EdgeMask::full(0), EdgeMask::empty());
        assert_eq!(EdgeMask::full(3).bits(), 0b111);
        assert_eq!(EdgeMask::full(32).bits(), u32::MAX);
    }

    #[test]
    fn display_lists_indices() {
        assert_eq!(EdgeMask::from_bits(0b101).to_string(), "{0,2}");
        assert_eq!(EdgeMask::empty().to_string(), "{}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn difference_with_self_is_empty() {
        let m = EdgeMask::from_bits(0b1011);
        assert_eq!(m.difference(m), EdgeMask::empty());
        assert!(m.difference(m).is_empty());
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let a = EdgeMask::from_bits(0b0101);
        let b = EdgeMask::from_bits(0b0011);
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(a), a);
    }

    #[test]
    fn empty_is_subset_of_everything() {
        for bits in [0u32, 1, 0b1010, u32::MAX] {
            assert!(EdgeMask::empty().is_subset_of(EdgeMask::from_bits(bits)));
        }
    }
}
