//! Vertex-labeled queries via the unary-relation reduction.
//!
//! The paper evaluates edge-labeled queries "for simplicity" and notes
//! (Section 6.1) that vertex labels are handled "in a straightforward
//! manner … by extending Markov table entries to have vertex labels".
//! The cleanest realization is the classic reduction: a vertex label `ℓ`
//! is a unary relation `L_ℓ(v)`, stored as a self-loop edge `(v, v)` with
//! a dedicated edge label. Every part of the stack — executor, Markov
//! tables, CEGs, bounds — then works unchanged, and a Markov entry for a
//! pattern containing label loops *is* the vertex-labeled statistic. The
//! end-to-end behaviour (filtering, estimation) is exercised in the
//! workspace integration tests (`tests/integration.rs`).

use ceg_graph::{GraphBuilder, LabelId};

use crate::query::{QueryEdge, QueryGraph};
use crate::VarId;

/// Maps vertex labels into a reserved band of edge labels.
///
/// Construct it with the number of ordinary edge labels; vertex label `ℓ`
/// becomes edge label `base + ℓ`.
#[derive(Debug, Clone, Copy)]
pub struct VertexLabelSpace {
    base: LabelId,
}

impl VertexLabelSpace {
    /// Reserve vertex-label space above `num_edge_labels`.
    pub fn new(num_edge_labels: usize) -> Self {
        VertexLabelSpace {
            base: num_edge_labels as LabelId,
        }
    }

    /// The edge label encoding vertex label `vl`.
    pub fn encode(&self, vl: LabelId) -> LabelId {
        self.base + vl
    }

    /// Decode an edge label back to a vertex label, if it is one.
    pub fn decode(&self, l: LabelId) -> Option<LabelId> {
        l.checked_sub(self.base)
    }

    /// Tag a data vertex with a vertex label (adds the self-loop).
    pub fn label_vertex(&self, builder: &mut GraphBuilder, v: u32, vl: LabelId) {
        builder.add_edge(v, v, self.encode(vl));
    }

    /// Require query variable `var` to carry vertex label `vl`: returns a
    /// new query with the label-loop edge appended.
    pub fn with_vertex_label(&self, query: &QueryGraph, var: VarId, vl: LabelId) -> QueryGraph {
        let mut edges = query.edges().to_vec();
        edges.push(QueryEdge::new(var, var, self.encode(vl)));
        QueryGraph::new(query.num_vars(), edges)
    }

    /// True if the query contains any vertex-label loops from this space.
    pub fn has_vertex_labels(&self, query: &QueryGraph) -> bool {
        query
            .edges()
            .iter()
            .any(|e| e.src == e.dst && self.decode(e.label).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;

    #[test]
    fn encode_decode_roundtrip() {
        let s = VertexLabelSpace::new(10);
        assert_eq!(s.encode(3), 13);
        assert_eq!(s.decode(13), Some(3));
        assert_eq!(s.decode(5), None);
    }

    #[test]
    fn with_vertex_label_appends_loop() {
        let s = VertexLabelSpace::new(4);
        let q = templates::path(2, &[0, 1]);
        let q2 = s.with_vertex_label(&q, 1, 2);
        assert_eq!(q2.num_edges(), 3);
        let e = q2.edge(2);
        assert_eq!((e.src, e.dst, e.label), (1, 1, 6));
        assert!(s.has_vertex_labels(&q2));
        assert!(!s.has_vertex_labels(&q));
    }

    #[test]
    fn label_loop_keeps_query_connected() {
        let s = VertexLabelSpace::new(2);
        let q = s.with_vertex_label(&templates::path(2, &[0, 1]), 0, 1);
        assert!(q.is_connected());
        // the loop participates in connected subsets
        let subs = q.connected_subsets();
        assert!(subs.iter().any(|m| m.contains(2)));
    }

    #[test]
    fn labeling_vertices_in_builder() {
        let s = VertexLabelSpace::new(1);
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        s.label_vertex(&mut b, 1, 0);
        let g = b.build();
        assert!(g.has_edge(1, 1, 1));
        assert_eq!(g.num_labels(), 2);
    }
}
