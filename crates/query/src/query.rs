//! The query graph representation.

use std::fmt;

use ceg_graph::LabelId;

use crate::mask::EdgeMask;
use crate::VarId;

/// One query edge: `src -label-> dst` between two query variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryEdge {
    pub src: VarId,
    pub dst: VarId,
    pub label: LabelId,
}

impl QueryEdge {
    pub fn new(src: VarId, dst: VarId, label: LabelId) -> Self {
        QueryEdge { src, dst, label }
    }

    /// True if `v` is one of the endpoints.
    #[inline]
    pub fn touches(&self, v: VarId) -> bool {
        self.src == v || self.dst == v
    }

    /// The endpoint other than `v` (panics if `v` is not an endpoint).
    #[inline]
    pub fn other(&self, v: VarId) -> VarId {
        if self.src == v {
            self.dst
        } else {
            debug_assert_eq!(self.dst, v);
            self.src
        }
    }
}

/// An edge-labeled subgraph query over variables `0..num_vars`.
///
/// Queries are restricted to at most 32 edges so that edge subsets fit in a
/// [`EdgeMask`] bitmask; the paper's largest workload query has 12 edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryGraph {
    num_vars: VarId,
    edges: Vec<QueryEdge>,
}

impl QueryGraph {
    /// Build a query; panics on malformed input (self-loops are allowed,
    /// out-of-range variables and >32 edges are not).
    pub fn new(num_vars: VarId, edges: Vec<QueryEdge>) -> Self {
        assert!(edges.len() <= 32, "queries are limited to 32 edges");
        for e in &edges {
            assert!(
                e.src < num_vars && e.dst < num_vars,
                "edge {:?} references a variable outside 0..{}",
                e,
                num_vars
            );
        }
        QueryGraph { num_vars, edges }
    }

    /// Number of query variables (attributes).
    #[inline]
    pub fn num_vars(&self) -> VarId {
        self.num_vars
    }

    /// Number of query edges (relations).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The query edges in declaration order.
    #[inline]
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// Edge at position `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> QueryEdge {
        self.edges[i]
    }

    /// Bitmask with every query edge set.
    #[inline]
    pub fn full_mask(&self) -> EdgeMask {
        EdgeMask::full(self.num_edges())
    }

    /// Bitmask of variables touched by the edges in `mask` (bit `v` set if
    /// variable `v` appears as an endpoint).
    pub fn vars_of(&self, mask: EdgeMask) -> u32 {
        let mut vars = 0u32;
        for i in mask.iter() {
            let e = self.edges[i];
            vars |= 1 << e.src;
            vars |= 1 << e.dst;
        }
        vars
    }

    /// Variables of the whole query as a bitmask.
    pub fn all_vars(&self) -> u32 {
        self.vars_of(self.full_mask())
    }

    /// Indices of edges incident to variable `v`.
    pub fn edges_at(&self, v: VarId) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.touches(v))
            .map(|(i, _)| i)
    }

    /// Degree of variable `v` in the query graph (number of incident edges).
    pub fn var_degree(&self, v: VarId) -> usize {
        self.edges_at(v).count()
    }

    /// Join variables: variables incident to ≥ 2 query edges.
    pub fn join_vars(&self) -> Vec<VarId> {
        (0..self.num_vars)
            .filter(|&v| self.var_degree(v) >= 2)
            .collect()
    }

    /// True if the edge set in `mask` induces a connected (multi)graph when
    /// edge directions are ignored. The empty mask counts as connected.
    pub fn is_connected_mask(&self, mask: EdgeMask) -> bool {
        let mut edges = mask.iter();
        let Some(first) = edges.next() else {
            return true;
        };
        let mut visited_edges = EdgeMask::single(first);
        let mut frontier_vars = (1u32 << self.edges[first].src) | (1 << self.edges[first].dst);
        loop {
            let mut grew = false;
            for i in mask.iter() {
                if visited_edges.contains(i) {
                    continue;
                }
                let e = self.edges[i];
                if frontier_vars & ((1 << e.src) | (1 << e.dst)) != 0 {
                    visited_edges = visited_edges.insert(i);
                    frontier_vars |= (1 << e.src) | (1 << e.dst);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        visited_edges == mask
    }

    /// True if the whole query is connected. The paper assumes connected
    /// queries (Section 4.2).
    pub fn is_connected(&self) -> bool {
        if self.edges.is_empty() {
            return true;
        }
        // The mask check covers edge-connectivity; isolated variables also
        // make a query disconnected.
        self.is_connected_mask(self.full_mask())
            && (0..self.num_vars).all(|v| self.var_degree(v) > 0 || self.num_vars == 1)
    }

    /// Enumerate all connected non-empty edge subsets, in increasing
    /// cardinality order. These are the CEG_O vertices (Section 4.2).
    pub fn connected_subsets(&self) -> Vec<EdgeMask> {
        let m = self.num_edges();
        let mut out: Vec<EdgeMask> = Vec::new();
        let mut seen = vec![false; 1usize << m];
        // BFS over subsets: start from singletons, extend by adjacent edges.
        let mut frontier: Vec<EdgeMask> = (0..m).map(EdgeMask::single).collect();
        for &f in &frontier {
            seen[f.bits() as usize] = true;
        }
        while let Some(mask) = frontier.pop() {
            out.push(mask);
            let vars = self.vars_of(mask);
            for (i, e) in self.edges.iter().enumerate() {
                if mask.contains(i) {
                    continue;
                }
                if vars & ((1 << e.src) | (1 << e.dst)) != 0 {
                    let next = mask.insert(i);
                    if !seen[next.bits() as usize] {
                        seen[next.bits() as usize] = true;
                        frontier.push(next);
                    }
                }
            }
        }
        out.sort_by_key(|m| (m.len(), m.bits()));
        out
    }

    /// Enumerate connected subsets of at most `max_edges` edges.
    pub fn connected_subsets_up_to(&self, max_edges: usize) -> Vec<EdgeMask> {
        self.connected_subsets()
            .into_iter()
            .filter(|m| m.len() <= max_edges)
            .collect()
    }

    /// Extract the sub-query induced by `mask` as a standalone query with
    /// densely renumbered variables. Returns the sub-query and the map from
    /// new variable ids to the original ones.
    pub fn subquery(&self, mask: EdgeMask) -> (QueryGraph, Vec<VarId>) {
        let mut old_vars: Vec<VarId> = Vec::new();
        for i in mask.iter() {
            let e = self.edges[i];
            for v in [e.src, e.dst] {
                if !old_vars.contains(&v) {
                    old_vars.push(v);
                }
            }
        }
        old_vars.sort_unstable();
        let renumber = |v: VarId| old_vars.iter().position(|&x| x == v).unwrap() as VarId;
        let edges = mask
            .iter()
            .map(|i| {
                let e = self.edges[i];
                QueryEdge::new(renumber(e.src), renumber(e.dst), e.label)
            })
            .collect();
        (QueryGraph::new(old_vars.len() as VarId, edges), old_vars)
    }
}

impl fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q[{} vars;", self.num_vars)?;
        for (i, e) in self.edges.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(f, "{sep}a{}-{}->a{}", e.src, e.label, e.dst)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-path: a0 -0-> a1 -1-> a2.
    fn path3() -> QueryGraph {
        QueryGraph::new(3, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(1, 2, 1)])
    }

    /// Triangle: a0 -> a1 -> a2 -> a0, labels 0, 1, 2.
    fn triangle() -> QueryGraph {
        QueryGraph::new(
            3,
            vec![
                QueryEdge::new(0, 1, 0),
                QueryEdge::new(1, 2, 1),
                QueryEdge::new(2, 0, 2),
            ],
        )
    }

    #[test]
    fn vars_of_masks() {
        let q = path3();
        assert_eq!(q.vars_of(EdgeMask::single(0)), 0b011);
        assert_eq!(q.vars_of(EdgeMask::single(1)), 0b110);
        assert_eq!(q.all_vars(), 0b111);
    }

    #[test]
    fn connectivity_of_masks() {
        let q = QueryGraph::new(
            4,
            vec![
                QueryEdge::new(0, 1, 0),
                QueryEdge::new(2, 3, 1),
                QueryEdge::new(1, 2, 2),
            ],
        );
        // edges 0 and 1 alone are disconnected; adding edge 2 connects them.
        assert!(!q.is_connected_mask(EdgeMask::from_bits(0b011)));
        assert!(q.is_connected_mask(EdgeMask::from_bits(0b111)));
        assert!(q.is_connected_mask(EdgeMask::empty()));
        assert!(q.is_connected());
    }

    #[test]
    fn connected_subsets_of_triangle() {
        let q = triangle();
        let subs = q.connected_subsets();
        // every non-empty subset of a triangle is connected: 7 subsets.
        assert_eq!(subs.len(), 7);
        // ordered by cardinality
        assert!(subs.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn connected_subsets_of_disconnected_pairs() {
        let q = QueryGraph::new(
            4,
            vec![
                QueryEdge::new(0, 1, 0),
                QueryEdge::new(2, 3, 1),
                QueryEdge::new(1, 2, 2),
            ],
        );
        let subs = q.connected_subsets();
        // {0},{1},{2},{0,2},{1,2},{0,1,2} — but not {0,1}.
        assert_eq!(subs.len(), 6);
        assert!(!subs.contains(&EdgeMask::from_bits(0b011)));
    }

    #[test]
    fn subquery_renumbers_vars() {
        let q = path3();
        let (sub, vars) = q.subquery(EdgeMask::single(1));
        assert_eq!(sub.num_vars(), 2);
        assert_eq!(sub.edges(), &[QueryEdge::new(0, 1, 1)]);
        assert_eq!(vars, vec![1, 2]);
    }

    #[test]
    fn join_vars_of_path() {
        let q = path3();
        assert_eq!(q.join_vars(), vec![1]);
        assert_eq!(triangle().join_vars(), vec![0, 1, 2]);
    }

    #[test]
    fn degree_and_edges_at() {
        let q = triangle();
        assert_eq!(q.var_degree(0), 2);
        let at1: Vec<_> = q.edges_at(1).collect();
        assert_eq!(at1, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "references a variable")]
    fn out_of_range_var_panics() {
        QueryGraph::new(2, vec![QueryEdge::new(0, 5, 0)]);
    }

    #[test]
    fn display_is_readable() {
        let q = path3();
        let s = q.to_string();
        assert!(s.contains("a0-0->a1"));
        assert!(s.contains("a1-1->a2"));
    }

    #[test]
    fn connected_subsets_up_to_limits_size() {
        let q = triangle();
        let subs = q.connected_subsets_up_to(2);
        assert_eq!(subs.len(), 6); // 3 singletons + 3 pairs
    }
}
