//! Canonical hashing and isomorphism for whole query graphs.
//!
//! [`Pattern`](crate::Pattern) canonicalizes *small* patterns exactly by
//! brute force over variable permutations, which is only feasible up to
//! ~8 variables. Full workload queries go up to 13 variables (a 12-edge
//! path), so service-layer caches need a cheaper key: a **canonical hash**
//! that is invariant under variable renaming, computed by Weisfeiler–Leman
//! style color refinement. Two isomorphic queries always hash equal; rare
//! non-isomorphic collisions (e.g. WL-equivalent regular graphs) are
//! resolved by the exact [`QueryGraph::is_isomorphic`] check, so a cache
//! keyed by the hash and verified by isomorphism is exact.

use std::hash::Hasher;

use ceg_graph::hash::FxHasher;

use crate::query::QueryGraph;
use crate::VarId;

/// Hash a word sequence with the workspace's deterministic FxHash (no
/// per-process seed, so hashes are stable across runs and machines with
/// the same endianness conventions for `u64`).
fn mix(parts: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

/// One round of color refinement: a variable's next color summarizes its
/// current color plus the sorted multiset of (direction, label, neighbor
/// color) over incident edges. Self-loops get their own direction tag.
fn refine_round(q: &QueryGraph, colors: &[u64]) -> Vec<u64> {
    let n = q.num_vars() as usize;
    let mut next = vec![0u64; n];
    let mut sig: Vec<u64> = Vec::new();
    for (v, slot) in next.iter_mut().enumerate() {
        let v = v as VarId;
        sig.clear();
        for e in q.edges() {
            if e.src == v && e.dst == v {
                sig.push(mix(&[3, e.label as u64, colors[v as usize]]));
            } else if e.src == v {
                sig.push(mix(&[1, e.label as u64, colors[e.dst as usize]]));
            } else if e.dst == v {
                sig.push(mix(&[2, e.label as u64, colors[e.src as usize]]));
            }
        }
        sig.sort_unstable();
        let mut words = Vec::with_capacity(sig.len() + 1);
        words.push(colors[v as usize]);
        words.extend_from_slice(&sig);
        *slot = mix(&words);
    }
    next
}

/// Stable per-variable colors after full refinement (`num_vars` rounds —
/// refinement provably stabilizes within that many).
fn refined_colors(q: &QueryGraph) -> Vec<u64> {
    let n = q.num_vars() as usize;
    let mut colors = vec![0u64; n];
    for _ in 0..n {
        colors = refine_round(q, &colors);
    }
    colors
}

impl QueryGraph {
    /// A hash of the query invariant under variable renaming: isomorphic
    /// queries always collide, non-isomorphic ones almost never do (WL
    /// refinement cannot separate some regular graphs — pair the hash
    /// with [`QueryGraph::is_isomorphic`] where exactness matters).
    pub fn canonical_hash(&self) -> u64 {
        let colors = refined_colors(self);
        let mut edge_codes: Vec<u64> = self
            .edges()
            .iter()
            .map(|e| {
                mix(&[
                    colors[e.src as usize],
                    colors[e.dst as usize],
                    e.label as u64,
                ])
            })
            .collect();
        edge_codes.sort_unstable();
        // Sorted variable colors cover isolated variables, which have no
        // incident edges but still distinguish e.g. 1-var from 2-var
        // queries with the same edge list.
        let mut var_codes = colors;
        var_codes.sort_unstable();
        let mut words = vec![self.num_vars() as u64, self.num_edges() as u64];
        words.extend_from_slice(&var_codes);
        words.extend_from_slice(&edge_codes);
        mix(&words)
    }

    /// Exact isomorphism test (same pattern up to variable renaming,
    /// respecting edge direction, labels and multiplicities). Color
    /// refinement prunes the candidate mapping space, so workload-sized
    /// queries (≤ 13 variables) resolve in microseconds.
    pub fn is_isomorphic(&self, other: &QueryGraph) -> bool {
        if self.num_vars() != other.num_vars() || self.num_edges() != other.num_edges() {
            return false;
        }
        let ca = refined_colors(self);
        let cb = refined_colors(other);
        let mut sa = ca.clone();
        let mut sb = cb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        if sa != sb {
            return false;
        }
        // Sorted target edge list for the leaf check.
        let mut other_edges: Vec<(VarId, VarId, u64)> = other
            .edges()
            .iter()
            .map(|e| (e.src, e.dst, e.label as u64))
            .collect();
        other_edges.sort_unstable();

        let n = self.num_vars() as usize;
        // Assign high-degree variables first: they are the most
        // constrained, so dead branches die early.
        let mut order: Vec<VarId> = (0..self.num_vars()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.var_degree(v)));
        let mut mapping: Vec<Option<VarId>> = vec![None; n];
        let mut used = vec![false; n];
        self.search(
            other,
            &ca,
            &cb,
            &order,
            0,
            &mut mapping,
            &mut used,
            &other_edges,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        other: &QueryGraph,
        ca: &[u64],
        cb: &[u64],
        order: &[VarId],
        depth: usize,
        mapping: &mut Vec<Option<VarId>>,
        used: &mut Vec<bool>,
        other_edges: &[(VarId, VarId, u64)],
    ) -> bool {
        if depth == order.len() {
            // Full assignment: compare mapped edge multisets exactly.
            let mut mapped: Vec<(VarId, VarId, u64)> = self
                .edges()
                .iter()
                .map(|e| {
                    (
                        mapping[e.src as usize].unwrap(),
                        mapping[e.dst as usize].unwrap(),
                        e.label as u64,
                    )
                })
                .collect();
            mapped.sort_unstable();
            return mapped == other_edges;
        }
        let v = order[depth];
        for u in 0..other.num_vars() {
            if used[u as usize] || ca[v as usize] != cb[u as usize] {
                continue;
            }
            // Partial consistency: every self-edge between v and an
            // already-mapped variable must exist in `other` (presence
            // only; multiplicities are settled by the leaf check).
            let consistent = self.edges().iter().all(|e| {
                if !e.touches(v) {
                    return true;
                }
                let (ms, md) = (
                    if e.src == v {
                        Some(u)
                    } else {
                        mapping[e.src as usize]
                    },
                    if e.dst == v {
                        Some(u)
                    } else {
                        mapping[e.dst as usize]
                    },
                );
                match (ms, md) {
                    (Some(s), Some(d)) => other
                        .edges()
                        .iter()
                        .any(|oe| oe.src == s && oe.dst == d && oe.label == e.label),
                    _ => true,
                }
            });
            if !consistent {
                continue;
            }
            mapping[v as usize] = Some(u);
            used[u as usize] = true;
            if self.search(other, ca, cb, order, depth + 1, mapping, used, other_edges) {
                return true;
            }
            mapping[v as usize] = None;
            used[u as usize] = false;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::query::{QueryEdge, QueryGraph};
    use crate::templates;
    use crate::VarId;

    /// Relabel the variables of `q` by `perm` (old var -> new var).
    fn relabel(q: &QueryGraph, perm: &[VarId]) -> QueryGraph {
        let edges = q
            .edges()
            .iter()
            .map(|e| QueryEdge::new(perm[e.src as usize], perm[e.dst as usize], e.label))
            .collect();
        QueryGraph::new(q.num_vars(), edges)
    }

    #[test]
    fn hash_is_invariant_under_renaming() {
        let q = templates::path(4, &[0, 1, 0, 2]);
        let r = relabel(&q, &[4, 2, 0, 1, 3]);
        assert_ne!(q.edges(), r.edges());
        assert_eq!(q.canonical_hash(), r.canonical_hash());
        assert!(q.is_isomorphic(&r));
    }

    #[test]
    fn hash_is_invariant_for_cyclic_renaming() {
        let q = templates::cycle(5, &[0, 1, 2, 3, 4]);
        let r = relabel(&q, &[2, 3, 4, 0, 1]);
        assert_eq!(q.canonical_hash(), r.canonical_hash());
        assert!(q.is_isomorphic(&r));
    }

    #[test]
    fn near_miss_label_change_differs() {
        let q = templates::path(3, &[0, 1, 2]);
        let r = templates::path(3, &[0, 1, 3]);
        assert_ne!(q.canonical_hash(), r.canonical_hash());
        assert!(!q.is_isomorphic(&r));
    }

    #[test]
    fn near_miss_direction_flip_differs() {
        // chain a0 -0-> a1 -1-> a2 vs meet a0 -0-> a1 <-1- a2.
        let chain = QueryGraph::new(3, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(1, 2, 1)]);
        let meet = QueryGraph::new(3, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(2, 1, 1)]);
        assert_ne!(chain.canonical_hash(), meet.canonical_hash());
        assert!(!chain.is_isomorphic(&meet));
    }

    #[test]
    fn near_miss_structure_differs() {
        // star-3 vs path-3: same edge count and label multiset.
        let star = templates::star(3, &[0, 0, 0]);
        let path = templates::path(3, &[0, 0, 0]);
        assert_ne!(star.canonical_hash(), path.canonical_hash());
        assert!(!star.is_isomorphic(&path));
    }

    #[test]
    fn wl_collision_is_resolved_by_isomorphism() {
        // The classic 1-WL counterexample: two triangles vs a 6-cycle.
        // Every variable is 2-regular with identical labels, so color
        // refinement cannot separate them and the hashes collide — the
        // exact check must still tell them apart.
        let two_triangles = QueryGraph::new(
            6,
            vec![
                QueryEdge::new(0, 1, 0),
                QueryEdge::new(1, 2, 0),
                QueryEdge::new(2, 0, 0),
                QueryEdge::new(3, 4, 0),
                QueryEdge::new(4, 5, 0),
                QueryEdge::new(5, 3, 0),
            ],
        );
        let hexagon = templates::cycle(6, &[0, 0, 0, 0, 0, 0]);
        assert_eq!(two_triangles.canonical_hash(), hexagon.canonical_hash());
        assert!(!two_triangles.is_isomorphic(&hexagon));
        assert!(two_triangles.is_isomorphic(&relabel(&two_triangles, &[3, 4, 5, 0, 1, 2])));
    }

    #[test]
    fn multiplicity_matters() {
        // A doubled edge is not isomorphic to two distinct edges.
        let doubled = QueryGraph::new(2, vec![QueryEdge::new(0, 1, 0), QueryEdge::new(0, 1, 0)]);
        let single = QueryGraph::new(2, vec![QueryEdge::new(0, 1, 0)]);
        assert!(!doubled.is_isomorphic(&single));
    }

    #[test]
    fn isolated_variables_distinguish_queries() {
        let one_var = QueryGraph::new(1, vec![]);
        let two_vars = QueryGraph::new(2, vec![]);
        assert_ne!(one_var.canonical_hash(), two_vars.canonical_hash());
        assert!(!one_var.is_isomorphic(&two_vars));
        assert!(two_vars.is_isomorphic(&QueryGraph::new(2, vec![])));
    }
}
