// Fires `lock-discipline` exactly once: the `use` of a raw std lock.
// The later type position does not re-fire — the import is the finding.
use std::sync::Mutex;

struct Shared {
    inner: Mutex<u64>,
}
