// Fires `typed-reply` exactly once: only the second write is raw. The
// first goes through a `protocol::` constructor and is the idiom the
// lint exists to funnel everything into.
fn send<W: std::io::Write>(writer: &mut W, key: &str, value: u64) -> std::io::Result<()> {
    writeln!(writer, "{}", crate::protocol::format_metric_line(key, value))?;
    writeln!(writer, "END")
}
