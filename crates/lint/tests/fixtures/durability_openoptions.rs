// Fires `durability-seam` exactly once: any `OpenOptions` mention in
// non-test code — append-mode side channels are exactly how WAL writes
// escape the `vfs::Storage` fault-injection seam.
fn append(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).create(true).open(path)
}
