// Fires `durability-seam` exactly once: a direct `File::create` that
// fault injection can never see.
fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)
}
