// Fires `panic-path` exactly once: slice indexing. The `[u32]` in the
// signature and the `[0u8; 4]` array literal are types/literals, not
// index expressions, and must stay silent.
fn first(values: &[u32]) -> u32 {
    let _scratch = [0u8; 4];
    values[0]
}
