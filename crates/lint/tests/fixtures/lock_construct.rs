// Fires `lock-discipline` exactly once: fully-qualified construction
// of a raw std lock, with no `use` to catch it earlier.
fn make() -> i64 {
    let m = std::sync::Mutex::new(7);
    m.into_inner().unwrap_or(0)
}
