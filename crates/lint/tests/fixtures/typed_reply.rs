// Fires `typed-reply` exactly once: a handler writing a hand-rolled
// reply line instead of going through a `protocol::` constructor.
fn send_ok<W: std::io::Write>(writer: &mut W, count: usize) -> std::io::Result<()> {
    writeln!(writer, "OK {count}")
}
