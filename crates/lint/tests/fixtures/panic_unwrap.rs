// Fires `panic-path` exactly once: `.unwrap()` on a request path.
fn handle(arg: Option<u32>) -> u32 {
    arg.unwrap()
}
