// Fires `lock-discipline` exactly once — inside `#[cfg(test)]` code.
// Unlike `panic-path`, the lock lint has no test exemption: a raw lock
// in a test can still deadlock the suite and proves nothing about the
// ranked-order invariant.
#[cfg(test)]
mod tests {
    #[test]
    fn shared_state() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read().unwrap_or_else(|e| e.into_inner()), 5);
    }
}
