// Fires `panic-path` exactly once: an `unreachable!` the author merely
// believes in. A comment or string mentioning panic! must not count.
fn route(cmd: &str) -> &'static str {
    match cmd {
        "ESTIMATE" => "estimate",
        _ => unreachable!("parser only yields known commands"),
    }
}
