// Fires `panic-path` exactly once: `.expect()` on a request path.
// The message string is opaque to the lexer — nothing inside it can
// fire or suppress anything.
fn parse(line: &str) -> u64 {
    line.trim().parse().expect("malformed line: unwrap() would be just as bad")
}
