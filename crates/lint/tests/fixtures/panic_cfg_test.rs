// Fires `panic-path` exactly once: the unwrap in `lookup`. The
// identical unwrap inside `#[cfg(test)]` is exempt — tests may assert.
fn lookup(map: &std::collections::HashMap<u32, u32>, key: u32) -> u32 {
    *map.get(&key).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
