//! The lint acceptance corpus: every file in `tests/fixtures/` is a
//! known-bad (or deliberately mixed) snippet that must fire **exactly
//! one** diagnostic of a specific lint when scanned as if it lived at a
//! request-path location — plus allowlist-hygiene cases and the
//! whole-repo clean run.
//!
//! The fixtures are excluded from the real tree walk (see
//! `ceg_lint::run`), so they never dirty `cargo xtask lint` itself.

use ceg_lint::allowlist;
use ceg_lint::{lint_source, Diagnostic};

/// Assert `src` fires exactly one diagnostic, of lint `want`, when
/// scanned at the pretend repo-relative path `rel`.
fn expect_one(rel: &str, src: &str, want: &str) -> Diagnostic {
    let diags = lint_source(rel, src);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one `{want}` diagnostic at {rel}, got {}: {:#?}",
        diags.len(),
        diags
    );
    assert_eq!(diags[0].lint, want, "wrong lint fired: {}", diags[0]);
    diags[0].clone()
}

// A pretend path per lint scope (see `ceg_lint::classify`):
// catalog = lock only; service = lock+panic+durability;
// server.rs = all of those plus typed-reply; graph = lock+durability.
const LOCK_ONLY: &str = "crates/catalog/src/fixture.rs";
const SERVICE: &str = "crates/service/src/fixture.rs";
const SERVER: &str = "crates/service/src/server.rs";
const GRAPH: &str = "crates/graph/src/fixture.rs";

#[test]
fn lock_discipline_catches_raw_imports() {
    let d = expect_one(
        LOCK_ONLY,
        include_str!("fixtures/lock_use.rs"),
        "lock-discipline",
    );
    assert!(
        d.msg.contains("OrderedMutex"),
        "diagnostic names the fix: {d}"
    );
}

#[test]
fn lock_discipline_catches_qualified_construction() {
    let d = expect_one(
        LOCK_ONLY,
        include_str!("fixtures/lock_construct.rs"),
        "lock-discipline",
    );
    assert_eq!(d.func, "make", "finding is attributed to its function: {d}");
}

#[test]
fn lock_discipline_has_no_test_exemption() {
    expect_one(
        LOCK_ONLY,
        include_str!("fixtures/lock_rwlock_in_test.rs"),
        "lock-discipline",
    );
}

#[test]
fn panic_path_catches_unwrap() {
    let d = expect_one(
        SERVICE,
        include_str!("fixtures/panic_unwrap.rs"),
        "panic-path",
    );
    assert_eq!(d.func, "handle");
}

#[test]
fn panic_path_catches_expect_and_ignores_strings() {
    // The expect message itself says `unwrap()`; only the call fires.
    expect_one(
        SERVICE,
        include_str!("fixtures/panic_expect.rs"),
        "panic-path",
    );
}

#[test]
fn panic_path_catches_panic_macros() {
    let d = expect_one(
        SERVICE,
        include_str!("fixtures/panic_macro.rs"),
        "panic-path",
    );
    assert!(d.msg.contains("unreachable!"), "{d}");
}

#[test]
fn panic_path_catches_indexing_not_array_types() {
    let d = expect_one(
        SERVICE,
        include_str!("fixtures/panic_index.rs"),
        "panic-path",
    );
    assert!(d.msg.contains("indexing"), "{d}");
}

#[test]
fn panic_path_exempts_cfg_test_items() {
    // Two identical unwraps; only the non-test one fires.
    let d = expect_one(
        SERVICE,
        include_str!("fixtures/panic_cfg_test.rs"),
        "panic-path",
    );
    assert_eq!(
        d.func, "lookup",
        "the test-module unwrap must stay exempt: {d}"
    );
}

#[test]
fn typed_reply_catches_raw_writes() {
    expect_one(
        SERVER,
        include_str!("fixtures/typed_reply.rs"),
        "typed-reply",
    );
}

#[test]
fn typed_reply_accepts_protocol_constructors() {
    // One funneled write, one raw: exactly the raw one fires.
    let d = expect_one(
        SERVER,
        include_str!("fixtures/typed_reply_mixed.rs"),
        "typed-reply",
    );
    assert_eq!(
        d.line, 6,
        "the protocol-funneled write on line 5 must pass: {d}"
    );
}

#[test]
fn durability_seam_catches_file_create() {
    expect_one(
        GRAPH,
        include_str!("fixtures/durability_create.rs"),
        "durability-seam",
    );
}

#[test]
fn durability_seam_catches_open_options() {
    expect_one(
        GRAPH,
        include_str!("fixtures/durability_openoptions.rs"),
        "durability-seam",
    );
}

#[test]
fn typed_reply_only_applies_to_connection_handlers() {
    // The same raw write outside server.rs is not a reply; nothing fires.
    let diags = lint_source(SERVICE, include_str!("fixtures/typed_reply.rs"));
    assert!(
        diags.is_empty(),
        "typed-reply leaked outside server.rs: {diags:#?}"
    );
}

// ---- allowlist hygiene -------------------------------------------------

#[test]
fn allowlist_suppresses_justified_entries() {
    let list = allowlist::parse(
        "ceg-lint.allow",
        "# unwrap is fine here because reasons\npanic-path fixture.rs handle\n",
    );
    let raw = lint_source(SERVICE, include_str!("fixtures/panic_unwrap.rs"));
    let out = allowlist::apply("ceg-lint.allow", &list, raw, true);
    assert!(
        out.is_empty(),
        "justified entry must suppress cleanly: {out:#?}"
    );
}

#[test]
fn allowlist_unjustified_entry_is_itself_a_diagnostic() {
    // The suppression still applies — but the missing comment fires
    // exactly one `allowlist` diagnostic, so the run cannot go green.
    let list = allowlist::parse("ceg-lint.allow", "panic-path fixture.rs handle\n");
    let raw = lint_source(SERVICE, include_str!("fixtures/panic_unwrap.rs"));
    let out = allowlist::apply("ceg-lint.allow", &list, raw, true);
    assert_eq!(out.len(), 1, "{out:#?}");
    assert_eq!(out[0].lint, "allowlist");
    assert!(out[0].msg.contains("no justification"), "{}", out[0]);
}

#[test]
fn allowlist_stale_entry_is_reported() {
    let list = allowlist::parse(
        "ceg-lint.allow",
        "# this code was fixed long ago\npanic-path nonexistent.rs gone\n",
    );
    let out = allowlist::apply("ceg-lint.allow", &list, Vec::new(), true);
    assert_eq!(out.len(), 1, "{out:#?}");
    assert!(out[0].msg.contains("stale"), "{}", out[0]);
}

#[test]
fn allowlist_comment_justifies_its_contiguous_block_only() {
    let text = "# covers both lines below\n\
                panic-path a.rs f\n\
                panic-path b.rs g\n\
                \n\
                panic-path c.rs h\n";
    let list = allowlist::parse("ceg-lint.allow", text);
    let justified: Vec<bool> = list.entries.iter().map(|e| e.justified).collect();
    assert_eq!(justified, [true, true, false]);
}

#[test]
fn allowlist_wildcard_matches_whole_file() {
    let list = allowlist::parse(
        "ceg-lint.allow",
        "# the whole fixture is exempt\npanic-path fixture.rs *\n",
    );
    let raw = lint_source(SERVICE, include_str!("fixtures/panic_cfg_test.rs"));
    let out = allowlist::apply("ceg-lint.allow", &list, raw, true);
    assert!(out.is_empty(), "{out:#?}");
}

// ---- the acceptance bar ------------------------------------------------

#[test]
fn whole_repo_is_clean() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = ceg_lint::find_repo_root(here).expect("workspace root above crates/lint");
    let (diags, scanned) = ceg_lint::run(&root).expect("lint run");
    assert!(
        diags.is_empty(),
        "`cargo xtask lint` must exit clean on the tree:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        scanned > 50,
        "walk found only {scanned} files — wrong root?"
    );
}
