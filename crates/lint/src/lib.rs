//! # ceg-lint
//!
//! Project-specific static analysis for the CEG workspace, run as
//! `cargo xtask lint` (or `cegcli lint`). Four lints, each enforcing an
//! invariant the service's PRs established by convention:
//!
//! | lint | invariant |
//! |---|---|
//! | `lock-discipline` | no raw `std::sync::{Mutex,RwLock}` outside `ceg-core`/`vendor` — all locks carry a `ceg_core::sync::LockRank` |
//! | `panic-path` | no `unwrap`/`expect`/panic macros/indexing in non-test request-path code |
//! | `typed-reply` | connection handlers write only through `protocol::` constructors |
//! | `durability-seam` | no direct `File::create`/`OpenOptions` in `ceg-graph`/`ceg-service` — writes go through `vfs::Storage` |
//!
//! Exceptions live in `ceg-lint.allow` at the repo root; every entry
//! needs a justification comment and entries that stop suppressing
//! anything are reported as stale (see [`allowlist`]).
//!
//! The scanner is a token-stream pass over a purpose-built lexer
//! ([`lexer`]) — no `syn`, no registry dependencies, so the tool builds
//! offline with the rest of the workspace.

pub mod allowlist;
pub mod lexer;
pub mod lints;

use std::path::{Path, PathBuf};

pub use lints::{Diagnostic, LintSet};

/// Name of the allowlist file at the repo root.
pub const ALLOW_FILE: &str = "ceg-lint.allow";

/// Which lints apply to a repo-relative (forward-slash) path.
///
/// * `lock-discipline` — everywhere except `ceg-core` (whose `sync`
///   module physically lives in `crates/graph/src/sync.rs` and is
///   allowlisted there) and the vendored stand-ins;
/// * `panic-path` — the service crate (handlers, protocol/client
///   parsers) plus the WAL and snapshot codecs that parse on-disk
///   bytes;
/// * `typed-reply` — the connection handlers in `server.rs`;
/// * `durability-seam` — everything in `ceg-graph`/`ceg-service`.
pub fn classify(rel: &str) -> LintSet {
    if !rel.ends_with(".rs") {
        return LintSet::default();
    }
    LintSet {
        lock: !rel.starts_with("crates/core/") && !rel.starts_with("vendor/"),
        panic: rel.starts_with("crates/service/src/")
            || rel == "crates/graph/src/wal.rs"
            || rel == "crates/graph/src/snapshot.rs",
        typed_reply: rel == "crates/service/src/server.rs",
        durability: rel.starts_with("crates/graph/src/") || rel.starts_with("crates/service/src/"),
    }
}

/// Lint one source text as if it lived at `rel` (repo-relative path),
/// with no allowlist. The fixture tests drive this directly.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    lints::lint_source(rel, src, classify(rel))
}

/// Run the whole-tree lint from `root`. Returns the surviving
/// diagnostics (empty = clean) and the number of files scanned.
pub fn run(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let allow_text = std::fs::read_to_string(root.join(ALLOW_FILE)).unwrap_or_default();
    let allow = allowlist::parse(ALLOW_FILE, &allow_text);
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut raw = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let set = classify(&rel);
        if !set.any() {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        scanned += 1;
        raw.extend(lints::lint_source(&rel, &src, set));
    }
    let mut out = allowlist::apply(ALLOW_FILE, &allow, raw, true);
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok((out, scanned))
}

/// Directories never scanned: build output, VCS metadata, the vendored
/// stand-ins (reference code we do not own), and the lint's own
/// deliberately-bad fixture corpus.
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "target" | ".git" | ".claude" | "vendor") || rel == "crates/lint/tests/fixtures"
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if !skip_dir(&rel) {
                walk(root, &path, out)?;
            }
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// CLI entry point shared by `cargo xtask lint` and `cegcli lint`:
/// prints diagnostics to stderr and returns the process exit code
/// (0 = clean, 1 = diagnostics, 2 = could not run).
pub fn lint_main() -> i32 {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ceg-lint: cannot determine current directory: {e}");
            return 2;
        }
    };
    let Some(root) = find_repo_root(&cwd) else {
        eprintln!("ceg-lint: no workspace root found above {}", cwd.display());
        return 2;
    };
    match run(&root) {
        Ok((diags, scanned)) if diags.is_empty() => {
            println!("ceg-lint: {scanned} files clean");
            0
        }
        Ok((diags, _)) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("ceg-lint: {} diagnostic(s)", diags.len());
            1
        }
        Err(e) => {
            eprintln!("ceg-lint: {e}");
            2
        }
    }
}
