//! A minimal Rust lexer for token-stream lint scanning.
//!
//! No syntax tree, no external crates: the lints only need identifiers
//! and punctuation with line numbers, with string/char literals and
//! comments reliably skipped so `"unwrap()"` inside a message or a doc
//! example never fires a diagnostic. The grammar subset handled here is
//! exactly what a lexer must get right to avoid *mis-tokenizing* real
//! code: nested block comments, raw strings with arbitrary `#` fences,
//! byte strings, raw identifiers, and the `'a` lifetime vs `'a'`
//! char-literal ambiguity.

/// One token of interest to the lints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `fn`, `Mutex`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `[`, `{`, ...).
    Punct(char),
    /// Any literal: string, raw string, char, byte, or number. The
    /// contents are deliberately dropped — literal text must never
    /// match a lint pattern.
    Literal,
    /// A lifetime (`'a`) — distinct from [`Tok::Punct`] so the
    /// indexing lint can tell `&'a [u8]` from `buf[i]`.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenize `src`, skipping comments and collapsing literals.
pub fn lex(src: &str) -> Vec<Spanned> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = line;
                i = skip_string(&b, i, &mut line);
                out.push(Spanned {
                    tok: Tok::Literal,
                    line: start,
                });
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`, `'('`).
                let start = line;
                if b.get(i + 1).is_some_and(|&c| is_ident_start(c)) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if b.get(j) == Some(&'\'') {
                        // 'a' — a char literal.
                        i = j + 1;
                        out.push(Spanned {
                            tok: Tok::Literal,
                            line: start,
                        });
                    } else {
                        // 'a — a lifetime (no closing quote).
                        i = j;
                        out.push(Spanned {
                            tok: Tok::Lifetime,
                            line: start,
                        });
                    }
                } else {
                    // Escaped or punctuation char literal.
                    i += 1;
                    if b.get(i) == Some(&'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.push(Spanned {
                        tok: Tok::Literal,
                        line: start,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = line;
                i += 1;
                while i < b.len() {
                    if is_ident_continue(b[i]) {
                        i += 1;
                    } else if b[i] == '.' && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        // `1.5` continues the literal; `0..n` does not.
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Literal,
                    line: start,
                });
            }
            c if is_ident_start(c) => {
                let start_line = line;
                // Raw strings / byte strings / raw idents share the
                // `r`/`b` prefix with plain identifiers.
                if (c == 'r' || c == 'b')
                    && matches!(b.get(i + 1), Some(&'"') | Some(&'#'))
                    && raw_prefix_is_string(&b, i)
                {
                    i = skip_raw_or_prefixed_string(&b, i, &mut line);
                    out.push(Spanned {
                        tok: Tok::Literal,
                        line: start_line,
                    });
                    continue;
                }
                if c == 'b' && b.get(i + 1) == Some(&'\'') {
                    // Byte literal b'x'.
                    i += 2;
                    if b.get(i) == Some(&'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.push(Spanned {
                        tok: Tok::Literal,
                        line: start_line,
                    });
                    continue;
                }
                // `r#type` is the raw identifier `type`.
                if c == 'r'
                    && b.get(i + 1) == Some(&'#')
                    && b.get(i + 2).is_some_and(|&c| is_ident_start(c))
                {
                    i += 2;
                }
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line: start_line,
                });
            }
            other => {
                out.push(Spanned {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Is the `r`/`b` at `i` the start of a raw/byte string rather than an
/// identifier like `r#type` (raw ident) or a lone `r` variable?
fn raw_prefix_is_string(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if b.get(j) == Some(&'"') {
        return true;
    }
    // r#..#" — any run of fences then a quote is a raw string; a raw
    // *identifier* is `r#` followed by an ident start.
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    j > i + 1 && b.get(j) == Some(&'"')
}

/// Skip a plain `"..."` string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##` starting at the
/// prefix letter.
fn skip_raw_or_prefixed_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
        raw |= b[i] == 'r';
        i += 1;
    }
    let mut fences = 0usize;
    while b.get(i) == Some(&'#') {
        fences += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&'"'));
    i += 1;
    if !raw && fences == 0 {
        // b"..." — escapes apply.
        while i < b.len() {
            match b[i] {
                '\\' => i += 2,
                '"' => return i + 1,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw: ends at `"` followed by `fences` hashes; no escapes.
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(fences)
                .filter(|&&c| c == '#')
                .count()
                == fences
        {
            return i + 1 + fences;
        }
        if b[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // unwrap() in a line comment
            /* panic! in /* a nested */ block */
            let a = "unwrap() in a string";
            let b = r#"panic! in a raw string"#;
            let c = 'x';
            real_ident();
        "##;
        let names = idents(src);
        assert!(names.contains(&"real_ident".to_string()));
        assert!(!names.iter().any(|n| n == "unwrap" || n == "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("&'a [u8] vs 'x' vs b'\\n'");
        assert!(toks.iter().any(|s| s.tok == Tok::Lifetime));
        assert_eq!(
            toks.iter().filter(|s| s.tok == Tok::Literal).count(),
            2,
            "both char/byte literals collapse, the lifetime does not"
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/*\n\n*/\nb \"x\ny\" c";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|s| s.tok == Tok::Ident(name.into()))
                .map(|s| s.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(5));
        assert_eq!(line_of("c"), Some(6));
    }

    #[test]
    fn range_from_integer_keeps_following_ident() {
        let names = idents("&buf[0..len]");
        assert!(names.contains(&"len".to_string()));
        assert!(names.contains(&"buf".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        assert_eq!(idents("r#type r tail"), vec!["type", "r", "tail"]);
    }
}
