//! The checked-in panic/lint allowlist (`ceg-lint.allow` at the repo
//! root).
//!
//! Grammar, one entry per line:
//!
//! ```text
//! # Why this exception is sound (required — the justification).
//! <lint-id> <path-suffix> <fn-name|*>
//! ```
//!
//! An entry suppresses diagnostics of `lint-id` in files whose
//! repo-relative path ends with `path-suffix`, inside function
//! `fn-name` (`*` matches the whole file). Policy, enforced
//! mechanically by the runner:
//!
//! * every entry must carry a justification: a `#` comment line above
//!   it, which also covers any further entries in the same contiguous
//!   block (a blank line ends the block). An unjustified entry is
//!   itself a diagnostic — the suppression still applies, so fixing
//!   the comment is the only way to get a clean run;
//! * an entry that suppressed nothing during a whole-tree run is
//!   *stale* and is reported, so the allowlist can only shrink when
//!   the code improves.

use crate::lints::{Diagnostic, ALLOWLIST};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub lint: String,
    /// Path suffix matched against the diagnostic's repo-relative path.
    pub path: String,
    /// Function name, or `*` for the whole file.
    pub func: String,
    /// In a contiguous block headed by at least one `#` comment line.
    pub justified: bool,
    /// 1-based line in the allowlist file.
    pub line: u32,
}

impl Entry {
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.lint == d.lint
            && (d.path == self.path || d.path.ends_with(&format!("/{}", self.path)))
            && (self.func == "*" || self.func == d.func)
    }
}

/// The parsed allowlist plus any malformed-line diagnostics.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<Entry>,
    pub errors: Vec<Diagnostic>,
}

/// Parse allowlist text. `file` is the repo-relative path reported in
/// hygiene diagnostics.
pub fn parse(file: &str, text: &str) -> Allowlist {
    let mut list = Allowlist::default();
    // True from a `#` comment line until the next blank line: the
    // comment justifies every entry in its contiguous block.
    let mut block_justified = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.is_empty() {
            block_justified = false;
            continue;
        }
        if line.starts_with('#') {
            block_justified = true;
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            list.errors.push(Diagnostic {
                lint: ALLOWLIST,
                path: file.to_string(),
                line: lineno,
                func: String::new(),
                msg: format!(
                    "malformed entry (expected `<lint-id> <path-suffix> <fn|*>`): `{line}`"
                ),
            });
            continue;
        }
        list.entries.push(Entry {
            lint: fields[0].to_string(),
            path: fields[1].to_string(),
            func: fields[2].to_string(),
            justified: block_justified,
            line: lineno,
        });
    }
    list
}

/// Apply the allowlist: returns the surviving diagnostics plus hygiene
/// findings (unjustified entries always; stale entries only when
/// `check_stale`, i.e. on whole-tree runs — a single-file run cannot
/// know what the rest of the tree needs).
pub fn apply(
    file: &str,
    list: &Allowlist,
    diags: Vec<Diagnostic>,
    check_stale: bool,
) -> Vec<Diagnostic> {
    let mut used = vec![false; list.entries.len()];
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| match list.entries.iter().position(|e| e.matches(d)) {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        })
        .collect();
    out.extend(list.errors.iter().cloned());
    for (i, entry) in list.entries.iter().enumerate() {
        if !entry.justified {
            out.push(Diagnostic {
                lint: ALLOWLIST,
                path: file.to_string(),
                line: entry.line,
                func: String::new(),
                msg: format!(
                    "entry `{} {} {}` has no justification comment; explain why the \
                     exception is sound on the `#` line above it",
                    entry.lint, entry.path, entry.func
                ),
            });
        }
        if check_stale && !used[i] {
            out.push(Diagnostic {
                lint: ALLOWLIST,
                path: file.to_string(),
                line: entry.line,
                func: String::new(),
                msg: format!(
                    "stale entry `{} {} {}`: it no longer suppresses anything — delete it",
                    entry.lint, entry.path, entry.func
                ),
            });
        }
    }
    out
}
