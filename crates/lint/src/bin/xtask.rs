//! The workspace task runner. One task so far:
//!
//! ```text
//! cargo xtask lint    # project-specific static analysis (see ceg-lint)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("lint") => std::process::exit(ceg_lint::lint_main()),
        Some("--help") | Some("-h") | Some("help") => {
            println!("usage: cargo xtask <task>\n\ntasks:\n  lint    run the ceg-lint static-analysis pass over the tree");
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `cargo xtask lint`)");
            std::process::exit(2);
        }
    }
}
