//! The four project-specific lints, run in one forward pass over a
//! file's token stream.
//!
//! Scope tracking (brace depth, enclosing function, `#[cfg(test)]` /
//! `#[test]` exemption) is shared by all lints; which lints apply to a
//! file is decided by [`crate::classify`] from its repo-relative path.

use crate::lexer::{lex, Spanned, Tok};

/// Which lints apply to one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintSet {
    /// `lock-discipline`: no raw `std::sync::{Mutex,RwLock}`.
    pub lock: bool,
    /// `panic-path`: no `unwrap`/`expect`/panic macros/indexing in
    /// non-test request-path code.
    pub panic: bool,
    /// `typed-reply`: `write!`/`writeln!` must go through `protocol::`.
    pub typed_reply: bool,
    /// `durability-seam`: no direct `File::create`/`OpenOptions`.
    pub durability: bool,
}

impl LintSet {
    pub fn any(&self) -> bool {
        self.lock || self.panic || self.typed_reply || self.durability
    }
}

/// One finding: which lint fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint identifier (`lock-discipline`, `panic-path`, `typed-reply`,
    /// `durability-seam`, or `allowlist` for allowlist hygiene).
    pub lint: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Name of the enclosing function (empty outside any function) —
    /// the granularity allowlist entries match on.
    pub func: String,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.msg
        )?;
        if !self.func.is_empty() {
            write!(f, " (in fn `{}`)", self.func)?;
        }
        Ok(())
    }
}

pub const LOCK: &str = "lock-discipline";
pub const PANIC: &str = "panic-path";
pub const TYPED_REPLY: &str = "typed-reply";
pub const DURABILITY: &str = "durability-seam";
pub const ALLOWLIST: &str = "allowlist";

/// Keywords that may legally precede a `[` without it being an index
/// expression (`return [a, b]`, `match [x] { .. }`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "break", "in", "else", "match", "if", "while", "loop", "move", "ref", "mut", "box",
    "as", "dyn", "impl", "where", "const", "static", "type", "let", "pub", "use", "mod", "fn",
    "struct", "enum", "trait",
];

/// Run the lints enabled in `set` over `src`, reporting findings
/// against `path` (a repo-relative, forward-slash path).
pub fn lint_source(path: &str, src: &str, set: LintSet) -> Vec<Diagnostic> {
    if !set.any() {
        return Vec::new();
    }
    let toks = lex(src);
    let mut out = Vec::new();
    let mut st = Scope::default();
    let mut i = 0usize;
    while i < toks.len() {
        // Attributes are consumed wholesale: their contents must not
        // reach the matchers (`#[should_panic]`, `#[allow(...)]`), and
        // a `test` attribute exempts the item that follows.
        if toks[i].tok == Tok::Punct('#') {
            let open = if toks.get(i + 1).map(|s| &s.tok) == Some(&Tok::Punct('!')) {
                i + 2
            } else {
                i + 1
            };
            if toks.get(open).map(|s| &s.tok) == Some(&Tok::Punct('[')) {
                let (end, is_test) = scan_attribute(&toks, open);
                st.pending_test |= is_test;
                i = end;
                continue;
            }
        }
        match &toks[i].tok {
            Tok::Punct('{') => {
                st.depth += 1;
                if let Some(name) = st.pending_fn.take() {
                    st.fns.push((name, st.depth));
                }
                if st.pending_test {
                    st.pending_test = false;
                    st.tests.push(st.depth);
                }
            }
            Tok::Punct('}') => {
                while st.fns.last().is_some_and(|&(_, d)| d >= st.depth) {
                    st.fns.pop();
                }
                while st.tests.last().is_some_and(|&d| d >= st.depth) {
                    st.tests.pop();
                }
                st.depth = st.depth.saturating_sub(1);
            }
            Tok::Punct(';') if st.brackets == 0 => {
                // A braceless item ends: `#[cfg(test)] use x;`, a trait
                // method declaration, a `use` statement. The bracket
                // guard keeps the `;` of an array type (`[u8; 8]` in a
                // signature) from ending the pending `fn`.
                st.pending_test = false;
                st.pending_fn = None;
                st.in_use = false;
                st.use_saw_std = false;
                st.use_saw_sync = false;
                st.use_has_std_sync = false;
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "fn" => {
                        if let Some(Tok::Ident(fname)) = toks.get(i + 1).map(|s| &s.tok) {
                            st.pending_fn = Some(fname.clone());
                        }
                    }
                    "use" => {
                        st.in_use = true;
                        st.use_saw_std = false;
                        st.use_saw_sync = false;
                        st.use_has_std_sync = false;
                    }
                    "std" | "sync" if st.in_use => {
                        // Cheap over-approximation: both idents seen
                        // anywhere in one `use` statement. The only
                        // workspace path that is not `std::sync` but
                        // matches is `ceg_core::sync`, which exports no
                        // `Mutex`/`RwLock` names.
                        st.use_saw_std |= name == "std";
                        st.use_saw_sync |= name == "sync";
                        st.use_has_std_sync = st.use_saw_std && st.use_saw_sync;
                    }
                    _ => {}
                }
                run_matchers(&toks, i, &st, set, path, &mut out);
            }
            Tok::Punct('[') => {
                st.brackets += 1;
                if set.panic && !st.in_test() && is_index_expr(&toks, i) {
                    out.push(Diagnostic {
                        lint: PANIC,
                        path: path.to_string(),
                        line: toks[i].line,
                        func: st.fn_name(),
                        msg: "slice/array indexing can panic on a request path; use `.get()` \
                              and handle `None`"
                            .into(),
                    });
                }
            }
            Tok::Punct(']') => st.brackets = st.brackets.saturating_sub(1),
            _ => {}
        }
        i += 1;
    }
    out
}

#[derive(Default)]
struct Scope {
    depth: u32,
    /// `[`/`]` nesting, so the `;` of an array type does not end items.
    brackets: u32,
    /// `(name, body depth)` for each enclosing `fn`.
    fns: Vec<(String, u32)>,
    /// Depths at which a `#[test]`/`#[cfg(test)]` item's body started.
    tests: Vec<u32>,
    pending_fn: Option<String>,
    pending_test: bool,
    in_use: bool,
    use_saw_std: bool,
    use_saw_sync: bool,
    use_has_std_sync: bool,
}

impl Scope {
    fn in_test(&self) -> bool {
        !self.tests.is_empty()
    }

    fn fn_name(&self) -> String {
        self.fns.last().map(|(n, _)| n.clone()).unwrap_or_default()
    }
}

/// Consume one `[...]` attribute starting at the opening bracket.
/// Returns the index just past the closing bracket and whether the
/// attribute marks test-only code (`test` appears without `not`, so
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, unix))]` count and
/// `#[cfg(not(test))]` does not).
fn scan_attribute(toks: &[Spanned], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, saw_test && !saw_not);
                }
            }
            Tok::Ident(name) if name == "test" => saw_test = true,
            Tok::Ident(name) if name == "not" => saw_not = true,
            _ => {}
        }
        i += 1;
    }
    (i, false)
}

/// Is the `[` at `i` a postfix index expression (`expr[...]`) rather
/// than an array/slice type or literal?
fn is_index_expr(toks: &[Spanned], i: usize) -> bool {
    match toks.get(i.wrapping_sub(1)).map(|s| &s.tok) {
        Some(Tok::Ident(prev)) => !NON_INDEX_KEYWORDS.contains(&prev.as_str()),
        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('?')) => true,
        _ => false,
    }
}

fn run_matchers(
    toks: &[Spanned],
    i: usize,
    st: &Scope,
    set: LintSet,
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let Tok::Ident(name) = &toks[i].tok else {
        return;
    };
    let diag = |lint: &'static str, msg: String| Diagnostic {
        lint,
        path: path.to_string(),
        line: toks[i].line,
        func: st.fn_name(),
        msg,
    };
    let prev = |k: usize| toks.get(i.wrapping_sub(k)).map(|s| &s.tok);
    let next = |k: usize| toks.get(i + k).map(|s| &s.tok);
    let is_punct = |t: Option<&Tok>, c: char| t == Some(&Tok::Punct(c));
    let is_ident = |t: Option<&Tok>, s: &str| matches!(t, Some(Tok::Ident(n)) if n == s);

    if set.lock && (name == "Mutex" || name == "RwLock") {
        let via_use = st.in_use && st.use_has_std_sync;
        let via_path =
            is_ident(prev(3), "sync") && is_punct(prev(2), ':') && is_punct(prev(1), ':');
        let via_new = is_punct(next(1), ':') && is_punct(next(2), ':') && is_ident(next(3), "new");
        if via_use || via_path || via_new {
            out.push(diag(
                LOCK,
                format!(
                    "raw `std::sync::{name}` outside `ceg-core`; use \
                     `ceg_core::sync::Ordered{name}` with a declared `LockRank`"
                ),
            ));
        }
    }

    if set.panic && !st.in_test() {
        if (name == "unwrap" || name == "expect")
            && is_punct(prev(1), '.')
            && is_punct(next(1), '(')
        {
            out.push(diag(
                PANIC,
                format!("`.{name}()` on a request path; return a typed error instead"),
            ));
        }
        if matches!(
            name.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && is_punct(next(1), '!')
        {
            out.push(diag(
                PANIC,
                format!("`{name}!` on a request path; return a typed error instead"),
            ));
        }
    }

    if set.typed_reply
        && !st.in_test()
        && (name == "write" || name == "writeln")
        && is_punct(next(1), '!')
        && is_punct(next(2), '(')
        && !macro_args_use_protocol(toks, i + 2)
    {
        out.push(diag(
            TYPED_REPLY,
            format!(
                "`{name}!` writes a reply line without a `protocol::` constructor; \
                 every byte on the wire must come from the typed reply grammar"
            ),
        ));
    }

    if set.durability && !st.in_test() {
        if name == "File"
            && is_punct(next(1), ':')
            && is_punct(next(2), ':')
            && is_ident(next(3), "create")
        {
            out.push(diag(
                DURABILITY,
                "direct `File::create`; route writes through `vfs::Storage` so fault \
                 injection covers them"
                    .into(),
            ));
        }
        if name == "OpenOptions" {
            out.push(diag(
                DURABILITY,
                "direct `OpenOptions`; route writes through `vfs::Storage` so fault \
                 injection covers them"
                    .into(),
            ));
        }
    }
}

/// Scan a macro's argument list (starting at its opening paren) for
/// evidence the payload came from the typed reply grammar: a
/// `protocol` path segment or a `.format(` call on a typed response.
fn macro_args_use_protocol(toks: &[Spanned], open: usize) -> bool {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(name) if name == "protocol" => return true,
            Tok::Ident(name)
                if name == "format"
                    && toks.get(i.wrapping_sub(1)).map(|s| &s.tok) == Some(&Tok::Punct('.')) =>
            {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}
