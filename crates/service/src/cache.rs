//! LRU estimate cache keyed by renaming-invariant canonical query hashes.
//!
//! Repeated traffic is dominated by the same (or isomorphic) queries; a
//! warm service should answer those without touching the catalog at all.
//! The cache key is [`QueryGraph::canonical_hash`] (stable under variable
//! renaming), and every hit is verified with the exact
//! [`QueryGraph::is_isomorphic`] check so the rare WL hash collision can
//! never surface a wrong estimate — it just shares a bucket.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

use ceg_graph::hash::FxHasher;
use ceg_graph::FxHashMap;
use ceg_query::QueryGraph;

/// A plain LRU map: capacity-bounded, least-recently-*used* eviction.
///
/// Recency is tracked with a monotonically increasing stamp per entry and
/// a queue of `(key, stamp)` observations; stale observations (the entry
/// was touched again later) are skipped during eviction, and the queue is
/// compacted when it grows past four times the capacity, keeping both
/// `get` and `insert` amortized O(1).
pub struct LruCache<K, V> {
    capacity: usize,
    map: FxHashMap<K, (V, u64)>,
    order: VecDeque<(K, u64)>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries. Capacity 0 is a
    /// valid always-miss cache (used to disable caching in benchmarks).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: FxHashMap::default(),
            order: VecDeque::new(),
            tick: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: &K) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, stamp)) = self.map.get_mut(key) {
            *stamp = tick;
        }
        self.order.push_back((key.clone(), tick));
        if self.order.len() > 4 * self.capacity.max(1) {
            self.compact();
        }
    }

    /// Drop stale recency observations (entries touched again later, or
    /// already evicted).
    fn compact(&mut self) {
        let map = &self.map;
        self.order
            .retain(|(k, stamp)| map.get(k).is_some_and(|(_, s)| s == stamp));
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if !self.map.contains_key(key) {
            return None;
        }
        self.touch(key);
        self.map.get(key).map(|(v, _)| v)
    }

    /// Look up `key` mutably, marking it most recently used on a hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if !self.map.contains_key(key) {
            return None;
        }
        self.touch(key);
        self.map.get_mut(key).map(|(v, _)| v)
    }

    /// Insert or replace `key`, evicting least-recently-used entries if
    /// the cache is over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key.clone(), (value, self.tick));
        self.order.push_back((key, self.tick));
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some((k, stamp)) => {
                    if self.map.get(&k).is_some_and(|(_, s)| *s == stamp) {
                        self.map.remove(&k);
                    }
                }
                None => break, // unreachable: map non-empty implies queued stamps
            }
        }
        if self.order.len() > 4 * self.capacity {
            self.compact();
        }
    }
}

/// What a cache probe found — the distinction `EXPLAIN_ESTIMATE` and the
/// metrics surface: a verified hit, a miss caused *only* by a stale epoch
/// (an isomorphic entry exists but was computed before the last commit),
/// or a cold miss (no isomorphic entry at all).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeOutcome {
    /// Verified hit at the current epoch; carries the cached estimate.
    Hit(Option<f64>),
    /// An isomorphic entry exists but at an older epoch — invalidated by
    /// a committed graph update.
    StaleMiss,
    /// No isomorphic entry cached.
    ColdMiss,
}

/// One cached estimate: the dataset it belongs to, the query it answers
/// (kept for exact verification), the dataset **epoch** the estimate was
/// computed against, and the estimator's result — `None` is cached too,
/// so a query the estimator cannot answer does not hammer the catalog on
/// every retry.
struct CachedEstimate {
    dataset: String,
    query: QueryGraph,
    epoch: u64,
    value: Option<f64>,
}

/// The service's estimate cache: LRU over canonical-hash buckets with
/// exact isomorphism verification and hit/miss counters (exposed through
/// the wire protocol so cache behavior is observable end to end).
///
/// Entries are tagged with the dataset epoch they were computed at; a
/// lookup presents the *current* epoch and an entry from an older epoch
/// **misses instead of lying** — committing a graph update invalidates
/// every prior estimate for that dataset without the cache having to
/// enumerate them. Stale entries are replaced in place on the next store
/// and otherwise age out of the LRU.
pub struct EstimateCache {
    lru: LruCache<u64, Vec<CachedEstimate>>,
    hits: u64,
    misses: u64,
    stale_misses: u64,
}

fn bucket_key(dataset: &str, canonical_hash: u64) -> u64 {
    let mut h = FxHasher::default();
    dataset.hash(&mut h);
    h.write_u64(canonical_hash);
    h.finish()
}

impl EstimateCache {
    /// A cache holding at most `capacity` hash buckets.
    pub fn new(capacity: usize) -> Self {
        EstimateCache {
            lru: LruCache::new(capacity),
            hits: 0,
            misses: 0,
            stale_misses: 0,
        }
    }

    /// Look up an estimate for `query` on `dataset` at the dataset's
    /// current `epoch`. `Some(value)` is a verified hit (the cached query
    /// is isomorphic **and** the cached epoch matches, so the estimate is
    /// exactly what the estimator would recompute); `None` is a miss —
    /// including the case of an entry stranded at an older epoch by a
    /// committed graph update. Counters are updated either way.
    pub fn lookup(&mut self, dataset: &str, query: &QueryGraph, epoch: u64) -> Option<Option<f64>> {
        self.lookup_hashed(dataset, query, query.canonical_hash(), epoch)
    }

    /// [`EstimateCache::lookup`] with the query's canonical hash already
    /// computed — callers holding a lock around the cache (the engine)
    /// hash outside it and probe with this.
    pub fn lookup_hashed(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        canonical_hash: u64,
        epoch: u64,
    ) -> Option<Option<f64>> {
        match self.probe_hashed(dataset, query, canonical_hash, epoch) {
            ProbeOutcome::Hit(value) => Some(value),
            ProbeOutcome::StaleMiss | ProbeOutcome::ColdMiss => None,
        }
    }

    /// [`EstimateCache::lookup_hashed`] reporting *why* a miss missed: a
    /// [`ProbeOutcome::StaleMiss`] found an isomorphic entry stranded at
    /// an older epoch, a [`ProbeOutcome::ColdMiss`] found nothing at all.
    /// Counters are updated exactly as in `lookup_hashed` (stale misses
    /// additionally bump their own counter).
    pub fn probe_hashed(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        canonical_hash: u64,
        epoch: u64,
    ) -> ProbeOutcome {
        let key = bucket_key(dataset, canonical_hash);
        let mut stale = false;
        if let Some(bucket) = self.lru.get(&key) {
            for entry in bucket {
                if entry.dataset == dataset && entry.query.is_isomorphic(query) {
                    if entry.epoch == epoch {
                        let value = entry.value;
                        self.hits += 1;
                        return ProbeOutcome::Hit(value);
                    }
                    stale = true;
                }
            }
        }
        self.misses += 1;
        if stale {
            self.stale_misses += 1;
            ProbeOutcome::StaleMiss
        } else {
            ProbeOutcome::ColdMiss
        }
    }

    /// [`EstimateCache::lookup_hashed`] for the connection handlers' fast
    /// path: a verified hit counts as a hit, but a miss is **not**
    /// counted — the request then takes the full engine path, whose own
    /// lookup records the authoritative hit-or-miss. Without this split a
    /// fast-path probe plus the engine probe would count one request
    /// twice.
    pub fn peek_hashed(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        canonical_hash: u64,
        epoch: u64,
    ) -> Option<Option<f64>> {
        let key = bucket_key(dataset, canonical_hash);
        if let Some(bucket) = self.lru.get(&key) {
            for entry in bucket {
                if entry.dataset == dataset
                    && entry.epoch == epoch
                    && entry.query.is_isomorphic(query)
                {
                    let value = entry.value;
                    self.hits += 1;
                    return Some(value);
                }
            }
        }
        None
    }

    /// Store an estimate computed at `epoch`. Collision buckets stay tiny
    /// (WL collisions need deliberately adversarial regular graphs), so
    /// the inner scan is a formality.
    pub fn store(&mut self, dataset: &str, query: &QueryGraph, epoch: u64, value: Option<f64>) {
        self.store_hashed(dataset, query, query.canonical_hash(), epoch, value)
    }

    /// [`EstimateCache::store`] with a precomputed canonical hash. An
    /// existing entry for an isomorphic query is replaced in place —
    /// including a stale-epoch entry, which is how invalidated estimates
    /// get refreshed rather than duplicated.
    pub fn store_hashed(
        &mut self,
        dataset: &str,
        query: &QueryGraph,
        canonical_hash: u64,
        epoch: u64,
        value: Option<f64>,
    ) {
        let key = bucket_key(dataset, canonical_hash);
        let entry = CachedEstimate {
            dataset: dataset.to_string(),
            query: query.clone(),
            epoch,
            value,
        };
        if let Some(bucket) = self.lru.get_mut(&key) {
            for existing in bucket.iter_mut() {
                if existing.dataset == dataset && existing.query.is_isomorphic(query) {
                    // A racing slow computation from a pre-commit epoch
                    // must not downgrade a fresher entry.
                    if epoch >= existing.epoch {
                        existing.epoch = epoch;
                        existing.value = value;
                    }
                    return;
                }
            }
            bucket.push(entry);
            return;
        }
        self.lru.insert(key, vec![entry]);
    }

    /// Verified hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The subset of misses caused by a stale-epoch entry (an isomorphic
    /// query was cached, but a commit invalidated it).
    pub fn stale_misses(&self) -> u64 {
        self.stale_misses
    }

    /// Number of cached hash buckets.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::templates;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_replaces_in_place() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn lru_zero_capacity_never_stores() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_survives_many_touches() {
        // Exercises queue compaction: far more touches than capacity.
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        for _ in 0..1000 {
            assert_eq!(c.get(&0), Some(&0));
        }
        c.insert(100, 100); // must evict one of 1..=3, never 0
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn estimate_cache_hits_isomorphic_queries() {
        let mut cache = EstimateCache::new(16);
        let q = templates::path(3, &[0, 1, 0]);
        assert_eq!(cache.lookup("ds", &q, 0), None);
        cache.store("ds", &q, 0, Some(42.0));
        // Same query: hit.
        assert_eq!(cache.lookup("ds", &q, 0), Some(Some(42.0)));
        // Renamed (isomorphic) query: still a hit.
        let renamed = {
            use ceg_query::{QueryEdge, QueryGraph};
            let edges = q
                .edges()
                .iter()
                .map(|e| QueryEdge::new(3 - e.src, 3 - e.dst, e.label))
                .collect();
            QueryGraph::new(4, edges)
        };
        assert_eq!(cache.lookup("ds", &renamed, 0), Some(Some(42.0)));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn estimate_cache_separates_datasets() {
        let mut cache = EstimateCache::new(16);
        let q = templates::path(2, &[0, 1]);
        cache.store("a", &q, 0, Some(1.0));
        assert_eq!(cache.lookup("b", &q, 0), None);
        assert_eq!(cache.lookup("a", &q, 0), Some(Some(1.0)));
    }

    #[test]
    fn estimate_cache_caches_failures() {
        let mut cache = EstimateCache::new(16);
        let q = templates::path(2, &[0, 1]);
        cache.store("ds", &q, 0, None);
        assert_eq!(cache.lookup("ds", &q, 0), Some(None));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn stale_epoch_misses_instead_of_lying() {
        let mut cache = EstimateCache::new(16);
        let q = templates::path(2, &[0, 1]);
        cache.store("ds", &q, 0, Some(7.0));
        assert_eq!(cache.lookup("ds", &q, 0), Some(Some(7.0)));
        // The dataset committed an update: epoch 1 probes must miss.
        assert_eq!(cache.lookup("ds", &q, 1), None);
        assert_eq!(cache.misses(), 1); // the stale probe is a counted miss
                                       // Recomputing at epoch 1 replaces the entry in place.
        cache.store("ds", &q, 1, Some(9.0));
        assert_eq!(cache.lookup("ds", &q, 1), Some(Some(9.0)));
        assert_eq!(cache.len(), 1, "replaced, not duplicated");
        // And the old epoch can no longer hit either.
        assert_eq!(cache.lookup("ds", &q, 0), None);
    }

    #[test]
    fn probe_distinguishes_stale_from_cold_misses() {
        let mut cache = EstimateCache::new(16);
        let q = templates::path(2, &[0, 1]);
        let h = q.canonical_hash();
        assert_eq!(cache.probe_hashed("ds", &q, h, 0), ProbeOutcome::ColdMiss);
        cache.store("ds", &q, 0, Some(7.0));
        assert_eq!(
            cache.probe_hashed("ds", &q, h, 0),
            ProbeOutcome::Hit(Some(7.0))
        );
        assert_eq!(cache.probe_hashed("ds", &q, h, 1), ProbeOutcome::StaleMiss);
        let other = templates::path(2, &[5, 6]);
        assert_eq!(
            cache.probe_hashed("ds", &other, other.canonical_hash(), 1),
            ProbeOutcome::ColdMiss
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.stale_misses(), 1);
    }

    #[test]
    fn late_store_from_old_epoch_cannot_downgrade() {
        let mut cache = EstimateCache::new(16);
        let q = templates::path(2, &[0, 1]);
        cache.store("ds", &q, 2, Some(5.0));
        // A straggler that computed against epoch 1 finishes late.
        cache.store("ds", &q, 1, Some(4.0));
        assert_eq!(cache.lookup("ds", &q, 2), Some(Some(5.0)));
        assert_eq!(cache.lookup("ds", &q, 1), None);
    }
}
