//! The TCP front end: accept loop, connection handlers, batching workers,
//! admission control and the drain lifecycle.
//!
//! Request lifecycle:
//!
//! 1. A connection handler thread reads one protocol line and parses it.
//! 2. `ESTIMATE` requests first try the estimate cache inline (a cache
//!    hit never waits behind queued cold work), then pass admission
//!    control: each dataset has a bounded in-flight budget
//!    ([`ServerConfig::queue_cap`]) and a full queue answers `BUSY`
//!    immediately instead of queueing without bound. Admitted jobs are
//!    spread round-robin over the worker-pool shards, carrying a reply
//!    channel and their deadline. (Round-robin rather than
//!    pin-by-dataset: the common deployment serves one dataset, which a
//!    dataset pin would serialize onto a single worker.)
//! 3. The shard's worker drains its queue into a batch (up to
//!    `batch_max`), drops jobs whose deadline already passed (typed
//!    `TIMEOUT`) or that arrived after a drain began (typed `BUSY`),
//!    groups the rest by dataset, and runs each group through
//!    [`Engine::estimate_batch_deadline`] — one cache pass, one catalog
//!    fill, one estimation pass for the whole group, with the deadline
//!    checked between plan depths inside the counting kernel.
//! 4. Each reply flows back over its channel; the handler writes one
//!    response line. `PING`/`STATS`/`METRICS` are answered inline by the
//!    handler; `SHUTDOWN` flips the drain flag and answers `DRAINING`.
//!
//! Every accepted request is answered with exactly one of: an estimate,
//! a typed `BUSY`, a typed `TIMEOUT`, or an `ERR` — nothing is silently
//! dropped, which is what makes the overload tests assertable.
//!
//! Concurrency discipline: the graph is immutable, the Markov catalog is
//! behind an `RwLock` written only by batch fills, the cache behind a
//! `Mutex` held for lookups/stores only — never during counting or
//! estimation. Admission counters and the metrics registry are plain
//! atomics.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ceg_core::sync::{self, LockRank, OrderedMutex};
use ceg_query::QueryGraph;

use crate::engine::{Engine, QueryOutcome, SlowQueryEntry, DEFAULT_SLOW_QUERY_THRESHOLD_MS};
use crate::metrics::{Command, Metrics};
use crate::pool::WorkerPool;
use crate::protocol::{Request, Response};
use crate::registry::DatasetRegistry;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= queue shards) for estimation requests.
    pub workers: usize,
    /// Maximum requests drained into one worker batch.
    pub batch_max: usize,
    /// LRU estimate-cache capacity in hash buckets (0 disables caching).
    pub cache_capacity: usize,
    /// Admission control: maximum estimate jobs in flight (queued or
    /// running) per dataset. Requests beyond the cap get a typed `BUSY`
    /// instead of queueing without bound.
    pub queue_cap: usize,
    /// Deadline applied to estimates that don't carry their own
    /// `DEADLINE_MS`. `None` means unbounded (seed behaviour).
    pub default_deadline_ms: Option<u64>,
    /// Where [`Server::drain`] writes one final `<dataset>.cegsnap` per
    /// dataset. `None` skips the final snapshots.
    pub drain_snapshot_dir: Option<PathBuf>,
    /// How long [`Server::drain`] waits for admitted jobs to settle
    /// before abandoning them (they still get typed replies from the
    /// workers; this just bounds process exit).
    pub drain_grace_ms: u64,
    /// Estimate batches at least this slow (wall-clock milliseconds) are
    /// recorded in the slow-query ring (`SLOWLOG`).
    pub slow_query_threshold_ms: u64,
    /// After an acked `COMMIT`, fold a dataset's WAL into a fresh
    /// snapshot once the log reaches this many bytes (0 disables the
    /// byte trigger). Only affects datasets with durability attached.
    pub wal_rotate_bytes: u64,
    /// Commit-count rotation trigger: fold the WAL after this many
    /// effective commits since the last snapshot (0 disables).
    pub snapshot_interval_commits: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: thread::available_parallelism()
                .map_or(2, |n| n.get())
                .max(2),
            batch_max: 32,
            cache_capacity: 4096,
            queue_cap: 1024,
            default_deadline_ms: Some(30_000),
            drain_snapshot_dir: None,
            drain_grace_ms: 5_000,
            slow_query_threshold_ms: DEFAULT_SLOW_QUERY_THRESHOLD_MS,
            wal_rotate_bytes: 1 << 22,
            snapshot_interval_commits: 0,
        }
    }
}

/// Per-dataset bounded admission: a job may enter the worker queues only
/// while the dataset's in-flight count is below the cap. The permit is
/// RAII — dropping the job (answered, rejected, or abandoned) releases
/// its slot, so the bound cannot leak.
struct Admission {
    cap: usize,
    /// `LockRank::Metrics`: held only for the map lookup/insert, never
    /// across the compare-exchange loop or any dataset lock.
    counters: OrderedMutex<HashMap<String, Arc<AtomicUsize>>>,
}

impl Admission {
    fn new(cap: usize) -> Self {
        Admission {
            cap,
            counters: OrderedMutex::new(LockRank::Metrics, HashMap::new()),
        }
    }

    /// Try to admit one job for `dataset`; `None` means the queue is
    /// full and the caller must answer `BUSY`.
    fn try_admit(&self, dataset: &str, metrics: &Arc<Metrics>) -> Option<AdmissionPermit> {
        let counter = {
            let mut map = self.counters.lock();
            match map.get(dataset) {
                Some(c) => c.clone(),
                None => {
                    let c = Arc::new(AtomicUsize::new(0));
                    map.insert(dataset.to_string(), c.clone());
                    c
                }
            }
        };
        // Exact bound: a compare-exchange loop never overshoots the cap,
        // unlike fetch_add-then-undo.
        let mut cur = counter.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                return None;
            }
            match counter.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        metrics.job_enqueued();
        Some(AdmissionPermit {
            counter,
            metrics: metrics.clone(),
        })
    }
}

/// RAII admission slot: released on drop, wherever the job ends up.
struct AdmissionPermit {
    counter: Arc<AtomicUsize>,
    metrics: Arc<Metrics>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
        self.metrics.job_finished();
    }
}

/// The drain flag plus a condvar so `cegcli serve` can block on "has
/// anyone asked us to shut down?" instead of polling.
struct Lifecycle {
    draining: AtomicBool,
    /// `LockRank::PoolShard`: the wait loop parks on this with nothing
    /// else held, and `request_drain` touches only the flag itself.
    signal: OrderedMutex<bool>,
    cv: Condvar,
}

impl Lifecycle {
    fn new() -> Self {
        Lifecycle {
            draining: AtomicBool::new(false),
            signal: OrderedMutex::new(LockRank::PoolShard, false),
            cv: Condvar::new(),
        }
    }

    fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let mut flag = self.signal.lock();
        *flag = true;
        self.cv.notify_all();
    }

    fn drain_requested(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn wait_drain_requested(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut flag = self.signal.lock();
        while !*flag {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = sync::wait_timeout(&self.cv, flag, deadline - now);
            flag = guard;
        }
        true
    }
}

/// State shared by the accept loop, every connection handler and the
/// workers.
struct Shared {
    engine: Arc<Engine>,
    admission: Admission,
    lifecycle: Lifecycle,
    default_deadline_ms: Option<u64>,
    /// WAL rotation triggers checked after each acked `COMMIT` (see
    /// [`ServerConfig::wal_rotate_bytes`] /
    /// [`ServerConfig::snapshot_interval_commits`]).
    wal_rotate_bytes: u64,
    snapshot_interval_commits: u64,
    /// Per-request id source: every request a connection handler reads
    /// gets the next id, echoed as the ` id=<n>` reply tail and stamped
    /// on slow-query records.
    next_request_id: AtomicU64,
}

/// One queued estimation request.
struct EstimateJob {
    /// The request id assigned when the request was read.
    id: u64,
    dataset: String,
    query: QueryGraph,
    reply: mpsc::Sender<Response>,
    /// Absolute deadline plus the millisecond value to echo in `TIMEOUT`.
    deadline: Option<(Instant, u64)>,
    enqueued_at: Instant,
    /// Held for the job's whole queued+running life; dropping it releases
    /// the dataset's admission slot.
    _permit: AdmissionPermit,
}

/// What [`Server::drain`] did.
#[derive(Debug)]
pub struct DrainReport {
    /// `(dataset, path, bytes)` for each final snapshot written.
    pub snapshots: Vec<(String, PathBuf, u64)>,
    /// Jobs still in flight when the grace period expired (their typed
    /// replies are the workers' job; this only bounds process exit).
    pub abandoned: u64,
    /// The slow-query ring at drain time, newest first — slow queries
    /// from the final serving window survive into the shutdown report
    /// instead of dying with the process.
    pub slowlog: Vec<SlowQueryEntry>,
}

/// A running estimation server. [`Server::shutdown`] (or dropping the
/// server) stops accepting and joins the accept thread; the worker pool
/// lives until the last open connection is done with it, so in-flight
/// requests are always answered. [`Server::drain`] is the graceful
/// variant: flip the drain flag first so in-flight work resolves to
/// typed replies, then write final snapshots.
pub struct Server {
    engine: Arc<Engine>,
    shared: Arc<Shared>,
    config: ServerConfig,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool<EstimateJob>>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the datasets in `registry`.
    pub fn start(
        registry: Arc<DatasetRegistry>,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Engine::new(registry, config.cache_capacity));
        engine.set_slow_query_threshold_ms(config.slow_query_threshold_ms);
        let shared = Arc::new(Shared {
            engine: engine.clone(),
            admission: Admission::new(config.queue_cap.max(1)),
            lifecycle: Lifecycle::new(),
            default_deadline_ms: config.default_deadline_ms,
            wal_rotate_bytes: config.wal_rotate_bytes,
            snapshot_interval_commits: config.snapshot_interval_commits,
            next_request_id: AtomicU64::new(1),
        });
        let pool = {
            let shared = shared.clone();
            Arc::new(WorkerPool::new(
                config.workers,
                config.batch_max,
                move |batch| handle_batch(&shared, batch),
            ))
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = shared.clone();
            let pool = pool.clone();
            let stop = stop.clone();
            thread::Builder::new()
                .name("ceg-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shared = shared.clone();
                        let pool = pool.clone();
                        // Small stacks: the handler only parses lines and
                        // shuttles replies, and a fleet of idle
                        // connections should cost kilobytes, not the 8MB
                        // Linux default, apiece.
                        let _ = thread::Builder::new()
                            .name("ceg-conn".into())
                            .stack_size(CONN_STACK_BYTES)
                            .spawn(move || {
                                let _ = serve_connection(stream, &shared, &pool);
                            });
                    }
                })?
        };
        Ok(Server {
            engine,
            shared,
            config,
            addr,
            stop,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (counters, registry) — handy in tests and benches.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Flip the drain flag (as the wire `SHUTDOWN` command does): new
    /// work is BUSY-rejected from this point on. The caller still owns
    /// the actual teardown via [`Server::drain`].
    pub fn request_drain(&self) {
        self.shared.lifecycle.request_drain();
    }

    /// Has anyone (wire `SHUTDOWN`, signal handler, or
    /// [`Server::request_drain`]) asked for a drain?
    pub fn drain_requested(&self) -> bool {
        self.shared.lifecycle.drain_requested()
    }

    /// Block up to `timeout` for a drain request; `true` if one arrived.
    /// `cegcli serve` sits in this instead of a poll loop.
    pub fn wait_drain_requested(&self, timeout: Duration) -> bool {
        self.shared.lifecycle.wait_drain_requested(timeout)
    }

    /// Gracefully drain and stop: reject new work, stop accepting, wait
    /// up to the grace period for admitted jobs to resolve into typed
    /// replies, then write one final snapshot per dataset into
    /// `drain_snapshot_dir` (if configured).
    pub fn drain(mut self) -> io::Result<DrainReport> {
        self.shared.lifecycle.request_drain();
        // Stop accepting before snapshotting; existing connections keep
        // their typed-reply guarantee via the drained workers.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let grace_until = Instant::now() + Duration::from_millis(self.config.drain_grace_ms);
        let metrics = self.engine.metrics().clone();
        while metrics.queued() > 0 && Instant::now() < grace_until {
            thread::sleep(Duration::from_millis(1));
        }
        let abandoned = metrics.queued();
        let mut snapshots = Vec::new();
        if let Some(dir) = self.config.drain_snapshot_dir.clone() {
            std::fs::create_dir_all(&dir)?;
            for name in self.engine.registry().names() {
                let Some(entry) = self.engine.registry().get(&name) else {
                    continue;
                };
                let path = dir.join(format!("{name}.cegsnap"));
                let (_epoch, bytes) = entry.write_snapshot(&path)?;
                snapshots.push((name, path, bytes));
            }
        }
        // Dropping `self` releases the pool handle; workers exit once the
        // remaining connection handlers drop theirs.
        Ok(DrainReport {
            snapshots,
            abandoned,
            slowlog: self.engine.slowlog(usize::MAX),
        })
    }

    /// Stop accepting new connections and join the accept thread. Worker
    /// threads drain outstanding requests and exit once the last open
    /// connection releases them.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Release our pool handle; the pool's own Drop joins the workers
        // once the remaining connection handlers (if any) drop theirs.
        self.pool.take();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Longest accepted request line. The largest legal request (32 edges,
/// maximal numbers, a long dataset name) is well under 1 KB; anything
/// bigger is garbage, and without a cap a client that never sends a
/// newline would grow the read buffer without bound.
const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Stream-buffer capacity per direction. Small on purpose: an idle
/// connection holds exactly two of these plus a (shrunk) line buffer.
const STREAM_BUF_BYTES: usize = 4 * 1024;

/// The line buffer is shrunk back to this after any request that grew it
/// (a big batch, an overlong-garbage line), so idle connections don't pin
/// up to [`MAX_LINE_BYTES`] each.
const IDLE_LINE_CAP: usize = 1024;

/// Connection-handler stack size. The handler parses lines and shuttles
/// channel replies — nothing recursive.
const CONN_STACK_BYTES: usize = 256 * 1024;

/// Outcome of reading one capped request line.
enum LineRead {
    /// A complete line (newline stripped is up to the caller).
    Line,
    /// Client closed the connection.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
}

/// Read one request line into `line` (cleared first), enforcing the
/// length cap.
fn read_request_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<LineRead> {
    line.clear();
    let n = io::Read::take(reader, MAX_LINE_BYTES).read_line(line)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if n as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
        return Ok(LineRead::TooLong);
    }
    Ok(LineRead::Line)
}

/// The latency bucket a request is recorded under (`None` for `QUIT` and
/// `SHUTDOWN`, which are lifecycle events rather than served commands).
fn command_of(req: &Request) -> Option<Command> {
    Some(match req {
        Request::Ping => Command::Ping,
        Request::Stats => Command::Stats,
        Request::Metrics => Command::Metrics,
        Request::MetricsProm => Command::MetricsProm,
        Request::SlowLog { .. } => Command::SlowLog,
        Request::Estimate { .. } => Command::Estimate,
        Request::ExplainEstimate { .. } => Command::ExplainEstimate,
        Request::EstimateBatch { .. } => Command::EstimateBatch,
        Request::AddEdge { .. } => Command::AddEdge,
        Request::DelEdge { .. } => Command::DelEdge,
        Request::Commit { .. } => Command::Commit,
        Request::Snapshot { .. } => Command::Snapshot,
        Request::Quit | Request::Shutdown => return None,
    })
}

/// Resolve a request's effective deadline: its own `DEADLINE_MS`, else
/// the server default, else unbounded. A value so large the clock cannot
/// represent it is treated as unbounded rather than panicking.
fn effective_deadline(request_ms: Option<u64>, default_ms: Option<u64>) -> Option<(Instant, u64)> {
    let ms = request_ms.or(default_ms)?;
    let at = Instant::now().checked_add(Duration::from_millis(ms))?;
    Some((at, ms))
}

/// Write one reply line — stamped with the request's ` id=<n>` tail —
/// and flush. The single funnel for `ERR` accounting: every error
/// actually sent to a client is counted exactly once here, no matter
/// which layer produced it.
fn write_reply(
    writer: &mut BufWriter<TcpStream>,
    metrics: &Metrics,
    response: &Response,
    id: u64,
) -> io::Result<()> {
    if matches!(response, Response::Error(_)) {
        metrics.record_error();
    }
    let mut line = response.format();
    crate::protocol::append_id(&mut line, id);
    writeln!(writer, "{line}")?;
    writer.flush()
}

/// Write a counted-reply header line with the request's id tail. The
/// `n` body lines that follow are *not* stamped — their grammar owns
/// the whole line.
fn write_counted_header(
    writer: &mut BufWriter<TcpStream>,
    mut header: String,
    id: u64,
) -> io::Result<()> {
    crate::protocol::append_id(&mut header, id);
    writeln!(writer, "{header}")
}

/// An ordered slot of a batch reply: answered inline (cache hit or
/// rejection) or still owed by a worker.
enum Slot {
    Ready(Response),
    Pending(mpsc::Receiver<Response>),
}

/// Per-connection loop: one request in, one response out (a batch counts
/// as one request with one multi-line response). Estimates try the cache
/// inline, then admission control, then the queue shards; workers regroup
/// their drained batches by dataset, so same-dataset requests that arrive
/// together still amortize (and one hot dataset is not pinned to one
/// worker).
fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool<EstimateJob>>,
) -> io::Result<()> {
    // One write syscall per response line, and no Nagle delay on it:
    // an unbuffered `writeln!` issues several small writes per line,
    // which interacts with delayed ACKs into ~40ms per round-trip.
    stream.set_nodelay(true)?;
    let engine = &shared.engine;
    let metrics = engine.metrics().clone();
    let mut writer = BufWriter::with_capacity(STREAM_BUF_BYTES, stream.try_clone()?);
    let mut reader = BufReader::with_capacity(STREAM_BUF_BYTES, stream);
    let mut line = String::new();
    loop {
        match read_request_line(&mut reader, &mut line)? {
            LineRead::Eof => break,
            LineRead::TooLong => {
                // Overlong line: refuse and drop the connection — the
                // rest of the stream is the same unterminated line.
                let id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
                write_reply(
                    &mut writer,
                    &metrics,
                    &Response::Error("request line too long".into()),
                    id,
                )?;
                break;
            }
            LineRead::Line => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        // The per-request id: assigned the moment a request is read,
        // echoed on every reply line it produces, and stamped on any
        // slow-query record it leaves behind.
        let req_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
        // ESTIMATE_BATCH is the one multi-line request: its header says
        // how many query lines follow. Read them (still one capped line
        // at a time) before parsing, so the stream stays framed even
        // when a query line is malformed. A bad *header* leaves the
        // follow-up line count unknowable, so — like an overlong line —
        // it closes the connection instead of desynchronizing it.
        let mut request_text = std::mem::take(&mut line);
        if request_text.split_whitespace().next() == Some("ESTIMATE_BATCH") {
            match crate::protocol::parse_batch_header(&request_text) {
                Err(msg) => {
                    write_reply(&mut writer, &metrics, &Response::Error(msg), req_id)?;
                    break;
                }
                Ok((_, n, _)) => {
                    for _ in 0..n {
                        match read_request_line(&mut reader, &mut line)? {
                            LineRead::Eof => return Ok(()),
                            LineRead::TooLong => {
                                write_reply(
                                    &mut writer,
                                    &metrics,
                                    &Response::Error("request line too long".into()),
                                    req_id,
                                )?;
                                return Ok(());
                            }
                            LineRead::Line => {
                                if !request_text.ends_with('\n') {
                                    request_text.push('\n');
                                }
                                request_text.push_str(&line);
                            }
                        }
                    }
                }
            }
        }
        // A big request (batch lines, overlong garbage) may have grown
        // the reusable line buffer to MAX_LINE_BYTES; give it back so an
        // idle connection holds only the small stream buffers.
        if line.capacity() > IDLE_LINE_CAP {
            line.shrink_to(IDLE_LINE_CAP);
        }
        let parsed = Request::parse(&request_text);
        drop(request_text);
        let cmd = parsed.as_ref().ok().and_then(command_of);
        let draining = shared.lifecycle.drain_requested();
        match parsed {
            Err(msg) => write_reply(&mut writer, &metrics, &Response::Error(msg), req_id)?,
            Ok(Request::Ping) => write_reply(&mut writer, &metrics, &Response::Pong, req_id)?,
            Ok(Request::Stats) => write_reply(
                &mut writer,
                &metrics,
                &Response::Stats(engine.stats()),
                req_id,
            )?,
            Ok(Request::Metrics) => {
                let snap = engine.metrics_snapshot();
                write_counted_header(
                    &mut writer,
                    crate::protocol::metrics_response_header(snap.len()),
                    req_id,
                )?;
                for (key, value) in snap {
                    writeln!(
                        writer,
                        "{}",
                        crate::protocol::format_metric_line(&key, value)
                    )?;
                }
                writer.flush()?;
            }
            Ok(Request::MetricsProm) => {
                let lines = engine.metrics_prom();
                write_counted_header(
                    &mut writer,
                    crate::protocol::metrics_prom_response_header(lines.len()),
                    req_id,
                )?;
                for l in lines {
                    writeln!(writer, "{}", crate::protocol::format_prom_line(&l))?;
                }
                writer.flush()?;
            }
            Ok(Request::SlowLog { n }) => {
                let entries = engine.slowlog(n.unwrap_or(usize::MAX));
                write_counted_header(
                    &mut writer,
                    crate::protocol::slowlog_response_header(entries.len()),
                    req_id,
                )?;
                for e in &entries {
                    writeln!(writer, "{}", crate::protocol::format_slowlog_entry(e))?;
                }
                writer.flush()?;
            }
            Ok(Request::Shutdown) => {
                shared.lifecycle.request_drain();
                write_reply(&mut writer, &metrics, &Response::Draining, req_id)?;
            }
            Ok(Request::Quit) => {
                write_reply(&mut writer, &metrics, &Response::Bye, req_id)?;
                break;
            }
            // During a drain every state-touching command is rejected
            // with a typed BUSY: the final snapshots must see a frozen
            // registry, and estimate queues are being emptied.
            Ok(
                Request::AddEdge { .. }
                | Request::DelEdge { .. }
                | Request::Commit { .. }
                | Request::Snapshot { .. }
                | Request::Estimate { .. }
                | Request::ExplainEstimate { .. },
            ) if draining => {
                metrics.record_busy();
                write_reply(
                    &mut writer,
                    &metrics,
                    &Response::Busy("server draining".into()),
                    req_id,
                )?;
            }
            // Updates are answered inline by the handler: buffering an
            // edge is a cheap mutex push, and COMMIT is the explicitly
            // heavy call whose latency the client opted into — neither
            // benefits from the estimate batching shards.
            Ok(Request::AddEdge {
                dataset,
                src,
                dst,
                label,
            }) => {
                let resp = match engine.add_edge(&dataset, src, dst, label) {
                    Ok(ack) => Response::Updated(ack),
                    Err(msg) => Response::Error(msg),
                };
                write_reply(&mut writer, &metrics, &resp, req_id)?;
            }
            Ok(Request::DelEdge {
                dataset,
                src,
                dst,
                label,
            }) => {
                let resp = match engine.del_edge(&dataset, src, dst, label) {
                    Ok(ack) => Response::Updated(ack),
                    Err(msg) => Response::Error(msg),
                };
                write_reply(&mut writer, &metrics, &resp, req_id)?;
            }
            Ok(Request::Commit { dataset }) => {
                let resp = match engine.commit(&dataset) {
                    Ok(outcome) => Response::Committed(outcome),
                    Err(msg) => Response::Error(msg),
                };
                write_reply(&mut writer, &metrics, &resp, req_id)?;
                // Rotation runs *after* the ack went out: the client's
                // COMMIT latency never includes the snapshot fold, and a
                // rotation failure cannot un-ack a durable commit — the
                // log just keeps growing until a later fold succeeds.
                if matches!(resp, Response::Committed(o) if o.wal_bytes > 0) {
                    let _ = engine.maybe_rotate(
                        &dataset,
                        shared.wal_rotate_bytes,
                        shared.snapshot_interval_commits,
                    );
                }
            }
            // SNAPSHOT holds the dataset's state read lock while it
            // writes the file; answered inline like COMMIT — the client
            // opted into its latency.
            Ok(Request::Snapshot { dataset, path }) => {
                let resp = match engine.snapshot(&dataset, &path) {
                    Ok(ack) => Response::Snapshotted(ack),
                    Err(msg) => Response::Error(msg),
                };
                write_reply(&mut writer, &metrics, &resp, req_id)?;
            }
            // EXPLAIN_ESTIMATE runs inline on the handler thread (like
            // COMMIT: the client explicitly opted into its latency) so
            // the trace covers the complete request with no queue in the
            // way. The estimate is computed by the exact same engine
            // path as ESTIMATE.
            Ok(Request::ExplainEstimate {
                dataset,
                query,
                deadline_ms,
            }) => {
                let deadline = effective_deadline(deadline_ms, shared.default_deadline_ms);
                match engine.explain(&dataset, &query, deadline.map(|(at, _)| at)) {
                    Err(msg) => write_reply(&mut writer, &metrics, &Response::Error(msg), req_id)?,
                    Ok((outcome, mut trace)) => {
                        // Inline execution has no worker queue; the span
                        // is recorded (as zero) so the breakdown's span
                        // set is the same shape queued requests report
                        // in the slow-query log.
                        trace.record_span_micros("queue_wait", 0);
                        let stats = engine.stats();
                        let first = match outcome {
                            QueryOutcome::Done(outcome) => Response::Estimate {
                                outcome,
                                hits: stats.cache_hits,
                                misses: stats.cache_misses,
                            },
                            QueryOutcome::TimedOut => Response::Timeout {
                                deadline_ms: deadline.map_or(0, |(_, ms)| ms),
                            },
                        };
                        let n = 1 + trace.spans().len() + trace.counters().len();
                        write_counted_header(
                            &mut writer,
                            crate::protocol::explain_response_header(n),
                            req_id,
                        )?;
                        writeln!(writer, "{}", first.format())?;
                        for &(name, micros) in trace.spans() {
                            writeln!(
                                writer,
                                "{}",
                                crate::protocol::ExplainItem::Span {
                                    name: name.into(),
                                    micros
                                }
                                .format()
                            )?;
                        }
                        for &(name, value) in trace.counters() {
                            writeln!(
                                writer,
                                "{}",
                                crate::protocol::ExplainItem::Counter {
                                    name: name.into(),
                                    value
                                }
                                .format()
                            )?;
                        }
                        writer.flush()?;
                    }
                }
            }
            // A batch fans its cache misses across the pool shards (each
            // worker still regroups by dataset) and streams the answers
            // back in request order under a BATCH header — one wire
            // round-trip, pool-level parallelism. Cache hits and
            // admission rejections are resolved inline so they never
            // wait behind queued cold work.
            Ok(Request::EstimateBatch {
                dataset,
                queries,
                deadline_ms,
            }) => {
                let slots: Vec<Slot> = queries
                    .into_iter()
                    .map(|query| {
                        if draining {
                            metrics.record_busy();
                            return Slot::Ready(Response::Busy("server draining".into()));
                        }
                        if let Some(outcome) = engine.try_cached(&dataset, &query) {
                            let stats = engine.stats();
                            return Slot::Ready(Response::Estimate {
                                outcome,
                                hits: stats.cache_hits,
                                misses: stats.cache_misses,
                            });
                        }
                        match shared.admission.try_admit(&dataset, &metrics) {
                            None => {
                                metrics.record_busy();
                                Slot::Ready(Response::Busy(format!(
                                    "queue full for dataset `{dataset}`"
                                )))
                            }
                            Some(permit) => {
                                let (tx, rx) = mpsc::channel();
                                pool.submit(EstimateJob {
                                    id: req_id,
                                    dataset: dataset.clone(),
                                    query,
                                    reply: tx,
                                    deadline: effective_deadline(
                                        deadline_ms,
                                        shared.default_deadline_ms,
                                    ),
                                    enqueued_at: Instant::now(),
                                    _permit: permit,
                                });
                                Slot::Pending(rx)
                            }
                        }
                    })
                    .collect();
                write_counted_header(
                    &mut writer,
                    crate::protocol::batch_response_header(slots.len()),
                    req_id,
                )?;
                // Flush per line: answers stream back as workers finish,
                // they are not held until the whole batch completes.
                writer.flush()?;
                for slot in slots {
                    let reply = match slot {
                        Slot::Ready(resp) => resp,
                        Slot::Pending(rx) => rx
                            .recv()
                            .unwrap_or_else(|_| Response::Error("server shutting down".into())),
                    };
                    write_reply(&mut writer, &metrics, &reply, req_id)?;
                }
            }
            Ok(Request::Estimate {
                dataset,
                query,
                deadline_ms,
            }) => {
                let resp = if let Some(outcome) = engine.try_cached(&dataset, &query) {
                    let stats = engine.stats();
                    Response::Estimate {
                        outcome,
                        hits: stats.cache_hits,
                        misses: stats.cache_misses,
                    }
                } else {
                    match shared.admission.try_admit(&dataset, &metrics) {
                        None => {
                            metrics.record_busy();
                            Response::Busy(format!("queue full for dataset `{dataset}`"))
                        }
                        Some(permit) => {
                            let (tx, rx) = mpsc::channel();
                            pool.submit(EstimateJob {
                                id: req_id,
                                dataset,
                                query,
                                reply: tx,
                                deadline: effective_deadline(
                                    deadline_ms,
                                    shared.default_deadline_ms,
                                ),
                                enqueued_at: Instant::now(),
                                _permit: permit,
                            });
                            rx.recv()
                                .unwrap_or_else(|_| Response::Error("server shutting down".into()))
                        }
                    }
                };
                write_reply(&mut writer, &metrics, &resp, req_id)?;
            }
        };
        if let Some(c) = cmd {
            metrics.record_latency(c, started.elapsed());
        }
    }
    Ok(())
}

/// Send a job its reply, releasing the admission slot *first*: once the
/// reply line is observable on the wire, the client's very next request
/// (a sequential STATS, say) must already see the queue gauge settled.
fn respond(job: EstimateJob, response: Response) {
    let EstimateJob {
        reply,
        _permit: permit,
        ..
    } = job;
    drop(permit);
    let _ = reply.send(response);
}

/// Worker handler: resolve drained jobs whose deadline already passed or
/// that a drain overtook, then group the rest by dataset and estimate
/// each group in one engine call.
fn handle_batch(shared: &Shared, batch: Vec<EstimateJob>) {
    let engine = &shared.engine;
    let metrics = engine.metrics();
    let now = Instant::now();
    let draining = shared.lifecycle.drain_requested();
    // Group while preserving arrival order within each dataset.
    let mut groups: Vec<(String, Vec<EstimateJob>)> = Vec::new();
    for job in batch {
        metrics
            .queue_wait()
            .record(now.saturating_duration_since(job.enqueued_at));
        if draining {
            // A drain raced the queue: reject rather than start cold
            // work the process is trying to finish.
            metrics.record_busy();
            respond(job, Response::Busy("server draining".into()));
            continue;
        }
        if let Some((at, ms)) = job.deadline {
            if now >= at {
                // Dead on arrival at dequeue — the typed TIMEOUT costs
                // nothing, running the estimate anyway would.
                metrics.record_timeout();
                respond(job, Response::Timeout { deadline_ms: ms });
                continue;
            }
        }
        match groups.iter_mut().find(|(ds, _)| *ds == job.dataset) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((job.dataset.clone(), vec![job])),
        }
    }
    for (dataset, jobs) in groups {
        let queries: Vec<QueryGraph> = jobs.iter().map(|j| j.query.clone()).collect();
        let deadlines: Vec<Option<Instant>> =
            jobs.iter().map(|j| j.deadline.map(|(at, _)| at)).collect();
        let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        match engine.estimate_batch_deadline_ids(&dataset, &queries, &deadlines, &ids) {
            Ok(outcomes) => {
                let stats = engine.stats();
                for (job, outcome) in jobs.into_iter().zip(outcomes) {
                    let reply = match outcome {
                        QueryOutcome::Done(outcome) => Response::Estimate {
                            outcome,
                            hits: stats.cache_hits,
                            misses: stats.cache_misses,
                        },
                        // The engine already counted this timeout.
                        QueryOutcome::TimedOut => Response::Timeout {
                            deadline_ms: job.deadline.map_or(0, |(_, ms)| ms),
                        },
                    };
                    respond(job, reply);
                }
            }
            Err(msg) => {
                for job in jobs {
                    respond(job, Response::Error(msg.clone()));
                }
            }
        }
    }
}
