//! The TCP front end: accept loop, connection handlers, batching workers.
//!
//! Request lifecycle:
//!
//! 1. A connection handler thread reads one protocol line and parses it.
//! 2. `ESTIMATE` requests are spread round-robin over the worker-pool
//!    shards, carrying a reply channel. (Round-robin rather than
//!    pin-by-dataset: the common deployment serves one dataset, which a
//!    dataset pin would serialize onto a single worker.)
//! 3. The shard's worker drains its queue into a batch (up to
//!    `batch_max`), groups the batch by dataset, and runs each group
//!    through [`Engine::estimate_batch`] — one cache pass, one catalog
//!    fill, one estimation pass for the whole group.
//! 4. Each reply flows back over its channel; the handler writes one
//!    response line. `PING`/`STATS` are answered inline by the handler.
//!
//! Concurrency discipline: the graph is immutable, the Markov catalog is
//! behind an `RwLock` written only by batch fills, the cache behind a
//! `Mutex` held for lookups/stores only — never during counting or
//! estimation.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

use ceg_query::QueryGraph;

use crate::engine::Engine;
use crate::pool::WorkerPool;
use crate::protocol::{Request, Response};
use crate::registry::DatasetRegistry;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (= queue shards) for estimation requests.
    pub workers: usize,
    /// Maximum requests drained into one worker batch.
    pub batch_max: usize,
    /// LRU estimate-cache capacity in hash buckets (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: thread::available_parallelism()
                .map_or(2, |n| n.get())
                .max(2),
            batch_max: 32,
            cache_capacity: 4096,
        }
    }
}

/// One queued estimation request.
struct EstimateJob {
    dataset: String,
    query: QueryGraph,
    reply: mpsc::Sender<Response>,
}

/// A running estimation server. [`Server::shutdown`] (or dropping the
/// server) stops accepting and joins the accept thread; the worker pool
/// lives until the last open connection is done with it, so in-flight
/// requests are always answered.
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool<EstimateJob>>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the datasets in `registry`.
    pub fn start(
        registry: Arc<DatasetRegistry>,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Engine::new(registry, config.cache_capacity));
        let pool = {
            let engine = engine.clone();
            Arc::new(WorkerPool::new(
                config.workers,
                config.batch_max,
                move |batch| handle_batch(&engine, batch),
            ))
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let engine = engine.clone();
            let pool = pool.clone();
            let stop = stop.clone();
            thread::Builder::new()
                .name("ceg-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let engine = engine.clone();
                        let pool = pool.clone();
                        let _ = thread::Builder::new()
                            .name("ceg-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(stream, &engine, &pool);
                            });
                    }
                })?
        };
        Ok(Server {
            engine,
            addr,
            stop,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (counters, registry) — handy in tests and benches.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stop accepting new connections and join the accept thread. Worker
    /// threads drain outstanding requests and exit once the last open
    /// connection releases them.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Release our pool handle; the pool's own Drop joins the workers
        // once the remaining connection handlers (if any) drop theirs.
        self.pool.take();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Longest accepted request line. The largest legal request (32 edges,
/// maximal numbers, a long dataset name) is well under 1 KB; anything
/// bigger is garbage, and without a cap a client that never sends a
/// newline would grow the read buffer without bound.
const MAX_LINE_BYTES: u64 = 64 * 1024;

/// Outcome of reading one capped request line.
enum LineRead {
    /// A complete line (newline stripped is up to the caller).
    Line,
    /// Client closed the connection.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
}

/// Read one request line into `line` (cleared first), enforcing the
/// length cap.
fn read_request_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<LineRead> {
    line.clear();
    let n = io::Read::take(reader, MAX_LINE_BYTES).read_line(line)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if n as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
        return Ok(LineRead::TooLong);
    }
    Ok(LineRead::Line)
}

/// Per-connection loop: one request in, one response out (a batch counts
/// as one request with one multi-line response). Estimates are spread
/// round-robin over the queue shards; workers regroup their drained
/// batches by dataset, so same-dataset requests that arrive together
/// still amortize (and one hot dataset is not pinned to one worker).
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    pool: &Arc<WorkerPool<EstimateJob>>,
) -> io::Result<()> {
    // One write syscall per response line, and no Nagle delay on it:
    // an unbuffered `writeln!` issues several small writes per line,
    // which interacts with delayed ACKs into ~40ms per round-trip.
    stream.set_nodelay(true)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_request_line(&mut reader, &mut line)? {
            LineRead::Eof => break,
            LineRead::TooLong => {
                // Overlong line: refuse and drop the connection — the
                // rest of the stream is the same unterminated line.
                writeln!(
                    writer,
                    "{}",
                    Response::Error("request line too long".into()).format()
                )?;
                writer.flush()?;
                break;
            }
            LineRead::Line => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        // ESTIMATE_BATCH is the one multi-line request: its header says
        // how many query lines follow. Read them (still one capped line
        // at a time) before parsing, so the stream stays framed even
        // when a query line is malformed. A bad *header* leaves the
        // follow-up line count unknowable, so — like an overlong line —
        // it closes the connection instead of desynchronizing it.
        let mut request_text = std::mem::take(&mut line);
        if request_text.split_whitespace().next() == Some("ESTIMATE_BATCH") {
            match crate::protocol::parse_batch_header(&request_text) {
                Err(msg) => {
                    writeln!(writer, "{}", Response::Error(msg).format())?;
                    writer.flush()?;
                    break;
                }
                Ok((_, n)) => {
                    for _ in 0..n {
                        match read_request_line(&mut reader, &mut line)? {
                            LineRead::Eof => return Ok(()),
                            LineRead::TooLong => {
                                writeln!(
                                    writer,
                                    "{}",
                                    Response::Error("request line too long".into()).format()
                                )?;
                                writer.flush()?;
                                return Ok(());
                            }
                            LineRead::Line => {
                                if !request_text.ends_with('\n') {
                                    request_text.push('\n');
                                }
                                request_text.push_str(&line);
                            }
                        }
                    }
                }
            }
        }
        let response = match Request::parse(&request_text) {
            Err(msg) => Response::Error(msg),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(engine.stats()),
            Ok(Request::Quit) => {
                writeln!(writer, "{}", Response::Bye.format())?;
                writer.flush()?;
                break;
            }
            // Updates are answered inline by the handler: buffering an
            // edge is a cheap mutex push, and COMMIT is the explicitly
            // heavy call whose latency the client opted into — neither
            // benefits from the estimate batching shards.
            Ok(Request::AddEdge {
                dataset,
                src,
                dst,
                label,
            }) => match engine.add_edge(&dataset, src, dst, label) {
                Ok(ack) => Response::Updated(ack),
                Err(msg) => Response::Error(msg),
            },
            Ok(Request::DelEdge {
                dataset,
                src,
                dst,
                label,
            }) => match engine.del_edge(&dataset, src, dst, label) {
                Ok(ack) => Response::Updated(ack),
                Err(msg) => Response::Error(msg),
            },
            Ok(Request::Commit { dataset }) => match engine.commit(&dataset) {
                Ok(outcome) => Response::Committed(outcome),
                Err(msg) => Response::Error(msg),
            },
            // SNAPSHOT holds the dataset's state read lock while it
            // writes the file; answered inline like COMMIT — the client
            // opted into its latency.
            Ok(Request::Snapshot { dataset, path }) => match engine.snapshot(&dataset, &path) {
                Ok(ack) => Response::Snapshotted(ack),
                Err(msg) => Response::Error(msg),
            },
            // A batch fans its queries across the pool shards (each
            // worker still regroups by dataset) and streams the answers
            // back in request order under a BATCH header — one wire
            // round-trip, pool-level parallelism.
            Ok(Request::EstimateBatch { dataset, queries }) => {
                let receivers: Vec<_> = queries
                    .into_iter()
                    .map(|query| {
                        let (tx, rx) = mpsc::channel();
                        pool.submit(EstimateJob {
                            dataset: dataset.clone(),
                            query,
                            reply: tx,
                        });
                        rx
                    })
                    .collect();
                writeln!(
                    writer,
                    "{}",
                    crate::protocol::batch_response_header(receivers.len())
                )?;
                // Flush per line: answers stream back as workers finish,
                // they are not held until the whole batch completes.
                writer.flush()?;
                for rx in receivers {
                    let reply = rx
                        .recv()
                        .unwrap_or_else(|_| Response::Error("server shutting down".into()));
                    writeln!(writer, "{}", reply.format())?;
                    writer.flush()?;
                }
                continue;
            }
            Ok(Request::Estimate { dataset, query }) => {
                let (tx, rx) = mpsc::channel();
                pool.submit(EstimateJob {
                    dataset,
                    query,
                    reply: tx,
                });
                rx.recv()
                    .unwrap_or_else(|_| Response::Error("server shutting down".into()))
            }
        };
        writeln!(writer, "{}", response.format())?;
        writer.flush()?;
    }
    Ok(())
}

/// Worker handler: group a drained batch by dataset and estimate each
/// group in one engine call.
fn handle_batch(engine: &Engine, batch: Vec<EstimateJob>) {
    // Group while preserving arrival order within each dataset.
    let mut groups: Vec<(String, Vec<EstimateJob>)> = Vec::new();
    for job in batch {
        match groups.iter_mut().find(|(ds, _)| *ds == job.dataset) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((job.dataset.clone(), vec![job])),
        }
    }
    for (dataset, jobs) in groups {
        let queries: Vec<QueryGraph> = jobs.iter().map(|j| j.query.clone()).collect();
        match engine.estimate_batch(&dataset, &queries) {
            Ok(outcomes) => {
                let stats = engine.stats();
                for (job, outcome) in jobs.into_iter().zip(outcomes) {
                    let _ = job.reply.send(Response::Estimate {
                        outcome,
                        hits: stats.cache_hits,
                        misses: stats.cache_misses,
                    });
                }
            }
            Err(msg) => {
                for job in jobs {
                    let _ = job.reply.send(Response::Error(msg.clone()));
                }
            }
        }
    }
}
