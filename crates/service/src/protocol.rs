//! The line-delimited text wire protocol.
//!
//! One request per line, one response line per request — trivially
//! scriptable with netcat and stable for tests. Numbers are plain ASCII;
//! `f64` values round-trip through Rust's shortest-representation
//! `Display`/`FromStr`.
//!
//! ```text
//! client -> server                                server -> client
//! -----------------------------------------------------------------------
//! PING                                            PONG
//! ESTIMATE <ds> <nv> <ne> (<src> <dst> <lbl>)*    EST <value|none> cache=<hit|miss> hits=<n> misses=<n>
//! STATS                                           STATS requests=<n> batches=<n> hits=<n> misses=<n> datasets=<n>
//! QUIT                                            BYE
//! (anything malformed)                            ERR <message>
//! ```
//!
//! The query encoding (`num_vars num_edges` then `src dst label` triples)
//! matches the persisted workload format of `ceg-workload::io`, so a
//! workload file line maps 1:1 onto an `ESTIMATE` line.

use ceg_query::{QueryEdge, QueryGraph, VarId};

use crate::engine::{EngineStats, EstimateOutcome};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Estimate one query against a named dataset.
    Estimate { dataset: String, query: QueryGraph },
    /// Close the connection.
    Quit,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PING") => Ok(Request::Ping),
            Some("STATS") => Ok(Request::Stats),
            Some("QUIT") => Ok(Request::Quit),
            Some("ESTIMATE") => {
                let dataset = it.next().ok_or("ESTIMATE: missing dataset")?.to_string();
                let nv: VarId = it
                    .next()
                    .ok_or("ESTIMATE: missing num_vars")?
                    .parse()
                    .map_err(|_| "ESTIMATE: bad num_vars")?;
                let ne: usize = it
                    .next()
                    .ok_or("ESTIMATE: missing num_edges")?
                    .parse()
                    .map_err(|_| "ESTIMATE: bad num_edges")?;
                if ne > 32 {
                    return Err("ESTIMATE: queries are limited to 32 edges".into());
                }
                let mut edges = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let src: VarId = it
                        .next()
                        .ok_or("ESTIMATE: truncated edge list")?
                        .parse()
                        .map_err(|_| "ESTIMATE: bad src")?;
                    let dst: VarId = it
                        .next()
                        .ok_or("ESTIMATE: truncated edge list")?
                        .parse()
                        .map_err(|_| "ESTIMATE: bad dst")?;
                    let label: u16 = it
                        .next()
                        .ok_or("ESTIMATE: truncated edge list")?
                        .parse()
                        .map_err(|_| "ESTIMATE: bad label")?;
                    if src >= nv || dst >= nv {
                        return Err(format!(
                            "ESTIMATE: edge endpoint out of range (vars are 0..{nv})"
                        ));
                    }
                    edges.push(QueryEdge::new(src, dst, label));
                }
                if it.next().is_some() {
                    return Err("ESTIMATE: trailing tokens after edge list".into());
                }
                if edges.is_empty() {
                    return Err("ESTIMATE: query must have at least one edge".into());
                }
                let query = QueryGraph::new(nv, edges);
                // The estimators assume connected queries (paper §4.2);
                // rejecting here keeps malformed wire input out of the
                // worker threads.
                if !query.is_connected() {
                    return Err("ESTIMATE: query must be connected".into());
                }
                Ok(Request::Estimate { dataset, query })
            }
            Some(other) => Err(format!("unknown command `{other}`")),
            None => Err("empty request".into()),
        }
    }

    /// Render the request as one wire line (no trailing newline).
    pub fn format(&self) -> String {
        match self {
            Request::Ping => "PING".into(),
            Request::Stats => "STATS".into(),
            Request::Quit => "QUIT".into(),
            Request::Estimate { dataset, query } => {
                let mut line = format!(
                    "ESTIMATE {dataset} {} {}",
                    query.num_vars(),
                    query.num_edges()
                );
                for e in query.edges() {
                    line.push_str(&format!(" {} {} {}", e.src, e.dst, e.label));
                }
                line
            }
        }
    }
}

/// A parsed server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    /// Estimate plus the server-wide cache counters *after* this request.
    Estimate {
        outcome: EstimateOutcome,
        hits: u64,
        misses: u64,
    },
    Stats(EngineStats),
    Error(String),
    Bye,
}

impl Response {
    /// Render the response as one wire line (no trailing newline).
    pub fn format(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Bye => "BYE".into(),
            Response::Error(msg) => format!("ERR {msg}"),
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => {
                let value = match outcome.value {
                    Some(v) => v.to_string(),
                    None => "none".into(),
                };
                let cache = if outcome.cached { "hit" } else { "miss" };
                format!("EST {value} cache={cache} hits={hits} misses={misses}")
            }
            Response::Stats(s) => format!(
                "STATS requests={} batches={} hits={} misses={} datasets={}",
                s.requests, s.batches, s.cache_hits, s.cache_misses, s.datasets
            ),
        }
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PONG") => Ok(Response::Pong),
            Some("BYE") => Ok(Response::Bye),
            Some("ERR") => {
                let rest = line.trim_start();
                Ok(Response::Error(
                    rest.strip_prefix("ERR").unwrap_or(rest).trim().to_string(),
                ))
            }
            Some("EST") => {
                let value_tok = it.next().ok_or("EST: missing value")?;
                let value = match value_tok {
                    "none" => None,
                    v => Some(v.parse::<f64>().map_err(|_| "EST: bad value")?),
                };
                let cached = match kv(it.next(), "cache")? {
                    "hit" => true,
                    "miss" => false,
                    other => return Err(format!("EST: bad cache flag `{other}`")),
                };
                let hits = kv(it.next(), "hits")?
                    .parse()
                    .map_err(|_| "EST: bad hits")?;
                let misses = kv(it.next(), "misses")?
                    .parse()
                    .map_err(|_| "EST: bad misses")?;
                Ok(Response::Estimate {
                    outcome: EstimateOutcome { value, cached },
                    hits,
                    misses,
                })
            }
            Some("STATS") => {
                let requests = kv(it.next(), "requests")?
                    .parse()
                    .map_err(|_| "STATS: bad requests")?;
                let batches = kv(it.next(), "batches")?
                    .parse()
                    .map_err(|_| "STATS: bad batches")?;
                let cache_hits = kv(it.next(), "hits")?
                    .parse()
                    .map_err(|_| "STATS: bad hits")?;
                let cache_misses = kv(it.next(), "misses")?
                    .parse()
                    .map_err(|_| "STATS: bad misses")?;
                let datasets = kv(it.next(), "datasets")?
                    .parse()
                    .map_err(|_| "STATS: bad datasets")?;
                Ok(Response::Stats(EngineStats {
                    requests,
                    batches,
                    cache_hits,
                    cache_misses,
                    datasets,
                }))
            }
            Some(other) => Err(format!("unknown response `{other}`")),
            None => Err("empty response".into()),
        }
    }
}

/// Extract the value of a `key=value` token, checking the key.
fn kv<'a>(tok: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let tok = tok.ok_or_else(|| format!("missing {key}=…"))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, got `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::templates;

    #[test]
    fn estimate_roundtrip() {
        let req = Request::Estimate {
            dataset: "imdb".into(),
            query: templates::path(2, &[3, 4]),
        };
        let line = req.format();
        assert_eq!(line, "ESTIMATE imdb 3 2 0 1 3 1 2 4");
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn simple_requests_roundtrip() {
        for req in [Request::Ping, Request::Stats, Request::Quit] {
            assert_eq!(Request::parse(&req.format()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "BOGUS",
            "ESTIMATE",
            "ESTIMATE ds",
            "ESTIMATE ds 3",
            "ESTIMATE ds 3 1",
            "ESTIMATE ds 3 1 0 1",         // truncated edge
            "ESTIMATE ds 2 1 0 5 0",       // endpoint out of range
            "ESTIMATE ds 3 1 0 1 0 9 9 9", // trailing tokens
            "ESTIMATE ds 3 99 0 1 0",      // too many edges
            "ESTIMATE ds 1 0",             // zero edges
            "ESTIMATE ds 4 2 0 1 0 2 3 1", // disconnected
        ] {
            assert!(Request::parse(line).is_err(), "should reject: {line:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = [
            Response::Pong,
            Response::Bye,
            Response::Error("unknown dataset `x`".into()),
            Response::Estimate {
                outcome: EstimateOutcome {
                    value: Some(1234.5),
                    cached: true,
                },
                hits: 7,
                misses: 3,
            },
            Response::Estimate {
                outcome: EstimateOutcome {
                    value: None,
                    cached: false,
                },
                hits: 0,
                misses: 1,
            },
            Response::Stats(EngineStats {
                requests: 10,
                batches: 4,
                cache_hits: 6,
                cache_misses: 4,
                datasets: 2,
            }),
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.format()).unwrap(), r);
        }
    }

    #[test]
    fn estimate_values_roundtrip_exactly() {
        // Display/FromStr round-trips f64 exactly (shortest representation).
        for v in [0.1, 1e300, 123456789.123456, f64::MIN_POSITIVE] {
            let r = Response::Estimate {
                outcome: EstimateOutcome {
                    value: Some(v),
                    cached: false,
                },
                hits: 0,
                misses: 0,
            };
            match Response::parse(&r.format()).unwrap() {
                Response::Estimate { outcome, .. } => assert_eq!(outcome.value, Some(v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
