//! The line-delimited text wire protocol.
//!
//! One request per line, one response line per request — trivially
//! scriptable with netcat and stable for tests. Numbers are plain ASCII;
//! `f64` values round-trip through Rust's shortest-representation
//! `Display`/`FromStr`.
//!
//! ```text
//! client -> server                                server -> client
//! -----------------------------------------------------------------------
//! PING                                            PONG
//! ESTIMATE <ds> [DEADLINE_MS=<ms>] <nv> <ne> (<src> <dst> <lbl>)*
//!                                                 EST <value|none> cache=<hit|miss> hits=<n> misses=<n>
//! ESTIMATE_BATCH <ds> <n> [DEADLINE_MS=<ms>]      BATCH <n>
//!   then n lines: <nv> <ne> (<src> <dst> <lbl>)*    then n ordered EST/BUSY/TIMEOUT/ERR lines
//! ADD_EDGE <ds> <src> <dst> <lbl>                 OK epoch=<n> pending=<n>
//! DEL_EDGE <ds> <src> <dst> <lbl>                 OK epoch=<n> pending=<n>
//! COMMIT <ds>                                     COMMITTED epoch=<n> added=<n> deleted=<n> recounted=<n> rebased=<0|1>
//! SNAPSHOT <ds> <path>                            SNAPSHOTTED epoch=<n> bytes=<n>
//! STATS                                           STATS requests=<n> batches=<n> hits=<n> misses=<n> datasets=<n> busy=<n> timeouts=<n> queued=<n>
//! METRICS                                         METRICS <n>, then n lines: <key> <value>
//! METRICS_PROM                                    METRICS_PROM <n>, then n Prometheus exposition lines
//! EXPLAIN_ESTIMATE <ds> [DEADLINE_MS=<ms>] <query>
//!                                                 EXPLAIN <n>, then the EST (or TIMEOUT) line,
//!                                                   then span/counter breakdown lines
//! SLOWLOG [n]                                     SLOWLOG <n>, then n slow-query record lines
//! SHUTDOWN                                        DRAINING
//! QUIT                                            BYE
//! (estimate rejected by admission/drain)          BUSY <message>
//! (estimate abandoned at its deadline)            TIMEOUT deadline_ms=<ms>
//! (anything malformed)                            ERR <message>
//! ```
//!
//! # Overload & lifecycle commands
//!
//! `DEADLINE_MS` bounds one estimate (or a whole batch) in wall-clock
//! milliseconds from the moment the server parses it; a request that
//! cannot be answered in time gets a typed `TIMEOUT` reply, never a
//! partial line. `BUSY` is the admission-control rejection: the
//! per-dataset queue is full (or the server is draining) and the request
//! was refused *before* consuming worker time — clients retry with
//! backoff. `METRICS` dumps the whole metrics registry as `<key> <value>`
//! lines under a counted header (same framing discipline as `BATCH`).
//! `SHUTDOWN` asks the server to drain: the reply `DRAINING` confirms,
//! new work is BUSY-rejected, and the process writes final snapshots and
//! exits once in-flight work settles (see `cegcli serve`).
//!
//! `ESTIMATE_BATCH` is the only multi-line request: its header announces
//! how many query lines follow (each the `<nv> <ne> <triples>` tail of an
//! `ESTIMATE`, i.e. exactly one workload-file line), and the server
//! answers with a `BATCH <n>` header followed by `n` response lines in
//! request order — one wire round-trip for the whole batch. A malformed
//! query line fails the *whole* batch with a single `ERR` (the server
//! still consumes all `n` lines, so the connection stays in sync).
//!
//! `SNAPSHOT` writes the dataset's committed graph, Markov catalog and
//! epoch to `<path>` **on the server's filesystem** as a binary
//! `.cegsnap` file (see `ceg_graph::snapshot`); `cegcli serve
//! --snapshot <path>` restores from it at boot. Because this is a
//! remote-triggered filesystem write, the path must end in `.cegsnap`
//! (a client can only replace snapshot files, never truncate arbitrary
//! server-writable files), and the write is atomic (temp file + sync +
//! rename), so a failed or concurrent snapshot never destroys the
//! previous good one.
//!
//! The query encoding (`num_vars num_edges` then `src dst label` triples)
//! matches the persisted workload format of `ceg-workload::io`, so a
//! workload file line maps 1:1 onto an `ESTIMATE` line.
//!
//! # Observability commands
//!
//! Every reply line (and every `BATCH` body line) carries a trailing
//! ` id=<n>` token: the per-request id the server assigned when it read
//! the request. Clients strip it with [`split_id`] before parsing; the
//! id correlates replies with server-side slow-query records. Counted
//! body lines under `METRICS`/`METRICS_PROM`/`EXPLAIN`/`SLOWLOG` headers
//! are *not* stamped — their grammar owns the whole line.
//!
//! `EXPLAIN_ESTIMATE` runs the exact same estimation path as `ESTIMATE`
//! (same cache, same catalog, same estimator — the estimate is
//! bit-identical) with a per-request trace enabled, and answers with a
//! counted breakdown: the EST line first, then `span <name> <micros>`
//! and `counter <name> <value>` lines ([`ExplainItem`]). `SLOWLOG [n]`
//! returns the newest `n` (default: all) entries of the server's
//! slow-query ring — requests whose batch latency crossed the
//! configured threshold — newest first. `METRICS_PROM` is the same
//! registry as `METRICS` rendered in Prometheus text exposition format
//! (`# TYPE` lines, `_bucket`/`_sum`/`_count` histogram series).
//!
//! `ADD_EDGE`/`DEL_EDGE` buffer into the dataset's pending delta and are
//! invisible to `ESTIMATE` until a `COMMIT` applies them — which bumps
//! the dataset epoch and thereby invalidates every cached estimate
//! computed before it. The wire layer only checks syntax; the registry
//! validates ids against the dataset's domain plus a bounded growth
//! allowance ([`crate::registry::MAX_UPDATE_VERTEX`]) and enforces the
//! pending-buffer cap, answering violations with `ERR`.

use ceg_graph::{LabelId, VertexId};
use ceg_query::{QueryEdge, QueryGraph, VarId};

use crate::engine::{EngineStats, EstimateOutcome, SnapshotAck, UpdateAck};
use crate::registry::CommitOutcome;

/// Largest number of queries one `ESTIMATE_BATCH` may carry. Big enough
/// for any sane client batch, small enough that a hostile header cannot
/// make the server buffer unbounded lines.
pub const MAX_BATCH_QUERIES: usize = 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Full metrics-registry dump.
    Metrics,
    /// Ask the server to drain and shut down.
    Shutdown,
    /// Estimate one query against a named dataset, optionally bounded by
    /// a wall-clock deadline in milliseconds.
    Estimate {
        dataset: String,
        query: QueryGraph,
        deadline_ms: Option<u64>,
    },
    /// `ESTIMATE` with tracing enabled: same grammar, and the reply is a
    /// counted `EXPLAIN <n>` breakdown (EST line first, then span and
    /// counter lines) instead of a single EST line.
    ExplainEstimate {
        dataset: String,
        query: QueryGraph,
        deadline_ms: Option<u64>,
    },
    /// Fetch the most recent `n` slow-query records (all of them when
    /// `None`).
    SlowLog { n: Option<usize> },
    /// Metrics in Prometheus text exposition format.
    MetricsProm,
    /// Estimate an ordered batch of queries against one dataset in a
    /// single round-trip (the only multi-line request). The deadline, if
    /// any, covers the whole batch.
    EstimateBatch {
        dataset: String,
        queries: Vec<QueryGraph>,
        deadline_ms: Option<u64>,
    },
    /// Persist the dataset's committed graph + catalog + epoch to a
    /// `.cegsnap` file on the server's filesystem.
    Snapshot { dataset: String, path: String },
    /// Buffer an edge insertion into the dataset's pending delta.
    AddEdge {
        dataset: String,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    },
    /// Buffer an edge deletion into the dataset's pending delta.
    DelEdge {
        dataset: String,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    },
    /// Apply the dataset's pending delta and bump its epoch.
    Commit { dataset: String },
    /// Close the connection.
    Quit,
}

/// Parse the tail of an `ADD_EDGE`/`DEL_EDGE` line: `<ds> <src> <dst>
/// <label>` (syntax only; domain/growth bounds are the registry's job).
fn parse_update<'a>(
    cmd: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<(String, VertexId, VertexId, LabelId), String> {
    let dataset = it
        .next()
        .ok_or(format!("{cmd}: missing dataset"))?
        .to_string();
    let src: VertexId = it
        .next()
        .ok_or(format!("{cmd}: missing src"))?
        .parse()
        .map_err(|_| format!("{cmd}: bad src"))?;
    let dst: VertexId = it
        .next()
        .ok_or(format!("{cmd}: missing dst"))?
        .parse()
        .map_err(|_| format!("{cmd}: bad dst"))?;
    let label: LabelId = it
        .next()
        .ok_or(format!("{cmd}: missing label"))?
        .parse()
        .map_err(|_| format!("{cmd}: bad label"))?;
    if it.next().is_some() {
        return Err(format!("{cmd}: trailing tokens"));
    }
    Ok((dataset, src, dst, label))
}

/// Parse a query encoding `<nv> <ne> (<src> <dst> <lbl>)*` from a token
/// stream — the tail of an `ESTIMATE` line, or one full `ESTIMATE_BATCH`
/// query line. `ctx` prefixes error messages.
fn parse_query_tokens<'a>(
    ctx: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<QueryGraph, String> {
    let nv: VarId = it
        .next()
        .ok_or(format!("{ctx}: missing num_vars"))?
        .parse()
        .map_err(|_| format!("{ctx}: bad num_vars"))?;
    let ne: usize = it
        .next()
        .ok_or(format!("{ctx}: missing num_edges"))?
        .parse()
        .map_err(|_| format!("{ctx}: bad num_edges"))?;
    if ne > 32 {
        return Err(format!("{ctx}: queries are limited to 32 edges"));
    }
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let src: VarId = it
            .next()
            .ok_or(format!("{ctx}: truncated edge list"))?
            .parse()
            .map_err(|_| format!("{ctx}: bad src"))?;
        let dst: VarId = it
            .next()
            .ok_or(format!("{ctx}: truncated edge list"))?
            .parse()
            .map_err(|_| format!("{ctx}: bad dst"))?;
        let label: u16 = it
            .next()
            .ok_or(format!("{ctx}: truncated edge list"))?
            .parse()
            .map_err(|_| format!("{ctx}: bad label"))?;
        if src >= nv || dst >= nv {
            return Err(format!(
                "{ctx}: edge endpoint out of range (vars are 0..{nv})"
            ));
        }
        edges.push(QueryEdge::new(src, dst, label));
    }
    if it.next().is_some() {
        return Err(format!("{ctx}: trailing tokens after edge list"));
    }
    if edges.is_empty() {
        return Err(format!("{ctx}: query must have at least one edge"));
    }
    let query = QueryGraph::new(nv, edges);
    // The estimators assume connected queries (paper §4.2); rejecting
    // here keeps malformed wire input out of the worker threads.
    if !query.is_connected() {
        return Err(format!("{ctx}: query must be connected"));
    }
    Ok(query)
}

/// Parse an optional `DEADLINE_MS=<ms>` token. Returns `Ok(None)` if the
/// token is absent (`tok` was `None` or not a deadline attribute — the
/// caller decides what the token means then), `Ok(Some(ms))` on a valid
/// deadline, and an error on a malformed value.
fn parse_deadline_token(ctx: &str, tok: Option<&str>) -> Result<Option<u64>, String> {
    match tok.and_then(|t| t.strip_prefix("DEADLINE_MS=")) {
        None => Ok(None),
        Some(rest) => rest
            .parse()
            .map(Some)
            .map_err(|_| format!("{ctx}: bad DEADLINE_MS value")),
    }
}

/// Append a query in its wire encoding `<nv> <ne> (<src> <dst> <lbl>)*`.
fn format_query_tokens(line: &mut String, query: &QueryGraph) {
    line.push_str(&format!("{} {}", query.num_vars(), query.num_edges()));
    for e in query.edges() {
        line.push_str(&format!(" {} {} {}", e.src, e.dst, e.label));
    }
}

/// A query's wire encoding as an owned string (slow-query records keep
/// the query text in exactly the grammar an `ESTIMATE` line would use).
pub fn format_query(query: &QueryGraph) -> String {
    let mut s = String::new();
    format_query_tokens(&mut s, query);
    s
}

/// Append the per-request id tail ` id=<n>` the server stamps on every
/// reply line (and on `ERR`/`BUSY`/`TIMEOUT` lines) so a client can
/// correlate replies with its requests and server-side slow-query
/// records. Counted *body* lines (metric/span/slowlog lines under a
/// header) are never stamped — their grammar has no id tail.
pub fn append_id(line: &mut String, id: u64) {
    line.push_str(&format!(" id={id}"));
}

/// Split a reply line into its payload and the ` id=<n>` tail, if one is
/// present. Lines without a parseable tail come back unchanged — the
/// helper never fails, so clients interoperate with servers that do not
/// stamp ids.
pub fn split_id(line: &str) -> (&str, Option<u64>) {
    if let Some((head, tail)) = line.rsplit_once(' ') {
        if let Some(id) = tail.strip_prefix("id=").and_then(|v| v.parse().ok()) {
            return (head, Some(id));
        }
    }
    (line, None)
}

/// Parse an `ESTIMATE_BATCH <ds> <n> [DEADLINE_MS=<ms>]` header line,
/// validating the count against [`MAX_BATCH_QUERIES`]. The server uses
/// this to learn how many query lines to read before it can hand the
/// whole text to [`Request::parse`].
pub fn parse_batch_header(line: &str) -> Result<(String, usize, Option<u64>), String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("ESTIMATE_BATCH") => {}
        _ => return Err("not an ESTIMATE_BATCH header".into()),
    }
    let dataset = it
        .next()
        .ok_or("ESTIMATE_BATCH: missing dataset")?
        .to_string();
    let n: usize = it
        .next()
        .ok_or("ESTIMATE_BATCH: missing query count")?
        .parse()
        .map_err(|_| "ESTIMATE_BATCH: bad query count")?;
    let tail = it.next();
    let deadline_ms = parse_deadline_token("ESTIMATE_BATCH", tail)?;
    if (tail.is_some() && deadline_ms.is_none()) || it.next().is_some() {
        return Err("ESTIMATE_BATCH: trailing tokens".into());
    }
    if n == 0 {
        return Err("ESTIMATE_BATCH: query count must be at least 1".into());
    }
    if n > MAX_BATCH_QUERIES {
        return Err(format!(
            "ESTIMATE_BATCH: query count {n} exceeds the limit of {MAX_BATCH_QUERIES}"
        ));
    }
    Ok((dataset, n, deadline_ms))
}

/// Render the `BATCH <n>` response header that precedes a batch's `n`
/// ordered response lines.
pub fn batch_response_header(n: usize) -> String {
    format!("BATCH {n}")
}

/// Parse a `BATCH <n>` response header.
pub fn parse_batch_response_header(line: &str) -> Result<usize, String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("BATCH") => {}
        _ => return Err(format!("expected BATCH header, got `{line}`")),
    }
    let n: usize = it
        .next()
        .ok_or("BATCH: missing count")?
        .parse()
        .map_err(|_| "BATCH: bad count")?;
    if it.next().is_some() {
        return Err("BATCH: trailing tokens".into());
    }
    Ok(n)
}

/// Render the `METRICS <n>` response header that precedes `n`
/// `<key> <value>` lines.
pub fn metrics_response_header(n: usize) -> String {
    format!("METRICS {n}")
}

/// Parse a `METRICS <n>` response header.
pub fn parse_metrics_response_header(line: &str) -> Result<usize, String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("METRICS") => {}
        _ => return Err(format!("expected METRICS header, got `{line}`")),
    }
    let n: usize = it
        .next()
        .ok_or("METRICS: missing count")?
        .parse()
        .map_err(|_| "METRICS: bad count")?;
    if it.next().is_some() {
        return Err("METRICS: trailing tokens".into());
    }
    Ok(n)
}

/// Render one `<key> <value>` line of a `METRICS` reply body — the
/// counterpart of [`parse_metric_line`], so the body grammar has exactly
/// one owner on each side of the wire.
pub fn format_metric_line(key: &str, value: u64) -> String {
    format!("{key} {value}")
}

/// One Prometheus text-exposition line of a `METRICS_PROM` reply body.
/// The engine already renders full exposition lines; this pass-through
/// exists so every byte a connection handler writes still flows through
/// a `protocol::` constructor (the typed-reply lint keys on that).
pub fn format_prom_line(line: &str) -> &str {
    line
}

/// Parse one `<key> <value>` line of a `METRICS` reply body.
pub fn parse_metric_line(line: &str) -> Result<(String, u64), String> {
    let mut it = line.split_whitespace();
    let key = it.next().ok_or("metric line: missing key")?.to_string();
    let value: u64 = it
        .next()
        .ok_or("metric line: missing value")?
        .parse()
        .map_err(|_| format!("metric line: bad value for `{key}`"))?;
    if it.next().is_some() {
        return Err("metric line: trailing tokens".into());
    }
    Ok((key, value))
}

/// Render the `EXPLAIN <n>` response header that precedes the EST (or
/// TIMEOUT) line and the span/counter breakdown of an
/// `EXPLAIN_ESTIMATE`.
pub fn explain_response_header(n: usize) -> String {
    format!("EXPLAIN {n}")
}

/// Parse an `EXPLAIN <n>` response header.
pub fn parse_explain_response_header(line: &str) -> Result<usize, String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("EXPLAIN") => {}
        _ => return Err(format!("expected EXPLAIN header, got `{line}`")),
    }
    let n: usize = it
        .next()
        .ok_or("EXPLAIN: missing count")?
        .parse()
        .map_err(|_| "EXPLAIN: bad count")?;
    if it.next().is_some() {
        return Err("EXPLAIN: trailing tokens".into());
    }
    Ok(n)
}

/// One line of an `EXPLAIN` breakdown body (after the leading EST line):
/// a measured span or an accumulated counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainItem {
    /// `span <name> <micros>`
    Span { name: String, micros: u64 },
    /// `counter <name> <value>`
    Counter { name: String, value: u64 },
}

impl ExplainItem {
    /// Render as one wire line.
    pub fn format(&self) -> String {
        match self {
            ExplainItem::Span { name, micros } => format!("span {name} {micros}"),
            ExplainItem::Counter { name, value } => format!("counter {name} {value}"),
        }
    }

    /// Parse one breakdown line.
    pub fn parse(line: &str) -> Result<ExplainItem, String> {
        let mut it = line.split_whitespace();
        let kind = it.next().ok_or("explain line: empty")?;
        let name = it
            .next()
            .ok_or(format!("explain line: missing name in `{line}`"))?
            .to_string();
        let value: u64 = it
            .next()
            .ok_or(format!("explain line: missing value in `{line}`"))?
            .parse()
            .map_err(|_| format!("explain line: bad value in `{line}`"))?;
        if it.next().is_some() {
            return Err(format!("explain line: trailing tokens in `{line}`"));
        }
        match kind {
            "span" => Ok(ExplainItem::Span {
                name,
                micros: value,
            }),
            "counter" => Ok(ExplainItem::Counter { name, value }),
            other => Err(format!("explain line: unknown kind `{other}`")),
        }
    }
}

/// Render the `SLOWLOG <n>` response header that precedes `n` slow-query
/// record lines.
pub fn slowlog_response_header(n: usize) -> String {
    format!("SLOWLOG {n}")
}

/// Parse a `SLOWLOG <n>` response header.
pub fn parse_slowlog_response_header(line: &str) -> Result<usize, String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("SLOWLOG") => {}
        _ => return Err(format!("expected SLOWLOG header, got `{line}`")),
    }
    let n: usize = it
        .next()
        .ok_or("SLOWLOG: missing count")?
        .parse()
        .map_err(|_| "SLOWLOG: bad count")?;
    if it.next().is_some() {
        return Err("SLOWLOG: trailing tokens".into());
    }
    Ok(n)
}

/// Render one slow-query record as a wire line. The query encoding goes
/// **last** because it contains spaces; every other field is a fixed
/// `key=value` token.
pub fn format_slowlog_entry(e: &crate::engine::SlowQueryEntry) -> String {
    format!(
        "id={} dataset={} epoch={} micros={} cache_us={} fill_us={} estimate_us={} query={}",
        e.id, e.dataset, e.epoch, e.micros, e.cache_us, e.fill_us, e.estimate_us, e.query
    )
}

/// Parse one slow-query record line.
pub fn parse_slowlog_entry(line: &str) -> Result<crate::engine::SlowQueryEntry, String> {
    let mut it = line.split_whitespace();
    let id = kv(it.next(), "id")?
        .parse()
        .map_err(|_| "slowlog: bad id")?;
    let dataset = kv(it.next(), "dataset")?.to_string();
    let epoch = kv(it.next(), "epoch")?
        .parse()
        .map_err(|_| "slowlog: bad epoch")?;
    let micros = kv(it.next(), "micros")?
        .parse()
        .map_err(|_| "slowlog: bad micros")?;
    let cache_us = kv(it.next(), "cache_us")?
        .parse()
        .map_err(|_| "slowlog: bad cache_us")?;
    let fill_us = kv(it.next(), "fill_us")?
        .parse()
        .map_err(|_| "slowlog: bad fill_us")?;
    let estimate_us = kv(it.next(), "estimate_us")?
        .parse()
        .map_err(|_| "slowlog: bad estimate_us")?;
    let first = kv(it.next(), "query")?;
    let mut query = first.to_string();
    for tok in it {
        query.push(' ');
        query.push_str(tok);
    }
    Ok(crate::engine::SlowQueryEntry {
        id,
        dataset,
        epoch,
        micros,
        cache_us,
        fill_us,
        estimate_us,
        query,
    })
}

/// Render the `METRICS_PROM <n>` response header that precedes `n`
/// Prometheus text-exposition lines.
pub fn metrics_prom_response_header(n: usize) -> String {
    format!("METRICS_PROM {n}")
}

/// Parse a `METRICS_PROM <n>` response header.
pub fn parse_metrics_prom_response_header(line: &str) -> Result<usize, String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("METRICS_PROM") => {}
        _ => return Err(format!("expected METRICS_PROM header, got `{line}`")),
    }
    let n: usize = it
        .next()
        .ok_or("METRICS_PROM: missing count")?
        .parse()
        .map_err(|_| "METRICS_PROM: bad count")?;
    if it.next().is_some() {
        return Err("METRICS_PROM: trailing tokens".into());
    }
    Ok(n)
}

impl Request {
    /// Parse one request. Input is a single line for every command except
    /// `ESTIMATE_BATCH`, whose header line is followed by the announced
    /// number of query lines (the server assembles them before calling
    /// this).
    pub fn parse(input: &str) -> Result<Request, String> {
        let mut lines = input.lines();
        let line = lines.next().unwrap_or("");
        if line.split_whitespace().next() == Some("ESTIMATE_BATCH") {
            let (dataset, n, deadline_ms) = parse_batch_header(line)?;
            let mut queries = Vec::with_capacity(n);
            for i in 0..n {
                let qline = lines
                    .next()
                    .ok_or(format!("ESTIMATE_BATCH: missing query line {}", i + 1))?;
                let ctx = format!("ESTIMATE_BATCH query {}", i + 1);
                queries.push(parse_query_tokens(&ctx, &mut qline.split_whitespace())?);
            }
            if lines.next().is_some() {
                return Err("ESTIMATE_BATCH: trailing lines after the batch".into());
            }
            return Ok(Request::EstimateBatch {
                dataset,
                queries,
                deadline_ms,
            });
        }
        let request = Self::parse_single_line(&mut line.split_whitespace())?;
        if lines.next().is_some() {
            return Err("trailing lines after a single-line request".into());
        }
        Ok(request)
    }

    /// Parse a single-line request (everything but `ESTIMATE_BATCH`,
    /// which [`Request::parse`] assembles from its follow-up lines).
    fn parse_single_line<'a>(
        mut it: &mut impl Iterator<Item = &'a str>,
    ) -> Result<Request, String> {
        match it.next() {
            Some("PING") => Ok(Request::Ping),
            Some("STATS") => Ok(Request::Stats),
            Some("METRICS") => Ok(Request::Metrics),
            Some("METRICS_PROM") => {
                if it.next().is_some() {
                    return Err("METRICS_PROM: trailing tokens".into());
                }
                Ok(Request::MetricsProm)
            }
            Some("SLOWLOG") => {
                let n = match it.next() {
                    None => None,
                    Some(tok) => Some(
                        tok.parse::<usize>()
                            .map_err(|_| "SLOWLOG: bad entry count".to_string())?,
                    ),
                };
                if it.next().is_some() {
                    return Err("SLOWLOG: trailing tokens".into());
                }
                Ok(Request::SlowLog { n })
            }
            Some("SHUTDOWN") => Ok(Request::Shutdown),
            Some("QUIT") => Ok(Request::Quit),
            Some("ADD_EDGE") => {
                let (dataset, src, dst, label) = parse_update("ADD_EDGE", &mut it)?;
                Ok(Request::AddEdge {
                    dataset,
                    src,
                    dst,
                    label,
                })
            }
            Some("DEL_EDGE") => {
                let (dataset, src, dst, label) = parse_update("DEL_EDGE", &mut it)?;
                Ok(Request::DelEdge {
                    dataset,
                    src,
                    dst,
                    label,
                })
            }
            Some("COMMIT") => {
                let dataset = it.next().ok_or("COMMIT: missing dataset")?.to_string();
                if it.next().is_some() {
                    return Err("COMMIT: trailing tokens".into());
                }
                Ok(Request::Commit { dataset })
            }
            Some(cmd @ ("ESTIMATE" | "EXPLAIN_ESTIMATE")) => {
                let dataset = it
                    .next()
                    .ok_or(format!("{cmd}: missing dataset"))?
                    .to_string();
                // The deadline attribute is optional; if the next token
                // isn't one, it is the start of the query encoding.
                let first = it.next().ok_or(format!("{cmd}: missing num_vars"))?;
                let deadline_ms = parse_deadline_token(cmd, Some(first))?;
                let query = if deadline_ms.is_some() {
                    parse_query_tokens(cmd, it)?
                } else {
                    parse_query_tokens(cmd, &mut std::iter::once(first).chain(it))?
                };
                if cmd == "EXPLAIN_ESTIMATE" {
                    Ok(Request::ExplainEstimate {
                        dataset,
                        query,
                        deadline_ms,
                    })
                } else {
                    Ok(Request::Estimate {
                        dataset,
                        query,
                        deadline_ms,
                    })
                }
            }
            Some("SNAPSHOT") => {
                let dataset = it.next().ok_or("SNAPSHOT: missing dataset")?.to_string();
                let path = it.next().ok_or("SNAPSHOT: missing path")?.to_string();
                if it.next().is_some() {
                    return Err("SNAPSHOT: trailing tokens (paths cannot contain spaces)".into());
                }
                Ok(Request::Snapshot { dataset, path })
            }
            Some(other) => Err(format!("unknown command `{other}`")),
            None => Err("empty request".into()),
        }
    }

    /// Render the request in wire form (no trailing newline). Every
    /// request is one line except `ESTIMATE_BATCH`, which renders as its
    /// header followed by one line per query.
    pub fn format(&self) -> String {
        match self {
            Request::Ping => "PING".into(),
            Request::Stats => "STATS".into(),
            Request::Metrics => "METRICS".into(),
            Request::Shutdown => "SHUTDOWN".into(),
            Request::Quit => "QUIT".into(),
            Request::Snapshot { dataset, path } => format!("SNAPSHOT {dataset} {path}"),
            Request::EstimateBatch {
                dataset,
                queries,
                deadline_ms,
            } => {
                let mut text = format!("ESTIMATE_BATCH {dataset} {}", queries.len());
                if let Some(ms) = deadline_ms {
                    text.push_str(&format!(" DEADLINE_MS={ms}"));
                }
                for q in queries {
                    text.push('\n');
                    format_query_tokens(&mut text, q);
                }
                text
            }
            Request::AddEdge {
                dataset,
                src,
                dst,
                label,
            } => format!("ADD_EDGE {dataset} {src} {dst} {label}"),
            Request::DelEdge {
                dataset,
                src,
                dst,
                label,
            } => format!("DEL_EDGE {dataset} {src} {dst} {label}"),
            Request::Commit { dataset } => format!("COMMIT {dataset}"),
            Request::Estimate {
                dataset,
                query,
                deadline_ms,
            } => {
                let mut line = format!("ESTIMATE {dataset} ");
                if let Some(ms) = deadline_ms {
                    line.push_str(&format!("DEADLINE_MS={ms} "));
                }
                format_query_tokens(&mut line, query);
                line
            }
            Request::ExplainEstimate {
                dataset,
                query,
                deadline_ms,
            } => {
                let mut line = format!("EXPLAIN_ESTIMATE {dataset} ");
                if let Some(ms) = deadline_ms {
                    line.push_str(&format!("DEADLINE_MS={ms} "));
                }
                format_query_tokens(&mut line, query);
                line
            }
            Request::SlowLog { n } => match n {
                Some(n) => format!("SLOWLOG {n}"),
                None => "SLOWLOG".into(),
            },
            Request::MetricsProm => "METRICS_PROM".into(),
        }
    }
}

/// A parsed server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    /// Estimate plus the server-wide cache counters *after* this request.
    Estimate {
        outcome: EstimateOutcome,
        hits: u64,
        misses: u64,
    },
    Stats(EngineStats),
    /// Acknowledgement of a buffered `ADD_EDGE`/`DEL_EDGE`.
    Updated(UpdateAck),
    /// Result of a `COMMIT`.
    Committed(CommitOutcome),
    /// Result of a `SNAPSHOT`: the persisted epoch and file size.
    Snapshotted(SnapshotAck),
    /// Admission-control rejection: the request was refused before any
    /// worker time was spent on it (queue full, or server draining).
    Busy(String),
    /// The request's deadline passed before an answer was produced.
    Timeout {
        /// The deadline the request carried (or the server default), in
        /// milliseconds — echoed so clients can correlate.
        deadline_ms: u64,
    },
    /// Acknowledgement of `SHUTDOWN`: the server is draining.
    Draining,
    Error(String),
    Bye,
}

impl Response {
    /// Render the response as one wire line (no trailing newline).
    pub fn format(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Bye => "BYE".into(),
            Response::Draining => "DRAINING".into(),
            Response::Error(msg) => format!("ERR {msg}"),
            Response::Busy(msg) => format!("BUSY {msg}"),
            Response::Timeout { deadline_ms } => {
                format!("TIMEOUT deadline_ms={deadline_ms}")
            }
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => {
                let value = match outcome.value {
                    Some(v) => v.to_string(),
                    None => "none".into(),
                };
                let cache = if outcome.cached { "hit" } else { "miss" };
                format!("EST {value} cache={cache} hits={hits} misses={misses}")
            }
            Response::Stats(s) => format!(
                "STATS requests={} batches={} hits={} misses={} datasets={} \
                 busy={} timeouts={} queued={}",
                s.requests,
                s.batches,
                s.cache_hits,
                s.cache_misses,
                s.datasets,
                s.busy,
                s.timeouts,
                s.queued
            ),
            Response::Updated(ack) => {
                format!("OK epoch={} pending={}", ack.epoch, ack.pending)
            }
            Response::Committed(c) => format!(
                "COMMITTED epoch={} added={} deleted={} recounted={} rebased={}",
                c.epoch, c.added, c.deleted, c.recounted, c.rebased as u8
            ),
            Response::Snapshotted(s) => {
                format!("SNAPSHOTTED epoch={} bytes={}", s.epoch, s.bytes)
            }
        }
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PONG") => Ok(Response::Pong),
            Some("BYE") => Ok(Response::Bye),
            Some("DRAINING") => Ok(Response::Draining),
            Some("ERR") => {
                let rest = line.trim_start();
                Ok(Response::Error(
                    rest.strip_prefix("ERR").unwrap_or(rest).trim().to_string(),
                ))
            }
            Some("BUSY") => {
                let rest = line.trim_start();
                Ok(Response::Busy(
                    rest.strip_prefix("BUSY").unwrap_or(rest).trim().to_string(),
                ))
            }
            Some("TIMEOUT") => {
                let deadline_ms = kv(it.next(), "deadline_ms")?
                    .parse()
                    .map_err(|_| "TIMEOUT: bad deadline_ms")?;
                Ok(Response::Timeout { deadline_ms })
            }
            Some("EST") => {
                let value_tok = it.next().ok_or("EST: missing value")?;
                let value = match value_tok {
                    "none" => None,
                    v => Some(v.parse::<f64>().map_err(|_| "EST: bad value")?),
                };
                let cached = match kv(it.next(), "cache")? {
                    "hit" => true,
                    "miss" => false,
                    other => return Err(format!("EST: bad cache flag `{other}`")),
                };
                let hits = kv(it.next(), "hits")?
                    .parse()
                    .map_err(|_| "EST: bad hits")?;
                let misses = kv(it.next(), "misses")?
                    .parse()
                    .map_err(|_| "EST: bad misses")?;
                Ok(Response::Estimate {
                    outcome: EstimateOutcome { value, cached },
                    hits,
                    misses,
                })
            }
            Some("OK") => {
                let epoch = kv(it.next(), "epoch")?
                    .parse()
                    .map_err(|_| "OK: bad epoch")?;
                let pending = kv(it.next(), "pending")?
                    .parse()
                    .map_err(|_| "OK: bad pending")?;
                Ok(Response::Updated(UpdateAck { epoch, pending }))
            }
            Some("COMMITTED") => {
                let epoch = kv(it.next(), "epoch")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad epoch")?;
                let added = kv(it.next(), "added")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad added")?;
                let deleted = kv(it.next(), "deleted")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad deleted")?;
                let recounted = kv(it.next(), "recounted")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad recounted")?;
                let rebased = match kv(it.next(), "rebased")? {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("COMMITTED: bad rebased flag `{other}`")),
                };
                Ok(Response::Committed(CommitOutcome {
                    epoch,
                    added,
                    deleted,
                    recounted,
                    rebased,
                    // Not part of the wire format: a server-side detail
                    // the client cannot observe.
                    wal_bytes: 0,
                }))
            }
            Some("SNAPSHOTTED") => {
                let epoch = kv(it.next(), "epoch")?
                    .parse()
                    .map_err(|_| "SNAPSHOTTED: bad epoch")?;
                let bytes = kv(it.next(), "bytes")?
                    .parse()
                    .map_err(|_| "SNAPSHOTTED: bad bytes")?;
                Ok(Response::Snapshotted(SnapshotAck { epoch, bytes }))
            }
            Some("STATS") => {
                let requests = kv(it.next(), "requests")?
                    .parse()
                    .map_err(|_| "STATS: bad requests")?;
                let batches = kv(it.next(), "batches")?
                    .parse()
                    .map_err(|_| "STATS: bad batches")?;
                let cache_hits = kv(it.next(), "hits")?
                    .parse()
                    .map_err(|_| "STATS: bad hits")?;
                let cache_misses = kv(it.next(), "misses")?
                    .parse()
                    .map_err(|_| "STATS: bad misses")?;
                let datasets = kv(it.next(), "datasets")?
                    .parse()
                    .map_err(|_| "STATS: bad datasets")?;
                let busy = kv(it.next(), "busy")?
                    .parse()
                    .map_err(|_| "STATS: bad busy")?;
                let timeouts = kv(it.next(), "timeouts")?
                    .parse()
                    .map_err(|_| "STATS: bad timeouts")?;
                let queued = kv(it.next(), "queued")?
                    .parse()
                    .map_err(|_| "STATS: bad queued")?;
                Ok(Response::Stats(EngineStats {
                    requests,
                    batches,
                    cache_hits,
                    cache_misses,
                    datasets,
                    busy,
                    timeouts,
                    queued,
                }))
            }
            Some(other) => Err(format!("unknown response `{other}`")),
            None => Err("empty response".into()),
        }
    }
}

/// Extract the value of a `key=value` token, checking the key.
fn kv<'a>(tok: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let tok = tok.ok_or_else(|| format!("missing {key}=…"))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, got `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::templates;

    #[test]
    fn estimate_roundtrip() {
        let req = Request::Estimate {
            dataset: "imdb".into(),
            query: templates::path(2, &[3, 4]),
            deadline_ms: None,
        };
        let line = req.format();
        assert_eq!(line, "ESTIMATE imdb 3 2 0 1 3 1 2 4");
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn estimate_deadline_roundtrip() {
        let req = Request::Estimate {
            dataset: "imdb".into(),
            query: templates::path(2, &[3, 4]),
            deadline_ms: Some(250),
        };
        let line = req.format();
        assert_eq!(line, "ESTIMATE imdb DEADLINE_MS=250 3 2 0 1 3 1 2 4");
        assert_eq!(Request::parse(&line).unwrap(), req);
        // A malformed deadline value is rejected, not silently treated as
        // the start of the query.
        assert!(Request::parse("ESTIMATE imdb DEADLINE_MS=abc 3 2 0 1 3 1 2 4").is_err());
        assert!(Request::parse("ESTIMATE imdb DEADLINE_MS= 3 2 0 1 3 1 2 4").is_err());
    }

    #[test]
    fn simple_requests_roundtrip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Quit,
        ] {
            assert_eq!(Request::parse(&req.format()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "BOGUS",
            "ESTIMATE",
            "ESTIMATE ds",
            "ESTIMATE ds 3",
            "ESTIMATE ds 3 1",
            "ESTIMATE ds 3 1 0 1",         // truncated edge
            "ESTIMATE ds 2 1 0 5 0",       // endpoint out of range
            "ESTIMATE ds 3 1 0 1 0 9 9 9", // trailing tokens
            "ESTIMATE ds 3 99 0 1 0",      // too many edges
            "ESTIMATE ds 1 0",             // zero edges
            "ESTIMATE ds 4 2 0 1 0 2 3 1", // disconnected
        ] {
            assert!(Request::parse(line).is_err(), "should reject: {line:?}");
        }
    }

    #[test]
    fn update_requests_roundtrip() {
        let add = Request::AddEdge {
            dataset: "imdb".into(),
            src: 17,
            dst: 4,
            label: 2,
        };
        assert_eq!(add.format(), "ADD_EDGE imdb 17 4 2");
        assert_eq!(Request::parse(&add.format()).unwrap(), add);
        let del = Request::DelEdge {
            dataset: "imdb".into(),
            src: 4,
            dst: 17,
            label: 0,
        };
        assert_eq!(del.format(), "DEL_EDGE imdb 4 17 0");
        assert_eq!(Request::parse(&del.format()).unwrap(), del);
        let commit = Request::Commit {
            dataset: "imdb".into(),
        };
        assert_eq!(commit.format(), "COMMIT imdb");
        assert_eq!(Request::parse(&commit.format()).unwrap(), commit);
    }

    #[test]
    fn malformed_update_requests_are_rejected() {
        for line in [
            "ADD_EDGE",
            "ADD_EDGE ds",
            "ADD_EDGE ds 1",
            "ADD_EDGE ds 1 2",
            "ADD_EDGE ds 1 2 x",
            "ADD_EDGE ds 1 2 3 4",         // trailing token
            "ADD_EDGE ds 99999999999 0 0", // src wider than a VertexId
            "ADD_EDGE ds 0 0 99999",       // label wider than a LabelId
            "DEL_EDGE ds -1 0 0",          // negative id
            "COMMIT",
            "COMMIT ds extra",
        ] {
            assert!(Request::parse(line).is_err(), "should reject: {line:?}");
        }
        // Any id that fits the wire types parses; domain/growth bounds
        // are the registry's job, answered with ERR.
        assert!(Request::parse("ADD_EDGE ds 4294967295 0 65535").is_ok());
    }

    #[test]
    fn estimate_batch_roundtrips_multiline() {
        let req = Request::EstimateBatch {
            dataset: "imdb".into(),
            queries: vec![templates::path(2, &[3, 4]), templates::path(2, &[0, 1])],
            deadline_ms: None,
        };
        let text = req.format();
        assert_eq!(
            text,
            "ESTIMATE_BATCH imdb 2\n3 2 0 1 3 1 2 4\n3 2 0 1 0 1 2 1"
        );
        assert_eq!(Request::parse(&text).unwrap(), req);
        assert_eq!(
            parse_batch_header(text.lines().next().unwrap()).unwrap(),
            ("imdb".to_string(), 2, None)
        );
    }

    #[test]
    fn estimate_batch_deadline_roundtrips() {
        let req = Request::EstimateBatch {
            dataset: "imdb".into(),
            queries: vec![templates::path(2, &[3, 4])],
            deadline_ms: Some(1500),
        };
        let text = req.format();
        assert_eq!(
            text,
            "ESTIMATE_BATCH imdb 1 DEADLINE_MS=1500\n3 2 0 1 3 1 2 4"
        );
        assert_eq!(Request::parse(&text).unwrap(), req);
        assert_eq!(
            parse_batch_header(text.lines().next().unwrap()).unwrap(),
            ("imdb".to_string(), 1, Some(1500))
        );
        assert!(parse_batch_header("ESTIMATE_BATCH ds 1 DEADLINE_MS=x").is_err());
        assert!(parse_batch_header("ESTIMATE_BATCH ds 1 DEADLINE_MS=5 junk").is_err());
    }

    #[test]
    fn malformed_batches_are_rejected() {
        for text in [
            "ESTIMATE_BATCH",                       // no dataset
            "ESTIMATE_BATCH ds",                    // no count
            "ESTIMATE_BATCH ds x",                  // bad count
            "ESTIMATE_BATCH ds 0",                  // zero queries
            "ESTIMATE_BATCH ds 2 extra",            // trailing tokens
            "ESTIMATE_BATCH ds 99999",              // over the cap
            "ESTIMATE_BATCH ds 2\n2 1 0 1 0",       // missing second query
            "ESTIMATE_BATCH ds 1\n2 1 0 1",         // truncated query line
            "ESTIMATE_BATCH ds 1\n2 1 0 1 0\njunk", // trailing line
        ] {
            assert!(Request::parse(text).is_err(), "should reject: {text:?}");
        }
        // Single-line requests reject stray extra lines too.
        assert!(Request::parse("PING\nPING").is_err());
    }

    #[test]
    fn snapshot_request_roundtrips() {
        let req = Request::Snapshot {
            dataset: "imdb".into(),
            path: "/tmp/imdb.cegsnap".into(),
        };
        assert_eq!(req.format(), "SNAPSHOT imdb /tmp/imdb.cegsnap");
        assert_eq!(Request::parse(&req.format()).unwrap(), req);
        for line in ["SNAPSHOT", "SNAPSHOT ds", "SNAPSHOT ds /a/b extra"] {
            assert!(Request::parse(line).is_err(), "should reject: {line:?}");
        }
    }

    #[test]
    fn snapshot_response_roundtrips() {
        let r = Response::Snapshotted(SnapshotAck {
            epoch: 12,
            bytes: 4096,
        });
        assert_eq!(r.format(), "SNAPSHOTTED epoch=12 bytes=4096");
        assert_eq!(Response::parse(&r.format()).unwrap(), r);
    }

    #[test]
    fn batch_response_header_roundtrips() {
        assert_eq!(batch_response_header(7), "BATCH 7");
        assert_eq!(parse_batch_response_header("BATCH 7").unwrap(), 7);
        for line in ["BATCH", "BATCH x", "BATCH 1 2", "EST 1 cache=hit"] {
            assert!(parse_batch_response_header(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn update_responses_roundtrip() {
        let responses = [
            Response::Updated(UpdateAck {
                epoch: 3,
                pending: 17,
            }),
            Response::Committed(CommitOutcome {
                epoch: 4,
                added: 2,
                deleted: 1,
                recounted: 9,
                rebased: true,
                wal_bytes: 0,
            }),
            Response::Committed(CommitOutcome {
                epoch: 4,
                added: 0,
                deleted: 0,
                recounted: 0,
                rebased: false,
                wal_bytes: 0,
            }),
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.format()).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = [
            Response::Pong,
            Response::Bye,
            Response::Error("unknown dataset `x`".into()),
            Response::Estimate {
                outcome: EstimateOutcome {
                    value: Some(1234.5),
                    cached: true,
                },
                hits: 7,
                misses: 3,
            },
            Response::Estimate {
                outcome: EstimateOutcome {
                    value: None,
                    cached: false,
                },
                hits: 0,
                misses: 1,
            },
            Response::Stats(EngineStats {
                requests: 10,
                batches: 4,
                cache_hits: 6,
                cache_misses: 4,
                datasets: 2,
                busy: 3,
                timeouts: 1,
                queued: 5,
            }),
            Response::Busy("queue full for dataset `imdb`".into()),
            Response::Timeout { deadline_ms: 250 },
            Response::Draining,
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.format()).unwrap(), r);
        }
    }

    #[test]
    fn metrics_response_header_roundtrips() {
        assert_eq!(metrics_response_header(12), "METRICS 12");
        assert_eq!(parse_metrics_response_header("METRICS 12").unwrap(), 12);
        for line in ["METRICS", "METRICS x", "METRICS 1 2", "BATCH 3"] {
            assert!(parse_metrics_response_header(line).is_err(), "{line:?}");
        }
        assert_eq!(
            parse_metric_line("busy_total 7").unwrap(),
            ("busy_total".to_string(), 7)
        );
        for line in ["", "key", "key x", "key 1 2"] {
            assert!(parse_metric_line(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn explain_requests_roundtrip() {
        let req = Request::ExplainEstimate {
            dataset: "imdb".into(),
            query: templates::path(2, &[3, 4]),
            deadline_ms: Some(250),
        };
        assert_eq!(
            req.format(),
            "EXPLAIN_ESTIMATE imdb DEADLINE_MS=250 3 2 0 1 3 1 2 4"
        );
        assert_eq!(Request::parse(&req.format()).unwrap(), req);
        // Same grammar as ESTIMATE: same rejections.
        assert!(Request::parse("EXPLAIN_ESTIMATE ds 3 1 0 1").is_err());
        assert!(Request::parse("EXPLAIN_ESTIMATE ds DEADLINE_MS=x 3 1 0 1 0").is_err());
    }

    #[test]
    fn slowlog_and_prom_requests_roundtrip() {
        for req in [
            Request::SlowLog { n: None },
            Request::SlowLog { n: Some(5) },
            Request::MetricsProm,
        ] {
            assert_eq!(Request::parse(&req.format()).unwrap(), req);
        }
        assert!(Request::parse("SLOWLOG x").is_err());
        assert!(Request::parse("SLOWLOG 1 2").is_err());
        assert!(Request::parse("METRICS_PROM extra").is_err());
    }

    #[test]
    fn explain_headers_and_items_roundtrip() {
        assert_eq!(explain_response_header(9), "EXPLAIN 9");
        assert_eq!(parse_explain_response_header("EXPLAIN 9").unwrap(), 9);
        assert!(parse_explain_response_header("EXPLAIN").is_err());
        assert!(parse_explain_response_header("BATCH 9").is_err());
        let items = [
            ExplainItem::Span {
                name: "catalog_fill".into(),
                micros: 1234,
            },
            ExplainItem::Counter {
                name: "kernel_candidates".into(),
                value: 42,
            },
        ];
        for item in items {
            assert_eq!(ExplainItem::parse(&item.format()).unwrap(), item);
        }
        for line in ["", "span x", "counter x y z", "gauge x 1", "span x 1 2"] {
            assert!(ExplainItem::parse(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn slowlog_entries_roundtrip() {
        use crate::engine::SlowQueryEntry;
        let e = SlowQueryEntry {
            id: 17,
            dataset: "imdb".into(),
            epoch: 3,
            micros: 312_000,
            cache_us: 12,
            fill_us: 300_000,
            estimate_us: 400,
            query: "3 2 0 1 3 1 2 4".into(),
        };
        let line = format_slowlog_entry(&e);
        assert_eq!(
            line,
            "id=17 dataset=imdb epoch=3 micros=312000 cache_us=12 \
             fill_us=300000 estimate_us=400 query=3 2 0 1 3 1 2 4"
        );
        assert_eq!(parse_slowlog_entry(&line).unwrap(), e);
        assert_eq!(slowlog_response_header(2), "SLOWLOG 2");
        assert_eq!(parse_slowlog_response_header("SLOWLOG 2").unwrap(), 2);
        assert!(parse_slowlog_entry("id=1 dataset=x").is_err());
    }

    #[test]
    fn metrics_prom_header_roundtrips() {
        assert_eq!(metrics_prom_response_header(40), "METRICS_PROM 40");
        assert_eq!(
            parse_metrics_prom_response_header("METRICS_PROM 40").unwrap(),
            40
        );
        assert!(parse_metrics_prom_response_header("METRICS 40").is_err());
    }

    #[test]
    fn id_tail_appends_and_splits() {
        let mut line = "EST 42 cache=hit hits=1 misses=0".to_string();
        append_id(&mut line, 7);
        assert_eq!(line, "EST 42 cache=hit hits=1 misses=0 id=7");
        let (payload, id) = split_id(&line);
        assert_eq!(payload, "EST 42 cache=hit hits=1 misses=0");
        assert_eq!(id, Some(7));
        // Lines without a tail pass through untouched.
        assert_eq!(split_id("PONG"), ("PONG", None));
        assert_eq!(split_id("ERR bad id=x"), ("ERR bad id=x", None));
        // The stripped payload still parses.
        assert!(Response::parse(payload).is_ok());
    }

    #[test]
    fn estimate_values_roundtrip_exactly() {
        // Display/FromStr round-trips f64 exactly (shortest representation).
        for v in [0.1, 1e300, 123456789.123456, f64::MIN_POSITIVE] {
            let r = Response::Estimate {
                outcome: EstimateOutcome {
                    value: Some(v),
                    cached: false,
                },
                hits: 0,
                misses: 0,
            };
            match Response::parse(&r.format()).unwrap() {
                Response::Estimate { outcome, .. } => assert_eq!(outcome.value, Some(v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
