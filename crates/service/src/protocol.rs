//! The line-delimited text wire protocol.
//!
//! One request per line, one response line per request — trivially
//! scriptable with netcat and stable for tests. Numbers are plain ASCII;
//! `f64` values round-trip through Rust's shortest-representation
//! `Display`/`FromStr`.
//!
//! ```text
//! client -> server                                server -> client
//! -----------------------------------------------------------------------
//! PING                                            PONG
//! ESTIMATE <ds> <nv> <ne> (<src> <dst> <lbl>)*    EST <value|none> cache=<hit|miss> hits=<n> misses=<n>
//! ADD_EDGE <ds> <src> <dst> <lbl>                 OK epoch=<n> pending=<n>
//! DEL_EDGE <ds> <src> <dst> <lbl>                 OK epoch=<n> pending=<n>
//! COMMIT <ds>                                     COMMITTED epoch=<n> added=<n> deleted=<n> recounted=<n> rebased=<0|1>
//! STATS                                           STATS requests=<n> batches=<n> hits=<n> misses=<n> datasets=<n>
//! QUIT                                            BYE
//! (anything malformed)                            ERR <message>
//! ```
//!
//! The query encoding (`num_vars num_edges` then `src dst label` triples)
//! matches the persisted workload format of `ceg-workload::io`, so a
//! workload file line maps 1:1 onto an `ESTIMATE` line.
//!
//! `ADD_EDGE`/`DEL_EDGE` buffer into the dataset's pending delta and are
//! invisible to `ESTIMATE` until a `COMMIT` applies them — which bumps
//! the dataset epoch and thereby invalidates every cached estimate
//! computed before it. The wire layer only checks syntax; the registry
//! validates ids against the dataset's domain plus a bounded growth
//! allowance ([`crate::registry::MAX_UPDATE_VERTEX`]) and enforces the
//! pending-buffer cap, answering violations with `ERR`.

use ceg_graph::{LabelId, VertexId};
use ceg_query::{QueryEdge, QueryGraph, VarId};

use crate::engine::{EngineStats, EstimateOutcome, UpdateAck};
use crate::registry::CommitOutcome;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Estimate one query against a named dataset.
    Estimate { dataset: String, query: QueryGraph },
    /// Buffer an edge insertion into the dataset's pending delta.
    AddEdge {
        dataset: String,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    },
    /// Buffer an edge deletion into the dataset's pending delta.
    DelEdge {
        dataset: String,
        src: VertexId,
        dst: VertexId,
        label: LabelId,
    },
    /// Apply the dataset's pending delta and bump its epoch.
    Commit { dataset: String },
    /// Close the connection.
    Quit,
}

/// Parse the tail of an `ADD_EDGE`/`DEL_EDGE` line: `<ds> <src> <dst>
/// <label>` (syntax only; domain/growth bounds are the registry's job).
fn parse_update<'a>(
    cmd: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<(String, VertexId, VertexId, LabelId), String> {
    let dataset = it
        .next()
        .ok_or(format!("{cmd}: missing dataset"))?
        .to_string();
    let src: VertexId = it
        .next()
        .ok_or(format!("{cmd}: missing src"))?
        .parse()
        .map_err(|_| format!("{cmd}: bad src"))?;
    let dst: VertexId = it
        .next()
        .ok_or(format!("{cmd}: missing dst"))?
        .parse()
        .map_err(|_| format!("{cmd}: bad dst"))?;
    let label: LabelId = it
        .next()
        .ok_or(format!("{cmd}: missing label"))?
        .parse()
        .map_err(|_| format!("{cmd}: bad label"))?;
    if it.next().is_some() {
        return Err(format!("{cmd}: trailing tokens"));
    }
    Ok((dataset, src, dst, label))
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PING") => Ok(Request::Ping),
            Some("STATS") => Ok(Request::Stats),
            Some("QUIT") => Ok(Request::Quit),
            Some("ADD_EDGE") => {
                let (dataset, src, dst, label) = parse_update("ADD_EDGE", &mut it)?;
                Ok(Request::AddEdge {
                    dataset,
                    src,
                    dst,
                    label,
                })
            }
            Some("DEL_EDGE") => {
                let (dataset, src, dst, label) = parse_update("DEL_EDGE", &mut it)?;
                Ok(Request::DelEdge {
                    dataset,
                    src,
                    dst,
                    label,
                })
            }
            Some("COMMIT") => {
                let dataset = it.next().ok_or("COMMIT: missing dataset")?.to_string();
                if it.next().is_some() {
                    return Err("COMMIT: trailing tokens".into());
                }
                Ok(Request::Commit { dataset })
            }
            Some("ESTIMATE") => {
                let dataset = it.next().ok_or("ESTIMATE: missing dataset")?.to_string();
                let nv: VarId = it
                    .next()
                    .ok_or("ESTIMATE: missing num_vars")?
                    .parse()
                    .map_err(|_| "ESTIMATE: bad num_vars")?;
                let ne: usize = it
                    .next()
                    .ok_or("ESTIMATE: missing num_edges")?
                    .parse()
                    .map_err(|_| "ESTIMATE: bad num_edges")?;
                if ne > 32 {
                    return Err("ESTIMATE: queries are limited to 32 edges".into());
                }
                let mut edges = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let src: VarId = it
                        .next()
                        .ok_or("ESTIMATE: truncated edge list")?
                        .parse()
                        .map_err(|_| "ESTIMATE: bad src")?;
                    let dst: VarId = it
                        .next()
                        .ok_or("ESTIMATE: truncated edge list")?
                        .parse()
                        .map_err(|_| "ESTIMATE: bad dst")?;
                    let label: u16 = it
                        .next()
                        .ok_or("ESTIMATE: truncated edge list")?
                        .parse()
                        .map_err(|_| "ESTIMATE: bad label")?;
                    if src >= nv || dst >= nv {
                        return Err(format!(
                            "ESTIMATE: edge endpoint out of range (vars are 0..{nv})"
                        ));
                    }
                    edges.push(QueryEdge::new(src, dst, label));
                }
                if it.next().is_some() {
                    return Err("ESTIMATE: trailing tokens after edge list".into());
                }
                if edges.is_empty() {
                    return Err("ESTIMATE: query must have at least one edge".into());
                }
                let query = QueryGraph::new(nv, edges);
                // The estimators assume connected queries (paper §4.2);
                // rejecting here keeps malformed wire input out of the
                // worker threads.
                if !query.is_connected() {
                    return Err("ESTIMATE: query must be connected".into());
                }
                Ok(Request::Estimate { dataset, query })
            }
            Some(other) => Err(format!("unknown command `{other}`")),
            None => Err("empty request".into()),
        }
    }

    /// Render the request as one wire line (no trailing newline).
    pub fn format(&self) -> String {
        match self {
            Request::Ping => "PING".into(),
            Request::Stats => "STATS".into(),
            Request::Quit => "QUIT".into(),
            Request::AddEdge {
                dataset,
                src,
                dst,
                label,
            } => format!("ADD_EDGE {dataset} {src} {dst} {label}"),
            Request::DelEdge {
                dataset,
                src,
                dst,
                label,
            } => format!("DEL_EDGE {dataset} {src} {dst} {label}"),
            Request::Commit { dataset } => format!("COMMIT {dataset}"),
            Request::Estimate { dataset, query } => {
                let mut line = format!(
                    "ESTIMATE {dataset} {} {}",
                    query.num_vars(),
                    query.num_edges()
                );
                for e in query.edges() {
                    line.push_str(&format!(" {} {} {}", e.src, e.dst, e.label));
                }
                line
            }
        }
    }
}

/// A parsed server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    /// Estimate plus the server-wide cache counters *after* this request.
    Estimate {
        outcome: EstimateOutcome,
        hits: u64,
        misses: u64,
    },
    Stats(EngineStats),
    /// Acknowledgement of a buffered `ADD_EDGE`/`DEL_EDGE`.
    Updated(UpdateAck),
    /// Result of a `COMMIT`.
    Committed(CommitOutcome),
    Error(String),
    Bye,
}

impl Response {
    /// Render the response as one wire line (no trailing newline).
    pub fn format(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Bye => "BYE".into(),
            Response::Error(msg) => format!("ERR {msg}"),
            Response::Estimate {
                outcome,
                hits,
                misses,
            } => {
                let value = match outcome.value {
                    Some(v) => v.to_string(),
                    None => "none".into(),
                };
                let cache = if outcome.cached { "hit" } else { "miss" };
                format!("EST {value} cache={cache} hits={hits} misses={misses}")
            }
            Response::Stats(s) => format!(
                "STATS requests={} batches={} hits={} misses={} datasets={}",
                s.requests, s.batches, s.cache_hits, s.cache_misses, s.datasets
            ),
            Response::Updated(ack) => {
                format!("OK epoch={} pending={}", ack.epoch, ack.pending)
            }
            Response::Committed(c) => format!(
                "COMMITTED epoch={} added={} deleted={} recounted={} rebased={}",
                c.epoch, c.added, c.deleted, c.recounted, c.rebased as u8
            ),
        }
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PONG") => Ok(Response::Pong),
            Some("BYE") => Ok(Response::Bye),
            Some("ERR") => {
                let rest = line.trim_start();
                Ok(Response::Error(
                    rest.strip_prefix("ERR").unwrap_or(rest).trim().to_string(),
                ))
            }
            Some("EST") => {
                let value_tok = it.next().ok_or("EST: missing value")?;
                let value = match value_tok {
                    "none" => None,
                    v => Some(v.parse::<f64>().map_err(|_| "EST: bad value")?),
                };
                let cached = match kv(it.next(), "cache")? {
                    "hit" => true,
                    "miss" => false,
                    other => return Err(format!("EST: bad cache flag `{other}`")),
                };
                let hits = kv(it.next(), "hits")?
                    .parse()
                    .map_err(|_| "EST: bad hits")?;
                let misses = kv(it.next(), "misses")?
                    .parse()
                    .map_err(|_| "EST: bad misses")?;
                Ok(Response::Estimate {
                    outcome: EstimateOutcome { value, cached },
                    hits,
                    misses,
                })
            }
            Some("OK") => {
                let epoch = kv(it.next(), "epoch")?
                    .parse()
                    .map_err(|_| "OK: bad epoch")?;
                let pending = kv(it.next(), "pending")?
                    .parse()
                    .map_err(|_| "OK: bad pending")?;
                Ok(Response::Updated(UpdateAck { epoch, pending }))
            }
            Some("COMMITTED") => {
                let epoch = kv(it.next(), "epoch")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad epoch")?;
                let added = kv(it.next(), "added")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad added")?;
                let deleted = kv(it.next(), "deleted")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad deleted")?;
                let recounted = kv(it.next(), "recounted")?
                    .parse()
                    .map_err(|_| "COMMITTED: bad recounted")?;
                let rebased = match kv(it.next(), "rebased")? {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("COMMITTED: bad rebased flag `{other}`")),
                };
                Ok(Response::Committed(CommitOutcome {
                    epoch,
                    added,
                    deleted,
                    recounted,
                    rebased,
                }))
            }
            Some("STATS") => {
                let requests = kv(it.next(), "requests")?
                    .parse()
                    .map_err(|_| "STATS: bad requests")?;
                let batches = kv(it.next(), "batches")?
                    .parse()
                    .map_err(|_| "STATS: bad batches")?;
                let cache_hits = kv(it.next(), "hits")?
                    .parse()
                    .map_err(|_| "STATS: bad hits")?;
                let cache_misses = kv(it.next(), "misses")?
                    .parse()
                    .map_err(|_| "STATS: bad misses")?;
                let datasets = kv(it.next(), "datasets")?
                    .parse()
                    .map_err(|_| "STATS: bad datasets")?;
                Ok(Response::Stats(EngineStats {
                    requests,
                    batches,
                    cache_hits,
                    cache_misses,
                    datasets,
                }))
            }
            Some(other) => Err(format!("unknown response `{other}`")),
            None => Err("empty response".into()),
        }
    }
}

/// Extract the value of a `key=value` token, checking the key.
fn kv<'a>(tok: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let tok = tok.ok_or_else(|| format!("missing {key}=…"))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, got `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceg_query::templates;

    #[test]
    fn estimate_roundtrip() {
        let req = Request::Estimate {
            dataset: "imdb".into(),
            query: templates::path(2, &[3, 4]),
        };
        let line = req.format();
        assert_eq!(line, "ESTIMATE imdb 3 2 0 1 3 1 2 4");
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn simple_requests_roundtrip() {
        for req in [Request::Ping, Request::Stats, Request::Quit] {
            assert_eq!(Request::parse(&req.format()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "BOGUS",
            "ESTIMATE",
            "ESTIMATE ds",
            "ESTIMATE ds 3",
            "ESTIMATE ds 3 1",
            "ESTIMATE ds 3 1 0 1",         // truncated edge
            "ESTIMATE ds 2 1 0 5 0",       // endpoint out of range
            "ESTIMATE ds 3 1 0 1 0 9 9 9", // trailing tokens
            "ESTIMATE ds 3 99 0 1 0",      // too many edges
            "ESTIMATE ds 1 0",             // zero edges
            "ESTIMATE ds 4 2 0 1 0 2 3 1", // disconnected
        ] {
            assert!(Request::parse(line).is_err(), "should reject: {line:?}");
        }
    }

    #[test]
    fn update_requests_roundtrip() {
        let add = Request::AddEdge {
            dataset: "imdb".into(),
            src: 17,
            dst: 4,
            label: 2,
        };
        assert_eq!(add.format(), "ADD_EDGE imdb 17 4 2");
        assert_eq!(Request::parse(&add.format()).unwrap(), add);
        let del = Request::DelEdge {
            dataset: "imdb".into(),
            src: 4,
            dst: 17,
            label: 0,
        };
        assert_eq!(del.format(), "DEL_EDGE imdb 4 17 0");
        assert_eq!(Request::parse(&del.format()).unwrap(), del);
        let commit = Request::Commit {
            dataset: "imdb".into(),
        };
        assert_eq!(commit.format(), "COMMIT imdb");
        assert_eq!(Request::parse(&commit.format()).unwrap(), commit);
    }

    #[test]
    fn malformed_update_requests_are_rejected() {
        for line in [
            "ADD_EDGE",
            "ADD_EDGE ds",
            "ADD_EDGE ds 1",
            "ADD_EDGE ds 1 2",
            "ADD_EDGE ds 1 2 x",
            "ADD_EDGE ds 1 2 3 4",         // trailing token
            "ADD_EDGE ds 99999999999 0 0", // src wider than a VertexId
            "ADD_EDGE ds 0 0 99999",       // label wider than a LabelId
            "DEL_EDGE ds -1 0 0",          // negative id
            "COMMIT",
            "COMMIT ds extra",
        ] {
            assert!(Request::parse(line).is_err(), "should reject: {line:?}");
        }
        // Any id that fits the wire types parses; domain/growth bounds
        // are the registry's job, answered with ERR.
        assert!(Request::parse("ADD_EDGE ds 4294967295 0 65535").is_ok());
    }

    #[test]
    fn update_responses_roundtrip() {
        let responses = [
            Response::Updated(UpdateAck {
                epoch: 3,
                pending: 17,
            }),
            Response::Committed(CommitOutcome {
                epoch: 4,
                added: 2,
                deleted: 1,
                recounted: 9,
                rebased: true,
            }),
            Response::Committed(CommitOutcome {
                epoch: 4,
                added: 0,
                deleted: 0,
                recounted: 0,
                rebased: false,
            }),
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.format()).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = [
            Response::Pong,
            Response::Bye,
            Response::Error("unknown dataset `x`".into()),
            Response::Estimate {
                outcome: EstimateOutcome {
                    value: Some(1234.5),
                    cached: true,
                },
                hits: 7,
                misses: 3,
            },
            Response::Estimate {
                outcome: EstimateOutcome {
                    value: None,
                    cached: false,
                },
                hits: 0,
                misses: 1,
            },
            Response::Stats(EngineStats {
                requests: 10,
                batches: 4,
                cache_hits: 6,
                cache_misses: 4,
                datasets: 2,
            }),
        ];
        for r in responses {
            assert_eq!(Response::parse(&r.format()).unwrap(), r);
        }
    }

    #[test]
    fn estimate_values_roundtrip_exactly() {
        // Display/FromStr round-trips f64 exactly (shortest representation).
        for v in [0.1, 1e300, 123456789.123456, f64::MIN_POSITIVE] {
            let r = Response::Estimate {
                outcome: EstimateOutcome {
                    value: Some(v),
                    cached: false,
                },
                hits: 0,
                misses: 0,
            };
            match Response::parse(&r.format()).unwrap() {
                Response::Estimate { outcome, .. } => assert_eq!(outcome.value, Some(v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
