//! # ceg-service
//!
//! A long-running, concurrent cardinality-estimation service on top of the
//! CEG estimators — the layer that turns the batch reproduction into a
//! system that can serve sustained traffic. The batch front door
//! (`cegcli estimate`) reloads the graph and rebuilds catalogs on every
//! invocation; this crate keeps that state warm and shares it:
//!
//! * [`registry`] — a [`DatasetRegistry`] loads each graph once, builds or
//!   loads its Markov catalog once, and shares both across requests via
//!   `Arc`; catalogs grow incrementally as unseen query patterns arrive.
//!   Datasets are **live**: `ADD_EDGE`/`DEL_EDGE` buffer into a pending
//!   [`ceg_graph::GraphDelta`], `COMMIT` applies it under an
//!   epoch-versioned base+overlay layering with incremental catalog
//!   maintenance (only touched-label entries recount) and folds the
//!   overlay into a fresh CSR past a rebase threshold,
//! * [`pool`] — a hand-rolled `std::thread` [`WorkerPool`] (the build
//!   environment has no crates-registry access, so no rayon/tokio): one
//!   mpsc shard per worker, requests routed by dataset so each worker can
//!   drain its queue into a per-dataset **batch** and amortize catalog
//!   locking and pattern counting across requests,
//! * [`cache`] — an [`EstimateCache`] (LRU) keyed by the renaming-invariant
//!   [`canonical hash`](ceg_query::canon) from `ceg-query`, verified by
//!   exact isomorphism so hash collisions can never return a wrong
//!   estimate; entries are epoch-tagged so estimates cached before a
//!   committed update miss instead of lying; hit/miss counters are
//!   exposed through the wire protocol,
//! * [`engine`] — the transport-independent core: cache lookup → batched
//!   catalog fill → estimate → cache store,
//! * [`protocol`] / [`server`] / [`client`] — a line-delimited text
//!   protocol over `std::net::TcpListener`, served by `cegcli serve` and
//!   spoken by `cegcli query` (or a 5-line netcat script). `ESTIMATE`
//!   answers one query per round-trip; `ESTIMATE_BATCH` ships a whole
//!   ordered batch in one round-trip, fanned across the worker pool
//!   ([`Client::estimate_batch`]),
//! * **durability** — `SNAPSHOT <ds> <path>` persists a dataset's
//!   committed graph, Markov catalog and epoch as a versioned,
//!   checksummed binary `.cegsnap` file
//!   ([`DatasetEntry::write_snapshot`]); `cegcli serve --snapshot`
//!   restores one at boot ([`DatasetRegistry::load_snapshot`]), skipping
//!   text parsing and catalog construction, and continues the epoch
//!   sequence so a restarted server answers exactly like the one that
//!   wrote the snapshot,
//! * **multi-tenant hardening** — per-dataset admission control with
//!   bounded queues (typed `BUSY` beyond [`ServerConfig::queue_cap`]),
//!   per-request deadlines (`DEADLINE_MS` or the server default) enforced
//!   inside the counting kernel with typed `TIMEOUT` replies, a
//!   lock-free [`metrics`] registry behind the `METRICS` command, and a
//!   graceful drain (`SHUTDOWN` / SIGTERM → final snapshot per dataset,
//!   typed rejections for in-flight clients, exit 0). Every accepted
//!   request is answered with an estimate, `BUSY`, `TIMEOUT`, or `ERR` —
//!   never silently dropped,
//! * **observability** — every accepted request gets a monotonic id,
//!   echoed as an `id=<n>` tail on its reply lines so a slow or failed
//!   request can be correlated across the wire, the slow-query log and
//!   the drain report; `EXPLAIN_ESTIMATE` answers like `ESTIMATE` and
//!   appends the span/counter trace that produced the estimate
//!   ([`Client::explain`]) via the zero-alloc-when-disabled
//!   [`ceg_core::trace::Trace`] recorder; a ring-buffer slow-query log
//!   (`SLOWLOG`, threshold [`ServerConfig::slow_query_threshold_ms`])
//!   captures over-threshold misses; `METRICS_PROM` exports the whole
//!   metrics registry in Prometheus text exposition format.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ceg_graph::GraphBuilder;
//! use ceg_query::templates;
//! use ceg_service::{Client, DatasetRegistry, Server, ServerConfig};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 0);
//! b.add_edge(1, 2, 1);
//! b.add_edge(1, 3, 1);
//! let registry = Arc::new(DatasetRegistry::new());
//! registry.insert_graph("default", b.build(), 2);
//!
//! let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.estimate("default", &templates::path(2, &[0, 1])).unwrap();
//! assert_eq!(reply.value, Some(2.0));
//! assert!(!reply.cached);
//! let again = client.estimate("default", &templates::path(2, &[0, 1])).unwrap();
//! assert!(again.cached);
//! server.shutdown();
//! ```

// The compiler-side mirror of ceg-lint's panic-path pass: `.unwrap()`
// warns in non-test code (clippy.toml additionally *disallows* it with
// a pointer at the typed-error idiom), while test modules may assert
// freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod cache;
pub mod client;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{EstimateCache, LruCache, ProbeOutcome};
pub use client::{Client, ClientConfig, EstimateReply, ExplainReply, QueryReply};
pub use engine::{
    Engine, EngineStats, EstimateOutcome, QueryOutcome, SlowQueryEntry, SnapshotAck, UpdateAck,
    DEFAULT_SLOW_QUERY_THRESHOLD_MS,
};
pub use metrics::{Command, Histogram, Metrics};
pub use pool::{run_scoped, WorkerPool};
pub use protocol::{ExplainItem, Request, Response, MAX_BATCH_QUERIES};
pub use registry::{
    CommitOutcome, DatasetEntry, DatasetRegistry, RecoveryReport, RotateOutcome, MAX_PENDING_OPS,
    MAX_UPDATE_LABEL, MAX_UPDATE_VERTEX,
};
pub use server::{DrainReport, Server, ServerConfig};
